"""Training callbacks."""

from __future__ import annotations

from typing import Optional

from repro.train.history import EpochRecord


class Callback:
    """Base callback; all hooks are optional."""

    def on_train_begin(self, trainer) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer, record: EpochRecord) -> None:
        """Called after every epoch with the freshly appended record."""

    def should_stop(self, trainer, record: EpochRecord) -> bool:
        """Return True to stop training early after this epoch."""
        return False


class EarlyStopOnAccuracy(Callback):
    """Stop as soon as the test accuracy reaches a target.

    Figure 4 measures energy-to-target-accuracy; this callback lets those runs
    terminate as soon as the target is met instead of running all epochs.
    """

    def __init__(self, target_accuracy: float) -> None:
        if not 0.0 < target_accuracy <= 1.0:
            raise ValueError(f"target accuracy must be in (0, 1], got {target_accuracy}")
        self.target_accuracy = target_accuracy
        self.reached_at: Optional[int] = None

    def should_stop(self, trainer, record: EpochRecord) -> bool:
        if record.test_accuracy >= self.target_accuracy and self.reached_at is None:
            self.reached_at = record.epoch
            return True
        return False


class EpochLogger(Callback):
    """Print a one-line summary per epoch (used by the examples)."""

    def __init__(self, every: int = 1, stream=None) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.every = every
        self.stream = stream

    def on_epoch_end(self, trainer, record: EpochRecord) -> None:
        if record.epoch % self.every != 0:
            return
        message = (
            f"epoch {record.epoch:3d} | loss {record.train_loss:.4f} | "
            f"train acc {record.train_accuracy:.3f} | test acc {record.test_accuracy:.3f} | "
            f"lr {record.learning_rate:.4f} | avg bits {record.average_bits:.1f}"
        )
        print(message, file=self.stream)
