"""Saving and loading training artifacts.

Two kinds of artifacts:

* **Model checkpoints** -- the parameter/buffer arrays of a
  :class:`~repro.nn.module.Module` plus, for quantised training, the
  per-layer bitwidths, stored as an ``.npz`` archive.  Reloading a
  checkpoint restores the quantised model exactly (weights are stored as the
  grid-aligned floats the training loop uses; the bitwidths let a deployment
  pipeline re-encode them as integer codes).
* **Training histories and experiment results** -- JSON documents produced
  from :class:`~repro.train.history.TrainingHistory` (or anything built from
  plain dataclasses / dicts / lists), with numpy scalars converted to native
  Python types.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.nn.module import Module
from repro.train.history import TrainingHistory

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# JSON helpers
# --------------------------------------------------------------------------- #
def _to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays, dataclasses and infinities to JSON-safe values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return _to_jsonable(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if math.isnan(value):
            return "NaN"
        return value
    return value


#: Public name for reuse by the experiment orchestrator's result store.
to_jsonable = _to_jsonable


def dump_json(payload: Any, path: PathLike) -> Path:
    """Write any experiment result / history payload as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_to_jsonable(payload), indent=2, sort_keys=False))
    return path


def load_json(path: PathLike) -> Any:
    """Read a JSON document written by :func:`dump_json`."""
    return json.loads(Path(path).read_text())


# --------------------------------------------------------------------------- #
# Training history
# --------------------------------------------------------------------------- #
def save_history(history: TrainingHistory, path: PathLike) -> Path:
    """Serialise a training history to JSON."""
    return dump_json(history.to_dict(), path)


def load_history(path: PathLike) -> TrainingHistory:
    """Reconstruct a :class:`TrainingHistory` saved by :func:`save_history`."""
    return TrainingHistory.from_dict(load_json(path))


# --------------------------------------------------------------------------- #
# Model checkpoints
# --------------------------------------------------------------------------- #
def save_checkpoint(
    model: Module,
    path: PathLike,
    bitwidths: Optional[Mapping[str, int]] = None,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Save model parameters, buffers, per-layer bitwidths and metadata.

    Parameters
    ----------
    model:
        The module whose ``state_dict`` is saved.
    bitwidths:
        Optional mapping of parameter name to stored bitwidth (e.g. from
        ``APTController.bitwidth_by_name()``); needed to re-encode the model
        compactly on the device.
    metadata:
        Optional JSON-serialisable extras (accuracy, config, epoch, ...).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"state/{name}"] = value
    header = {
        "bitwidths": dict(bitwidths) if bitwidths else {},
        "metadata": _to_jsonable(dict(metadata)) if metadata else {},
    }
    arrays["__header__"] = np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    # np.savez appends .npz if missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    model: Module,
    path: PathLike,
) -> Dict[str, Any]:
    """Load a checkpoint into ``model`` and return ``{"bitwidths", "metadata"}``."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        state = {
            key[len("state/"):]: archive[key]
            for key in archive.files
            if key.startswith("state/")
        }
    model.load_state_dict(state)
    return {"bitwidths": header.get("bitwidths", {}), "metadata": header.get("metadata", {})}
