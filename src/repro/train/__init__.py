"""Generic training harness.

The :class:`~repro.train.trainer.Trainer` runs the standard epoch loop
(forward, loss, backward, optimiser step, per-epoch evaluation) and delegates
every precision-related decision to a
:class:`~repro.train.strategy.PrecisionStrategy`.  APT
(:class:`repro.core.APTStrategy`) and every Table I baseline
(:mod:`repro.baselines`) are implemented as strategies, so the exact same
loop, energy meter and memory model are used for all of them -- which is what
makes the normalised comparisons in the figures meaningful.
"""

from repro.train.strategy import PrecisionStrategy, FP32Strategy
from repro.train.metrics import accuracy, RunningAverage, top_k_accuracy
from repro.train.history import EpochRecord, TrainingHistory
from repro.train.callbacks import Callback, EarlyStopOnAccuracy, EpochLogger
from repro.train.trainer import Trainer, TrainerConfig
from repro.train.serialization import (
    dump_json,
    load_json,
    save_history,
    load_history,
    save_checkpoint,
    load_checkpoint,
)

__all__ = [
    "PrecisionStrategy",
    "FP32Strategy",
    "accuracy",
    "top_k_accuracy",
    "RunningAverage",
    "EpochRecord",
    "TrainingHistory",
    "Callback",
    "EarlyStopOnAccuracy",
    "EpochLogger",
    "Trainer",
    "TrainerConfig",
    "dump_json",
    "load_json",
    "save_history",
    "load_history",
    "save_checkpoint",
    "load_checkpoint",
]
