"""Precision-strategy interface.

A strategy encapsulates *how the model representation is quantised during
training*: which bitwidth each layer's weights are stored and updated at,
whether a full-precision master copy exists, and what (if anything) changes
between epochs.  The trainer calls the hooks in this order every epoch::

    for each batch:
        strategy.before_forward()
        forward / loss / backward
        strategy.after_backward(iteration)
        optimizer.step()            # uses strategy.make_update_hook()
    strategy.end_epoch(epoch)

and queries :meth:`layer_bits` / :meth:`weight_bits` once per epoch for the
energy and memory accounting.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.accounting import LayerBits
from repro.nn.module import Module
from repro.optim.sgd import UpdateHook


class PrecisionStrategy:
    """Base class: full-precision behaviour, no-op hooks."""

    #: Short machine-readable name used in reports.
    name = "base"
    #: Whether an fp32 master copy of quantised weights is kept (Table I).
    keeps_master_copy = False

    def prepare(self, model: Module) -> None:
        """Called once before training starts; may quantise initial weights."""
        self.model = model

    def make_update_hook(self) -> UpdateHook:
        """Return the hook the optimiser should apply updates through."""
        return UpdateHook()

    def before_forward(self) -> None:
        """Called before every forward pass (e.g. re-quantise from a master copy)."""

    def after_backward(self, iteration: int) -> None:
        """Called after every backward pass (e.g. sample Gavg, quantise gradients)."""

    def end_epoch(self, epoch: int) -> None:
        """Called at every epoch boundary (e.g. adjust bitwidths)."""

    def layer_bits(self) -> Dict[str, LayerBits]:
        """Forward/backward bitwidths per quantised parameter name.

        Parameters not listed are charged at the energy meter's default
        (32 bits).
        """
        return {}

    def weight_bits(self) -> Dict[str, int]:
        """Stored bitwidth per quantised parameter name (for the memory model)."""
        return {}

    def effective_sample_fraction(self) -> float:
        """Fraction of samples whose compute is actually spent per epoch.

        1.0 for every method except those that skip work outright (E2-Train's
        stochastic mini-batch dropping); the energy meter scales the epoch's
        sample count by this factor.
        """
        return 1.0

    def describe(self) -> str:
        return self.name


class FP32Strategy(PrecisionStrategy):
    """Plain full-precision training -- the normalisation baseline."""

    name = "fp32"

    def describe(self) -> str:
        return "fp32 (no quantisation)"
