"""Training-run history.

:class:`TrainingHistory` stores one :class:`EpochRecord` per epoch and
provides the derived quantities the paper's figures are built from:
accuracy-versus-epoch curves (Figure 2), energy spent up to the epoch where a
target accuracy is first reached (Figure 4), and end-of-run resource totals
(Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, asdict
from typing import Dict, List, Optional


@dataclass
class EpochRecord:
    """Everything measured at the end of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    learning_rate: float
    #: Energy spent in this epoch (picojoules, analytic model); 0 if unmetered.
    energy_pj: float = 0.0
    #: Cumulative energy up to and including this epoch (picojoules).
    cumulative_energy_pj: float = 0.0
    #: Training-time model memory at this epoch (bits); 0 if unmetered.
    memory_bits: int = 0
    #: Parameter-count-weighted mean bitwidth of quantised layers (32 if none).
    average_bits: float = 32.0
    #: Free-form extras (per-layer bitwidths, Gavg snapshots, ...).
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Sequence of epoch records plus run-level metadata."""

    strategy_name: str
    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------ #
    # Curves
    # ------------------------------------------------------------------ #
    @property
    def epochs(self) -> List[int]:
        return [record.epoch for record in self.records]

    @property
    def test_accuracy_curve(self) -> List[float]:
        return [record.test_accuracy for record in self.records]

    @property
    def train_loss_curve(self) -> List[float]:
        return [record.train_loss for record in self.records]

    @property
    def cumulative_energy_curve(self) -> List[float]:
        return [record.cumulative_energy_pj for record in self.records]

    # ------------------------------------------------------------------ #
    # Scalars
    # ------------------------------------------------------------------ #
    @property
    def best_test_accuracy(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return max(record.test_accuracy for record in self.records)

    @property
    def final_test_accuracy(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].test_accuracy

    @property
    def total_energy_pj(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_energy_pj

    @property
    def peak_memory_bits(self) -> int:
        return max((record.memory_bits for record in self.records), default=0)

    def epochs_to_reach(self, target_accuracy: float) -> Optional[int]:
        """First epoch whose test accuracy meets the target, or None."""
        for record in self.records:
            if record.test_accuracy >= target_accuracy:
                return record.epoch
        return None

    def energy_to_reach(self, target_accuracy: float) -> Optional[float]:
        """Cumulative energy (pJ) at the first epoch meeting the target, or None.

        This is the quantity Figure 4 compares across precision strategies.
        """
        for record in self.records:
            if record.test_accuracy >= target_accuracy:
                return record.cumulative_energy_pj
        return None

    def to_dict(self) -> Dict[str, object]:
        """Plain-python representation for serialisation / reporting."""
        return {
            "strategy": self.strategy_name,
            "records": [asdict(record) for record in self.records],
        }

    #: Float fields of EpochRecord; JSON writers encode non-finite values in
    #: them as the strings "Infinity"/"-Infinity"/"NaN", which must come back
    #: as floats (a diverged low-bit run legitimately records an inf/NaN loss).
    _FLOAT_FIELDS = (
        "train_loss",
        "train_accuracy",
        "test_accuracy",
        "learning_rate",
        "energy_pj",
        "cumulative_energy_pj",
        "average_bits",
    )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrainingHistory":
        """Rebuild a history written by :meth:`to_dict`.

        Unknown record keys (written by a newer version) are ignored so old
        code can read new result-store entries.
        """
        history = cls(strategy_name=payload["strategy"])
        field_names = {f.name for f in fields(EpochRecord)}
        for record in payload["records"]:
            known = {key: value for key, value in record.items() if key in field_names}
            for name in cls._FLOAT_FIELDS:
                if name in known:
                    # float() parses the "Infinity"/"NaN" spellings directly.
                    known[name] = float(known[name])
            history.append(EpochRecord(**known))
        return history
