"""Classification metrics and running averages."""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from raw logits (or probabilities)."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("logits and labels disagree on the number of samples")
    predictions = logits.argmax(axis=1)
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy from raw logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    k = min(k, logits.shape[1])
    top_k = np.argsort(logits, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


class RunningAverage:
    """Weighted running average (e.g. loss averaged over samples)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.total += float(value) * weight
        self.weight += weight

    @property
    def value(self) -> Optional[float]:
        if self.weight == 0:
            return None
        return self.total / self.weight

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0
