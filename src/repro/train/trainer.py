"""The epoch training loop shared by APT and every baseline.

One :class:`Trainer` instance owns a model, an optimiser, data loaders, a
precision strategy and (optionally) the energy meter and memory model.  All
of the paper's experiments are runs of this loop with different strategies,
so the energy / memory / accuracy numbers are produced identically for every
method being compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.hardware.accounting import EnergyMeter
from repro.hardware.memory import TrainingMemoryModel
from repro.nn.loss import CrossEntropyLoss, Loss
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.tensor import Tensor, no_grad
from repro.train.callbacks import Callback
from repro.train.history import EpochRecord, TrainingHistory
from repro.train.metrics import RunningAverage, accuracy
from repro.train.strategy import FP32Strategy, PrecisionStrategy


@dataclass
class TrainerConfig:
    """Loop-level knobs that are not precision-related."""

    epochs: int = 10
    #: Evaluate on the test loader every N epochs (1 = every epoch).
    evaluate_every: int = 1
    #: Record per-layer extras (bitwidths, Gavg) into each epoch record.
    record_layer_state: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.evaluate_every < 1:
            raise ValueError("evaluate_every must be at least 1")


class Trainer:
    """Runs training under a given precision strategy.

    Parameters
    ----------
    model, optimizer, train_loader, test_loader:
        The usual ingredients.  The optimiser's ``update_hook`` is replaced by
        the strategy's hook during :meth:`fit`.
    strategy:
        Precision strategy; defaults to plain fp32.
    loss_fn:
        Defaults to cross-entropy.
    scheduler:
        Optional learning-rate scheduler stepped once per epoch.
    energy_meter:
        Optional :class:`EnergyMeter`; when provided, per-epoch energy is
        recorded into the history.
    memory_model:
        Optional :class:`TrainingMemoryModel`; when provided, the
        training-time model size is recorded per epoch.
    callbacks:
        Optional sequence of :class:`Callback`.
    """

    def __init__(
        self,
        model: Module,
        optimizer,
        train_loader,
        test_loader,
        strategy: Optional[PrecisionStrategy] = None,
        loss_fn: Optional[Loss] = None,
        scheduler: Optional[LRScheduler] = None,
        energy_meter: Optional[EnergyMeter] = None,
        memory_model: Optional[TrainingMemoryModel] = None,
        callbacks: Sequence[Callback] = (),
        config: Optional[TrainerConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.strategy = strategy or FP32Strategy()
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.scheduler = scheduler
        self.energy_meter = energy_meter
        self.memory_model = memory_model
        self.callbacks: List[Callback] = list(callbacks)
        self.config = config or TrainerConfig()
        self._global_iteration = 0
        self._last_test_accuracy = 0.0

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, loader=None) -> float:
        """Top-1 accuracy of the current model on ``loader`` (default: test)."""
        loader = loader if loader is not None else self.test_loader
        self.model.eval()
        correct = RunningAverage()
        with no_grad():
            for inputs, labels in loader:
                logits = self.model(Tensor(inputs))
                correct.update(accuracy(logits.data, labels), weight=len(labels))
        self.model.train()
        value = correct.value
        return float(value) if value is not None else 0.0

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _train_one_epoch(self) -> (float, float):
        loss_avg = RunningAverage()
        acc_avg = RunningAverage()
        for inputs, labels in self.train_loader:
            self.strategy.before_forward()
            logits = self.model(Tensor(inputs))
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self._global_iteration += 1
            self.strategy.after_backward(self._global_iteration)
            self.optimizer.step()
            loss_avg.update(loss.item(), weight=len(labels))
            acc_avg.update(accuracy(logits.data, labels), weight=len(labels))
        return float(loss_avg.value or 0.0), float(acc_avg.value or 0.0)

    def _average_bits(self) -> float:
        weight_bits = self.strategy.weight_bits()
        if not weight_bits:
            return 32.0
        named = dict(self.model.named_parameters())
        total = 0
        weighted = 0.0
        for name, bits in weight_bits.items():
            param = named.get(name)
            if param is None:
                continue
            total += param.size
            weighted += bits * param.size
        return weighted / total if total else 32.0

    def _record_resources(self, epoch: int, record: EpochRecord) -> None:
        if self.energy_meter is not None:
            samples = getattr(self.train_loader, "num_samples", None)
            if samples is None:
                samples = len(self.train_loader.dataset)
            samples = int(round(samples * self.strategy.effective_sample_fraction()))
            epoch_record = self.energy_meter.record_epoch(epoch, samples, self.strategy.layer_bits())
            record.energy_pj = epoch_record.total_pj
            record.cumulative_energy_pj = self.energy_meter.report.total_pj
        if self.memory_model is not None:
            record.memory_bits = self.memory_model.total_bits(
                self.model,
                self.strategy.weight_bits(),
                keeps_master_copy=self.strategy.keeps_master_copy,
            )

    def fit(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Train for ``epochs`` epochs (default: the config value)."""
        epochs = epochs if epochs is not None else self.config.epochs
        history = TrainingHistory(strategy_name=self.strategy.name)
        self.strategy.prepare(self.model)
        self.optimizer.update_hook = self.strategy.make_update_hook()
        for callback in self.callbacks:
            callback.on_train_begin(self)

        self.model.train()
        for epoch in range(epochs):
            lr = self.scheduler.step(epoch) if self.scheduler is not None else self.optimizer.lr
            train_loss, train_accuracy = self._train_one_epoch()
            self.strategy.end_epoch(epoch)

            if epoch % self.config.evaluate_every == 0 or epoch == epochs - 1:
                test_accuracy = self.evaluate()
                self._last_test_accuracy = test_accuracy
            else:
                test_accuracy = self._last_test_accuracy

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_accuracy,
                test_accuracy=test_accuracy,
                learning_rate=lr,
                average_bits=self._average_bits(),
            )
            self._record_resources(epoch, record)
            if self.config.record_layer_state:
                layer_bits = self.strategy.weight_bits()
                if layer_bits:
                    record.extra["layer_bits"] = dict(layer_bits)
            history.append(record)

            stop = False
            for callback in self.callbacks:
                callback.on_epoch_end(self, record)
                stop = callback.should_stop(self, record) or stop
            if stop:
                break
        return history
