"""Affine (scale / zero-point) quantisation.

The paper uses the widely adopted scheme of Jacob et al. [11]: a real value
``r`` maps to an integer code ``q`` through ``r = S * (q - Z)`` where the
scale ``S`` and zero point ``Z`` are shared by all values of a tensor.  For
``k``-bit quantisation ``q`` takes one of ``2**k`` discrete states.

The per-tensor minimum representable step -- the *resolution* of Eq. 2 --

    eps = (max(W) - min(W)) / (2**k - 1)

is the quantity that drives quantisation underflow and therefore the Gavg
metric at the heart of APT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Bitwidths accepted throughout the library.  The paper's policy clamps
#: adjustments to the range [2, 32]; 32 is treated as "effectively float".
MIN_BITS = 2
MAX_BITS = 32

#: Bitwidth at or above which we treat the tensor as full precision and skip
#: the integer grid entirely (a 32-bit affine grid is numerically
#: indistinguishable from fp32 for our purposes and would only add noise).
FLOAT_BITS_THRESHOLD = 32


@dataclass(frozen=True)
class AffineQParams:
    """Quantisation parameters of one tensor: ``r = scale * (q - zero_point)``."""

    scale: float
    zero_point: int
    bits: int

    @property
    def num_levels(self) -> int:
        return 2 ** self.bits

    @property
    def qmin(self) -> int:
        return 0

    @property
    def qmax(self) -> int:
        return 2 ** self.bits - 1


def _validate_bits(bits: int) -> None:
    if not isinstance(bits, (int, np.integer)):
        raise TypeError(f"bits must be an integer, got {type(bits).__name__}")
    if bits < MIN_BITS or bits > MAX_BITS:
        raise ValueError(f"bits must be in [{MIN_BITS}, {MAX_BITS}], got {bits}")


def resolution(values: np.ndarray, bits: int) -> float:
    """Quantisation resolution eps of Eq. 2 for a tensor at ``bits`` bits.

    Returns the smallest representable change of a value in the tensor.  A
    degenerate (constant) tensor has zero range; we return a tiny positive
    number in that case so downstream ratios remain finite.
    """
    _validate_bits(bits)
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot compute the resolution of an empty tensor")
    value_range = float(values.max() - values.min())
    if value_range <= 0.0:
        return np.finfo(np.float64).tiny
    return value_range / (2 ** bits - 1)


def compute_qparams(values: np.ndarray, bits: int) -> AffineQParams:
    """Choose scale and zero point so the tensor's [min, max] range is covered.

    The zero point is chosen so that real zero is exactly representable,
    which keeps zero-padding and ReLU outputs exact (the standard Jacob et
    al. requirement).  Consequence: the covered range is ``[min(0, min(W)),
    max(0, max(W))]``, so for a tensor that does not straddle zero the grid
    step (``scale``) is coarser than the Eq. 2 resolution computed from the
    data range alone.  Weight tensors straddle zero in practice, where the
    two coincide.
    """
    _validate_bits(bits)
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot compute qparams for an empty tensor")
    low = float(min(values.min(), 0.0))
    high = float(max(values.max(), 0.0))
    qmax = 2 ** bits - 1
    value_range = high - low
    scale = value_range / qmax
    if value_range <= 0.0 or scale <= 0.0 or not np.isfinite(scale):
        # Degenerate tensors (constant, or so tiny that the step underflows to
        # zero) get a token positive scale so downstream divisions stay finite.
        return AffineQParams(scale=np.finfo(np.float64).tiny, zero_point=0, bits=bits)
    zero_point = int(round(-low / scale))
    zero_point = int(np.clip(zero_point, 0, qmax))
    return AffineQParams(scale=scale, zero_point=zero_point, bits=bits)


def quantize(values: np.ndarray, qparams: AffineQParams) -> np.ndarray:
    """Map real values to integer codes in ``[0, 2**bits - 1]``."""
    codes = np.round(values / qparams.scale) + qparams.zero_point
    return np.clip(codes, qparams.qmin, qparams.qmax).astype(np.int64)


def dequantize(codes: np.ndarray, qparams: AffineQParams) -> np.ndarray:
    """Map integer codes back to real values."""
    return qparams.scale * (codes.astype(np.float64) - qparams.zero_point)


def fake_quantize(values: np.ndarray, bits: int) -> Tuple[np.ndarray, AffineQParams]:
    """Quantise-then-dequantise: snap values onto the k-bit affine grid.

    This is how weights are represented during quantised training: the
    framework keeps float buffers for arithmetic convenience, but every value
    lies exactly on the integer grid, so the storage cost (counted by the
    memory model) is ``bits`` per value.
    """
    _validate_bits(bits)
    values = np.asarray(values, dtype=np.float64)
    if bits >= FLOAT_BITS_THRESHOLD:
        qparams = AffineQParams(scale=1.0, zero_point=0, bits=bits)
        return values.copy(), qparams
    qparams = compute_qparams(values, bits)
    return dequantize(quantize(values, qparams), qparams), qparams
