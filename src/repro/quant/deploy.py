"""Deployment / export of a quantised model after training.

After APT (or fixed-precision) training, the weights lie on each layer's
affine grid but are still held in float buffers for arithmetic convenience.
For deployment on an edge device the model should actually be *stored* as
integer codes.  This module provides that last step:

* :class:`QuantizedModelExport` -- per-parameter :class:`QuantizedTensor`
  codes plus the float parameters that stay at fp32 (biases, BN affine).
* :func:`export_quantized_model` -- build an export from a model and a
  per-parameter bitwidth mapping (e.g. ``controller.bitwidth_by_name()``).
* :func:`load_into_model` -- reconstitute the dequantised weights into a
  model (what the device would do at inference/fine-tune start).
* :func:`export_size_report` -- bytes on flash before/after, per layer.

The round trip is lossless with respect to the training-time representation:
exporting and re-loading reproduces exactly the weights the trainer ended
with (verified in the test-suite), so deployment accuracy equals the
accuracy measured during training.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.nn.module import Module
from repro.quant.affine import FLOAT_BITS_THRESHOLD, AffineQParams
from repro.quant.qtensor import QuantizedTensor

#: On-disk format version written by :func:`save_export`.  Bump whenever the
#: archive layout changes incompatibly; :func:`load_export` rejects versions
#: it does not know how to read.  Version 1 is the pre-versioned layout
#: (no ``__meta__`` entry); version 2 added ``__meta__`` with the format
#: version and the export's content hash.
EXPORT_FORMAT_VERSION = 2


class ExportFormatError(ValueError):
    """Raised when an export archive's format version is not supported."""


@dataclass
class QuantizedModelExport:
    """The on-device storage form of a trained quantised model."""

    quantized: Dict[str, QuantizedTensor] = field(default_factory=dict)
    float_parameters: Dict[str, np.ndarray] = field(default_factory=dict)
    buffers: Dict[str, np.ndarray] = field(default_factory=dict)

    def total_bits(self) -> int:
        """Storage cost of the exported model in bits."""
        total = sum(tensor.memory_bits() for tensor in self.quantized.values())
        total += sum(32 * array.size for array in self.float_parameters.values())
        total += sum(32 * array.size for array in self.buffers.values())
        return total

    def total_bytes(self) -> float:
        return self.total_bits() / 8.0

    def parameter_names(self) -> List[str]:
        return sorted(list(self.quantized) + list(self.float_parameters))

    def bitwidths(self) -> Dict[str, int]:
        """Per-parameter stored bitwidths; float leftovers map to 32.

        The inverse of the ``bitwidths`` mapping given to
        :func:`export_quantized_model`, in the shape the training stack
        consumes -- e.g. to resume APT fine-tuning from a deployed export
        with each layer starting at its served precision.
        """
        bits = {name: tensor.bits for name, tensor in self.quantized.items()}
        for name in self.float_parameters:
            bits[name] = 32
        return bits

    def content_hash(self) -> str:
        """Deterministic sha256 over everything that defines the export.

        Two exports hash equal iff they hold the same parameter names,
        integer codes, affine parameters, float leftovers and buffers.
        The hash covers parameter *values*, not model topology; the plan
        cache (:class:`repro.runtime.PlanCache`) pairs it with an
        architecture fingerprint when keying compiled plans.
        :func:`save_export` persists the hash so a reloaded archive keeps
        its identity and corruption is detected on load.

        The hash is computed once and cached: an export is treated as
        immutable after construction (the serving stack swaps whole
        exports, never edits one in place), and hot-swaps consult the hash
        several times on their latency-sensitive handoff path.
        """
        cached = getattr(self, "_content_hash", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for name in sorted(self.quantized):
            tensor = self.quantized[name]
            digest.update(name.encode("utf-8"))
            digest.update(
                json.dumps(
                    {
                        "scale": float(tensor.qparams.scale),
                        "zero_point": int(tensor.qparams.zero_point),
                        "bits": int(tensor.qparams.bits),
                        "shape": list(tensor.codes.shape),
                        "dtype": tensor.codes.dtype.str,
                    },
                    sort_keys=True,
                ).encode("utf-8")
            )
            digest.update(np.ascontiguousarray(tensor.codes).tobytes())
        for section, arrays in (("float", self.float_parameters), ("buffer", self.buffers)):
            for name in sorted(arrays):
                array = np.ascontiguousarray(arrays[name])
                digest.update(f"{section}/{name}:{array.dtype.str}:{array.shape}".encode("utf-8"))
                digest.update(array.tobytes())
        self._content_hash = digest.hexdigest()
        return self._content_hash


def export_quantized_model(
    model: Module,
    bitwidths: Mapping[str, int],
    include_buffers: bool = True,
) -> QuantizedModelExport:
    """Encode a trained model as integer codes + float leftovers.

    Parameters
    ----------
    model:
        The trained model (weights already grid-aligned by the trainer).
    bitwidths:
        Parameter name -> stored bitwidth.  Parameters missing from the
        mapping, and parameters mapped to >= 32 bits, are stored as float.
    include_buffers:
        Whether to include non-trainable buffers (BatchNorm running stats).
    """
    export = QuantizedModelExport()
    for name, param in model.named_parameters():
        bits = int(bitwidths.get(name, 32))
        if bits < FLOAT_BITS_THRESHOLD and param.quantisable:
            export.quantized[name] = QuantizedTensor.from_float(param.data, bits)
        else:
            export.float_parameters[name] = param.data.copy()
    if include_buffers:
        for name, buffer in model.named_buffers():
            export.buffers[name] = np.array(buffer, copy=True)
    return export


def load_into_model(export: QuantizedModelExport, model: Module) -> None:
    """Write an export's (dequantised) values back into a model in place."""
    params = dict(model.named_parameters())
    for name, tensor in export.quantized.items():
        if name not in params:
            raise KeyError(f"model has no parameter {name!r}")
        values = tensor.dequantize()
        if params[name].data.shape != values.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: {params[name].data.shape} vs {values.shape}"
            )
        params[name].data = values
    for name, values in export.float_parameters.items():
        if name not in params:
            raise KeyError(f"model has no parameter {name!r}")
        params[name].data = values.copy()
    if export.buffers:
        owners = model._collect_buffer_owners()
        for name, values in export.buffers.items():
            if name in owners:
                owner, local_name = owners[name]
                owner.update_buffer(local_name, np.array(values, copy=True))


def save_export(export: QuantizedModelExport, path: Union[str, Path]) -> Path:
    """Write an export to disk as an ``.npz`` archive.

    Integer codes are stored as integers (not dequantised floats), so the
    artifact on disk is the same thing the runtime executes: per-layer codes
    plus affine parameters, with float leftovers alongside.  The archive
    carries a ``__meta__`` entry with the format version and the export's
    :meth:`~QuantizedModelExport.content_hash`, so caches keyed on the hash
    (plan cache, model repository) survive a save/load round trip and stale
    or foreign archives are detected on load.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    qparams: Dict[str, Dict[str, float]] = {}
    for name, tensor in export.quantized.items():
        arrays[f"codes/{name}"] = tensor.codes
        qparams[name] = {
            "scale": float(tensor.qparams.scale),
            "zero_point": int(tensor.qparams.zero_point),
            "bits": int(tensor.qparams.bits),
        }
    for name, array in export.float_parameters.items():
        arrays[f"float/{name}"] = array
    for name, array in export.buffers.items():
        arrays[f"buffer/{name}"] = array
    arrays["__qparams__"] = np.frombuffer(json.dumps(qparams).encode("utf-8"), dtype=np.uint8)
    meta = {"format_version": EXPORT_FORMAT_VERSION, "content_hash": export.content_hash()}
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_export(path: Union[str, Path]) -> QuantizedModelExport:
    """Read an export previously written by :func:`save_export`.

    Archives without a ``__meta__`` entry are accepted as format version 1
    (written before versioning existed); any other unknown version raises
    :class:`ExportFormatError`.  A version-2 archive whose stored content
    hash does not match the reloaded data raises :class:`ExportFormatError`
    too -- the file was corrupted or hand-edited.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    export = QuantizedModelExport()
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" in archive.files:
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        else:
            meta = {"format_version": 1}
        version = meta.get("format_version")
        if version not in (1, EXPORT_FORMAT_VERSION):
            raise ExportFormatError(
                f"export archive {path} has format version {version!r}; this "
                f"build reads versions 1 and {EXPORT_FORMAT_VERSION} -- "
                f"re-export the model with the current save_export"
            )
        qparams = json.loads(bytes(archive["__qparams__"].tobytes()).decode("utf-8"))
        for key in archive.files:
            if key.startswith("codes/"):
                name = key[len("codes/"):]
                params = qparams[name]
                export.quantized[name] = QuantizedTensor(
                    codes=archive[key],
                    qparams=AffineQParams(
                        scale=params["scale"],
                        zero_point=params["zero_point"],
                        bits=params["bits"],
                    ),
                )
            elif key.startswith("float/"):
                export.float_parameters[key[len("float/"):]] = archive[key]
            elif key.startswith("buffer/"):
                export.buffers[key[len("buffer/"):]] = archive[key]
    stored_hash = meta.get("content_hash")
    if stored_hash is not None and stored_hash != export.content_hash():
        raise ExportFormatError(
            f"export archive {path} fails its content-hash check; the file "
            f"is corrupted or was modified after save_export wrote it"
        )
    return export


def export_size_report(
    model: Module,
    bitwidths: Mapping[str, int],
) -> List[Tuple[str, int, float, float]]:
    """Per-parameter storage report: (name, bits, quantised KiB, fp32 KiB)."""
    export = export_quantized_model(model, bitwidths, include_buffers=False)
    rows: List[Tuple[str, int, float, float]] = []
    for name, param in model.named_parameters():
        fp32_kib = 32 * param.size / 8 / 1024
        if name in export.quantized:
            tensor = export.quantized[name]
            rows.append((name, tensor.bits, tensor.memory_bytes() / 1024, fp32_kib))
        else:
            rows.append((name, 32, fp32_kib, fp32_kib))
    return rows
