"""Activation quantisation.

The paper quantises *weights* in both passes; activation quantisation is the
natural companion (and is what several of the Table I baselines do in their
original form), so the library provides it as an optional extension:

* :class:`ActivationQuantizer` -- a per-tensor fake-quantiser with a
  moving-average range observer and an optional learned-free clipping value
  (the ReLU6-style clip the paper mentions among "parameters that need to be
  learned").
* :class:`QuantizedActivation` -- an :class:`~repro.nn.module.Module` wrapper
  that can be dropped after any activation in a model definition.

Gradients pass straight through the quantiser (straight-through estimator):
the quantisation error is treated as noise in the forward pass only, which is
the standard approach and keeps the autograd engine unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.quant.affine import FLOAT_BITS_THRESHOLD, compute_qparams, dequantize, quantize
from repro.quant.observer import MovingAverageMinMaxObserver
from repro.tensor import Tensor


class ActivationQuantizer:
    """Fake-quantise activation tensors with an observed dynamic range.

    Parameters
    ----------
    bits:
        Bitwidth of the activation representation (>= 32 disables
        quantisation).
    observer_beta:
        Smoothing factor of the moving-average range observer.
    clip_value:
        Optional hard clip applied before quantisation (e.g. 6.0 to emulate
        ReLU6-style clipping).  ``None`` uses the observed range directly.
    """

    def __init__(
        self,
        bits: int = 8,
        observer_beta: float = 0.9,
        clip_value: Optional[float] = None,
    ) -> None:
        if bits < 2:
            raise ValueError(f"bits must be at least 2, got {bits}")
        if clip_value is not None and clip_value <= 0:
            raise ValueError(f"clip_value must be positive, got {clip_value}")
        self.bits = bits
        self.clip_value = clip_value
        self.observer = MovingAverageMinMaxObserver(beta=observer_beta)
        self.enabled = True

    def set_bits(self, bits: int) -> None:
        """Change the bitwidth (e.g. driven by an APT-style controller)."""
        if bits < 2:
            raise ValueError(f"bits must be at least 2, got {bits}")
        self.bits = bits

    def quantise_array(self, values: np.ndarray, update_observer: bool = True) -> np.ndarray:
        """Quantise a plain numpy activation array."""
        if not self.enabled or self.bits >= FLOAT_BITS_THRESHOLD:
            return values
        if self.clip_value is not None:
            values = np.clip(values, -self.clip_value, self.clip_value)
        if update_observer:
            self.observer.update(values)
        if not self.observer.initialized:
            return values
        qparams = self.observer.compute_qparams(self.bits)
        return dequantize(quantize(values, qparams), qparams)

    def __call__(self, activation: Tensor, training: bool = True) -> Tensor:
        """Fake-quantise an activation tensor with a straight-through gradient."""
        if not self.enabled or self.bits >= FLOAT_BITS_THRESHOLD:
            return activation
        quantised = self.quantise_array(activation.data, update_observer=training)
        # Straight-through estimator: forward uses the quantised values,
        # backward treats the quantiser as identity.  Implemented as
        # x + (q(x) - x).detach() so the graph only sees the identity path.
        residual = Tensor(quantised - activation.data)
        return activation + residual


class QuantizedActivation(Module):
    """Module wrapper so activation quantisation can live inside Sequential."""

    def __init__(
        self,
        bits: int = 8,
        observer_beta: float = 0.9,
        clip_value: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.quantizer = ActivationQuantizer(bits=bits, observer_beta=observer_beta, clip_value=clip_value)

    @property
    def bits(self) -> int:
        return self.quantizer.bits

    def forward(self, x: Tensor) -> Tensor:
        return self.quantizer(x, training=self.training)
