"""Compact quantised tensor representation.

:class:`QuantizedTensor` stores the integer codes together with the affine
parameters.  It exists for two reasons:

1. it is the storage format an edge device would actually use, so the memory
   model in :mod:`repro.hardware.memory` can count real bits;
2. round-tripping through it in tests proves the float buffers used during
   training always lie exactly on the integer grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.affine import AffineQParams, compute_qparams, dequantize, quantize


@dataclass
class QuantizedTensor:
    """Integer codes plus affine parameters describing one tensor."""

    codes: np.ndarray
    qparams: AffineQParams

    @classmethod
    def from_float(cls, values: np.ndarray, bits: int) -> "QuantizedTensor":
        """Quantise a float tensor to ``bits`` bits."""
        values = np.asarray(values, dtype=np.float64)
        qparams = compute_qparams(values, bits)
        return cls(codes=quantize(values, qparams), qparams=qparams)

    def dequantize(self) -> np.ndarray:
        """Reconstruct the (grid-aligned) float values."""
        return dequantize(self.codes, self.qparams)

    @property
    def bits(self) -> int:
        return self.qparams.bits

    @property
    def shape(self):
        return self.codes.shape

    @property
    def num_elements(self) -> int:
        return int(self.codes.size)

    def memory_bits(self, include_qparams: bool = True) -> int:
        """Storage cost in bits: ``bits`` per element plus the qparams.

        The scale is a 32-bit float and the zero point an integer of the same
        width as the codes; both are per-tensor so their contribution is
        negligible for real layers but included for exactness.
        """
        total = self.num_elements * self.bits
        if include_qparams:
            total += 32 + self.bits
        return total

    def memory_bytes(self, include_qparams: bool = True) -> float:
        return self.memory_bits(include_qparams) / 8.0

    def __eq__(self, other) -> bool:  # pragma: no cover - convenience
        if not isinstance(other, QuantizedTensor):
            return NotImplemented
        return (
            self.qparams == other.qparams
            and self.codes.shape == other.codes.shape
            and bool(np.all(self.codes == other.codes))
        )
