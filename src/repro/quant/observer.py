"""Range observers.

Observers track the dynamic range of a tensor stream (weights across steps,
or activations across batches) so the quantiser can pick stable scale /
zero-point values.  The moving-average observer mirrors the behaviour of
standard quantisation-aware-training frameworks and is also the mechanism
behind the moving average applied to Gavg in Algorithm 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.affine import AffineQParams, compute_qparams


class MinMaxObserver:
    """Track the running min / max of everything it has seen."""

    def __init__(self) -> None:
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.num_updates = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        low = float(values.min())
        high = float(values.max())
        if self.min_value is None:
            self.min_value, self.max_value = low, high
        else:
            self.min_value = min(self.min_value, low)
            self.max_value = max(self.max_value, high)
        self.num_updates += 1

    @property
    def initialized(self) -> bool:
        return self.min_value is not None

    def compute_qparams(self, bits: int) -> AffineQParams:
        if not self.initialized:
            raise RuntimeError("observer has not seen any data yet")
        synthetic = np.array([self.min_value, self.max_value])
        return compute_qparams(synthetic, bits)

    def reset(self) -> None:
        self.min_value = None
        self.max_value = None
        self.num_updates = 0


class MovingAverageMinMaxObserver(MinMaxObserver):
    """Exponential-moving-average min / max observer.

    ``beta`` close to 1 gives a long memory; the default matches the common
    QAT setting and the smoothing the paper applies to Gavg samples.
    """

    def __init__(self, beta: float = 0.9) -> None:
        super().__init__()
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = beta

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        low = float(values.min())
        high = float(values.max())
        if self.min_value is None:
            self.min_value, self.max_value = low, high
        else:
            self.min_value = self.beta * self.min_value + (1 - self.beta) * low
            self.max_value = self.beta * self.max_value + (1 - self.beta) * high
        self.num_updates += 1
