"""Quantisation substrate.

Implements the affine (scale / zero-point) quantisation scheme of Jacob et
al. that the paper adopts (Section III), the quantisation-resolution and
underflow arithmetic of Eqs. 2-3, observers for tracking tensor ranges, a
compact integer-code tensor representation used for memory accounting, and
the quantiser family used by the Table I baseline methods (binary, ternary,
DoReFa, WAGE).
"""

from repro.quant.affine import (
    AffineQParams,
    compute_qparams,
    quantize,
    dequantize,
    fake_quantize,
    resolution,
)
from repro.quant.qtensor import QuantizedTensor
from repro.quant.observer import MinMaxObserver, MovingAverageMinMaxObserver
from repro.quant.underflow import (
    quantised_update,
    underflow_fraction,
    gradient_resolution_ratio,
)
from repro.quant.schemes import (
    binarize,
    ternarize,
    dorefa_quantize_weights,
    dorefa_quantize_gradients,
    wage_quantize,
    stochastic_round,
)
from repro.quant.activation import ActivationQuantizer, QuantizedActivation
from repro.quant.deploy import (
    EXPORT_FORMAT_VERSION,
    ExportFormatError,
    QuantizedModelExport,
    export_quantized_model,
    export_size_report,
    load_export,
    load_into_model,
    save_export,
)

__all__ = [
    "AffineQParams",
    "compute_qparams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "resolution",
    "QuantizedTensor",
    "MinMaxObserver",
    "MovingAverageMinMaxObserver",
    "quantised_update",
    "underflow_fraction",
    "gradient_resolution_ratio",
    "binarize",
    "ternarize",
    "dorefa_quantize_weights",
    "dorefa_quantize_gradients",
    "wage_quantize",
    "stochastic_round",
    "ActivationQuantizer",
    "QuantizedActivation",
    "EXPORT_FORMAT_VERSION",
    "ExportFormatError",
    "QuantizedModelExport",
    "export_quantized_model",
    "export_size_report",
    "load_into_model",
    "save_export",
    "load_export",
]
