"""Quantiser family used by the Table I baseline methods.

Each function implements the weight (or gradient) quantiser of one published
scheme, simplified to its core arithmetic:

* :func:`binarize` -- BNN-style sign binarisation with a per-tensor scale.
* :func:`ternarize` -- TWN / TernGrad-style ternarisation with the standard
  0.7 * mean(|w|) threshold.
* :func:`dorefa_quantize_weights` / :func:`dorefa_quantize_gradients` --
  DoReFa-Net's tanh-normalised weight quantiser and stochastic gradient
  quantiser.
* :func:`wage_quantize` -- WAGE's shift-based uniform quantiser.
* :func:`stochastic_round` -- unbiased stochastic rounding, the ingredient
  behind several low-precision update rules.

These are deliberately compact: Table I compares end-to-end behaviour (which
representation BPROP uses, which optimiser, what accuracy results), not the
micro-details of each quantiser.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def binarize(values: np.ndarray) -> Tuple[np.ndarray, float]:
    """Sign binarisation with the L1 scaling of BNN / XNOR-style methods.

    Returns the binarised tensor (values in {-alpha, +alpha}) and the scale
    ``alpha = mean(|w|)``.
    """
    values = np.asarray(values, dtype=np.float64)
    alpha = float(np.mean(np.abs(values))) if values.size else 0.0
    signs = np.where(values >= 0, 1.0, -1.0)
    return signs * alpha, alpha


def ternarize(values: np.ndarray, threshold_factor: float = 0.7) -> Tuple[np.ndarray, float, float]:
    """Ternary weight quantisation (TWN): values in {-alpha, 0, +alpha}.

    The threshold is ``threshold_factor * mean(|w|)`` and ``alpha`` is the
    mean magnitude of the surviving weights, the standard TWN closed form.
    Returns (ternarised values, alpha, threshold).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy(), 0.0, 0.0
    threshold = threshold_factor * float(np.mean(np.abs(values)))
    mask = np.abs(values) > threshold
    if mask.any():
        alpha = float(np.mean(np.abs(values[mask])))
    else:
        alpha = 0.0
    return np.sign(values) * mask * alpha, alpha, threshold


def dorefa_quantize_weights(values: np.ndarray, bits: int) -> np.ndarray:
    """DoReFa-Net weight quantiser.

    Weights are squashed with tanh, affinely mapped to [0, 1], uniformly
    quantised to ``bits`` bits, then mapped back to [-1, 1].
    """
    if bits >= 32:
        return np.asarray(values, dtype=np.float64).copy()
    values = np.asarray(values, dtype=np.float64)
    squashed = np.tanh(values)
    max_abs = np.max(np.abs(squashed)) if squashed.size else 1.0
    if max_abs == 0:
        return np.zeros_like(values)
    unit = squashed / (2 * max_abs) + 0.5
    levels = 2 ** bits - 1
    quantised = np.round(unit * levels) / levels
    return 2 * quantised - 1


def stochastic_round(values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Unbiased stochastic rounding to the nearest integers."""
    rng = rng or np.random.default_rng()
    values = np.asarray(values, dtype=np.float64)
    floor = np.floor(values)
    fraction = values - floor
    return floor + (rng.random(values.shape) < fraction)


def dorefa_quantize_gradients(
    gradients: np.ndarray, bits: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """DoReFa-Net gradient quantiser with stochastic rounding."""
    if bits >= 32:
        return np.asarray(gradients, dtype=np.float64).copy()
    gradients = np.asarray(gradients, dtype=np.float64)
    max_abs = float(np.max(np.abs(gradients))) if gradients.size else 0.0
    if max_abs == 0:
        return np.zeros_like(gradients)
    unit = gradients / (2 * max_abs) + 0.5
    levels = 2 ** bits - 1
    rounded = stochastic_round(unit * levels, rng=rng) / levels
    return 2 * max_abs * (rounded - 0.5)


def wage_quantize(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """WAGE-style uniform quantiser onto a symmetric fixed-point grid."""
    if bits >= 32:
        return np.asarray(values, dtype=np.float64).copy()
    values = np.asarray(values, dtype=np.float64)
    step = 2.0 ** (1 - bits)
    clipped = np.clip(values, -1 + step, 1 - step)
    return np.round(clipped / step) * step
