"""Quantisation-underflow arithmetic (Eqs. 2-4 of the paper).

The central mechanism APT responds to: at ``k`` bits, a weight tensor can only
change in integer multiples of its resolution ``eps`` (Eq. 2).  An SGD update
``lr * g`` smaller than ``eps`` therefore rounds to zero -- the weight is
frozen and learning stalls.  This module implements

* :func:`quantised_update` -- the literal update rule of Eq. 3;
* :func:`underflow_fraction` -- diagnostic: fraction of weights whose update
  underflowed in a step;
* :func:`gradient_resolution_ratio` -- the per-element ``|g / eps|`` values
  whose mean is the Gavg metric of Eq. 4 (the mean itself lives in
  :mod:`repro.core.gavg` next to its moving average).

The paper writes the quantised step as ``floor(lr*g / eps) * eps``.  Applied
literally to signed updates, ``floor`` would treat positive and negative
updates asymmetrically (a tiny negative update would still move the weight a
full step).  We use truncation toward zero, which is symmetric and preserves
the intended behaviour -- any update smaller than ``eps`` in magnitude is
lost.  This choice is documented here and covered by tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def quantised_update(
    weights: np.ndarray,
    update: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, int]:
    """Apply the quantised weight update of Eq. 3.

    Parameters
    ----------
    weights:
        Current (grid-aligned) weight values.
    update:
        Proposed dense update, i.e. ``-lr * gradient`` including momentum and
        weight decay.  Sign convention: the update is *added* to the weights.
    eps:
        The layer's quantisation resolution (Eq. 2).

    Returns
    -------
    (new_weights, num_underflowed):
        The updated weights (still on the eps grid relative to the old
        values) and the number of elements whose update was entirely lost to
        underflow despite being non-zero.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    weights = np.asarray(weights, dtype=np.float64)
    update = np.asarray(update, dtype=np.float64)
    if weights.shape != update.shape:
        raise ValueError(f"shape mismatch: weights {weights.shape} vs update {update.shape}")
    ratio = update / eps
    # Nudge toward the nearest integer before truncating so that updates that
    # are exact multiples of eps are not lost to one-ulp division error
    # (e.g. 0.3 / 0.1 = 2.999...96 must count as 3 steps, not 2).
    nudge = np.sign(ratio) * (np.abs(ratio) * 1e-12 + 1e-12)
    steps = np.trunc(ratio + nudge)
    applied = steps * eps
    underflowed = int(np.count_nonzero((steps == 0) & (update != 0)))
    return weights + applied, underflowed


def underflow_fraction(update: np.ndarray, eps: float) -> float:
    """Fraction of non-zero proposed updates that are lost to underflow."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    update = np.asarray(update)
    nonzero = update != 0
    total = int(np.count_nonzero(nonzero))
    if total == 0:
        return 0.0
    lost = int(np.count_nonzero(nonzero & (np.abs(update) < eps)))
    return lost / total


def gradient_resolution_ratio(gradient: np.ndarray, eps: float) -> np.ndarray:
    """Per-element ``|g / eps|`` -- the quantity averaged by Gavg (Eq. 4)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return np.abs(np.asarray(gradient, dtype=np.float64)) / eps
