"""Command-line interface.

Two entry points (also exposed as console scripts in ``pyproject.toml``):

``repro-train``
    Train one model with one precision strategy on one of the built-in
    workload scales, optionally saving the history (JSON) and a checkpoint.

    .. code-block:: bash

        repro-train --scale bench --strategy apt --epochs 14 --t-min 6.0
        repro-train --scale bench --strategy fixed --bits 8
        repro-train --scale smoke --strategy fp32 --history-out run.json

``repro-experiment``
    Regenerate one of the paper's figures / tables (or the ablations, or the
    automatic T_min search) and print its rows, optionally as JSON.

    Sweeps run through the experiment orchestrator: ``--workers N`` fans the
    independent training jobs of a figure/table out over N processes, and
    ``--cache-dir DIR`` memoises completed runs on disk so re-running an
    experiment (or another experiment sharing jobs with it) retrains nothing.

    .. code-block:: bash

        repro-experiment fig2 --scale bench
        repro-experiment table1 --scale bench --json-out table1.json
        repro-experiment table1 --scale bench --workers 4 --cache-dir .repro-cache
        repro-experiment tune-tmin --scale smoke

``serve-bench`` (``python -m repro.cli serve-bench``)
    Compile a model into execution plans (float, and quantised at each
    requested bitwidth -- or from a saved export / checkpoint) and report
    serving throughput, latency and analytic energy per request against the
    training-stack Module forward.  With ``--workers`` the bench switches
    to the concurrent :class:`~repro.serve.service.InferenceService` and
    reports throughput scaling across worker-pool sizes instead;
    ``--model`` then accepts a comma-separated list to exercise multi-model
    scheduling.  With ``--backend process`` it compares the thread and
    process (shared-memory sharded) serving backends on one identical
    request stream and exits non-zero unless the responses come back
    bitwise identical.

    .. code-block:: bash

        python -m repro.cli serve-bench --model tiny_convnet --bits 8,4
        python -m repro.cli serve-bench --model small_convnet --batch-size 32
        python -m repro.cli serve-bench --model tiny_convnet --export model.npz
        python -m repro.cli serve-bench --model tiny_convnet --workers 1,4
        python -m repro.cli serve-bench --model tiny_convnet,small_convnet \
            --workers 2 --scaling-bits 8
        python -m repro.cli serve-bench --model mlp,tiny_convnet \
            --backend process --shards 2 --scaling-bits 8

``plan-inspect`` (``python -m repro.cli plan-inspect``)
    Compile a saved quantised export into an execution plan and print the
    optimizing pipeline's pass-by-pass graph summary: node counts around
    every pass, how many ops were fused into kernels and elementwise
    chains, and the memory planner's arena bytes against the per-step
    scratch baseline.

    The listing includes the kernel variant selected for every conv /
    linear / pooling node and its provenance (``tuned`` / ``cached`` /
    ``heuristic``); ``--tune`` autotunes the selection under a measurement
    budget, optionally against a persistent ``--tuning-cache``.

    .. code-block:: bash

        python -m repro.cli plan-inspect model.npz --model tiny_convnet
        python -m repro.cli plan-inspect model.npz --no-optimize --steps
        python -m repro.cli plan-inspect model.npz --tune 2.0 --tuning-cache tune.json

``autotune`` (``python -m repro.cli autotune``)
    Micro-benchmark every applicable kernel variant of a registry model's
    compiled plan (fp32, plus quantised variants via ``--bits``) and
    persist the winners to an on-disk tuning cache.  Later compilations
    against the same cache -- any process, any model sharing the kernel
    shapes -- select tuned variants with **zero** re-tuning measurements.
    ``--verify`` re-checks every tuned plan bitwise against the untuned
    reference pipeline.

    .. code-block:: bash

        python -m repro.cli autotune --model tiny_convnet --cache tune.json
        python -m repro.cli autotune --model mobilenetv2 --image-size 32 \
            --bits 8,4 --budget 5.0 --verify
        python -m repro.cli plan-inspect model.npz --passes fold_constants,dce

``codegen`` (``python -m repro.cli codegen``)
    Inspect the native codegen backend (``repro.runtime.codegen``):
    compiler and BLAS-bridge availability, the on-disk compiled-artifact
    cache, and a ``--verify`` probe that emits, compiles and
    bitwise-verifies one kernel per family.

    .. code-block:: bash

        python -m repro.cli codegen --status
        python -m repro.cli codegen --verify --cache-dir /tmp/repro-cg
        python -m repro.cli codegen --clear-cache

``adapt-bench`` (``python -m repro.cli adapt-bench``)
    Serve a model while an APT fine-tuning job retrains it on drifted data
    and hot-swaps the refreshed export into the live service.  Reports the
    swap latency, the serving-throughput degradation while training shares
    the host, and that zero requests failed across the handoff.

    .. code-block:: bash

        python -m repro.cli adapt-bench --model tiny_convnet --bits 8
        python -m repro.cli adapt-bench --workers 4 --epochs 3 --requests 512

``metrics`` (``python -m repro.cli metrics``)
    Run a short instrumented serving session through the concurrent
    :class:`~repro.serve.service.InferenceService` and dump every metric
    the observability layer collected -- request/queue/kernel histograms,
    routing decisions, plan-cache hits and misses, SLO burn evaluations --
    in Prometheus-style text or as JSON.

    .. code-block:: bash

        python -m repro.cli metrics --model tiny_convnet --requests 64
        python -m repro.cli metrics --json
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional, Sequence

from repro.baselines import TABLE1_METHODS
from repro.experiments import (
    build_workload,
    get_scale,
    run_ablations,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_strategy,
    run_table1,
)
from repro.experiments.orchestrator import build_strategy
from repro.experiments.scales import SCALES
from repro.train.serialization import dump_json, save_checkpoint, save_history


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="bench",
        help="workload scale preset (default: bench)",
    )


def _strategy_params(args: argparse.Namespace) -> dict:
    """Map repro-train flags onto the orchestrator's strategy-param schema."""
    if args.strategy == "fixed":
        return {"bits": args.bits, "master_copy": args.master_copy}
    if args.strategy == "apt":
        return {
            "initial_bits": args.initial_bits,
            "t_min": args.t_min,
            "t_max": args.t_max if args.t_max is not None else math.inf,
            "metric_interval": args.metric_interval,
        }
    return {}


def _build_strategy(args: argparse.Namespace):
    # One strategy factory for the whole codebase: repro-train builds its
    # strategy exactly as an orchestrator worker would build a RunSpec's.
    return build_strategy(args.strategy, _strategy_params(args))


# --------------------------------------------------------------------------- #
# repro-train
# --------------------------------------------------------------------------- #
def build_train_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train a model with a chosen precision strategy.",
    )
    _add_scale_argument(parser)
    parser.add_argument(
        "--strategy",
        default="apt",
        choices=["apt", "fp32", "fixed"] + sorted(TABLE1_METHODS),
        help="precision strategy (default: apt)",
    )
    parser.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=8, help="bitwidth for --strategy fixed")
    parser.add_argument(
        "--master-copy", action="store_true", help="keep an fp32 master copy (fixed strategy)"
    )
    parser.add_argument("--initial-bits", type=int, default=6, help="APT initial bitwidth")
    parser.add_argument("--t-min", type=float, default=6.0, help="APT T_min threshold")
    parser.add_argument("--t-max", type=float, default=None, help="APT T_max threshold (default inf)")
    parser.add_argument("--metric-interval", type=int, default=5, help="APT Gavg sampling interval")
    parser.add_argument(
        "--optimizer", choices=["sgd", "adam"], default="sgd", help="optimiser (default sgd)"
    )
    parser.add_argument("--history-out", default=None, help="write the training history JSON here")
    parser.add_argument("--checkpoint-out", default=None, help="write a model checkpoint (.npz) here")
    parser.add_argument("--quiet", action="store_true", help="suppress the per-epoch log")
    return parser


def run_train(argv: Optional[Sequence[str]] = None) -> int:
    args = build_train_parser().parse_args(argv)
    scale = get_scale(args.scale)
    workload = build_workload(scale)
    strategy = _build_strategy(args)

    result = run_strategy(
        workload,
        strategy,
        epochs=args.epochs,
        seed=args.seed,
        optimizer_name=args.optimizer,
        keep_trainer=bool(args.checkpoint_out),
    )
    history = result.history

    if not args.quiet:
        for record in history:
            print(
                f"epoch {record.epoch:3d}  loss {record.train_loss:.4f}  "
                f"test acc {record.test_accuracy:.3f}  avg bits {record.average_bits:.1f}"
            )
    print(
        f"\nstrategy={strategy.describe()}  final acc={history.final_test_accuracy:.3f}  "
        f"best acc={history.best_test_accuracy:.3f}  "
        f"energy={result.normalised_energy:.3f}x fp32  memory={result.normalised_memory:.3f}x fp32"
    )

    if args.history_out:
        path = save_history(history, args.history_out)
        print(f"history written to {path}")
    if args.checkpoint_out:
        bitwidths = strategy.weight_bits()
        path = save_checkpoint(
            result.trainer.model,
            args.checkpoint_out,
            bitwidths=bitwidths,
            metadata={"strategy": strategy.name, "final_accuracy": history.final_test_accuracy},
        )
        print(f"checkpoint written to {path}")
    return 0


# --------------------------------------------------------------------------- #
# repro-experiment
# --------------------------------------------------------------------------- #
def build_experiment_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate one of the paper's figures/tables or run the ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig1", "fig2", "fig3", "fig4", "fig5", "table1",
            "ablations", "schedules", "tune-tmin", "report",
        ],
        help="which experiment to run",
    )
    _add_scale_argument(parser)
    parser.add_argument("--epochs", type=int, default=None, help="override the scale's epoch count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="fan the experiment's training jobs out over N worker processes (default 1: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist/reuse run results in this directory (keyed by content hash)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result cache even if --cache-dir is set",
    )
    parser.add_argument("--json-out", default=None, help="also write the result as JSON here")
    parser.add_argument(
        "--markdown-out", default=None, help="for 'report': write the markdown document here"
    )
    return parser


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if not parsed > 0:  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {value}"
        )
    return parsed


def _model_input_shape(model_name: str, args: argparse.Namespace) -> tuple:
    """Per-sample input shape for a registry model from the shared CLI flags."""
    if model_name == "mlp":
        return (args.in_channels,)
    return (args.in_channels, args.image_size, args.image_size)


def _progress_printer(event) -> None:
    """One stderr line per resolved training job (cache hit or fresh run)."""
    timing = f" ({event.duration_s:.1f}s)" if event.duration_s else ""
    print(
        f"[{event.sequence}/{event.total}] {event.status:<9s} {event.spec.describe()}{timing}",
        file=sys.stderr,
    )


def _run_experiment(name: str, scale, epochs, seed, orchestration):
    if name == "fig1":
        result = run_fig1(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "fig2":
        result = run_fig2(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "fig3":
        result = run_fig3(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "fig4":
        result = run_fig4(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "fig5":
        result = run_fig5(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "table1":
        result = run_table1(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "ablations":
        result = run_ablations(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "schedules":
        from repro.experiments import run_schedule_comparison

        result = run_schedule_comparison(scale, epochs=epochs, seed=seed, **orchestration)
    elif name == "report":
        from repro.experiments.report import generate_report

        # The report runner has no epochs override (each figure uses the
        # scale's own epoch count) but takes the same orchestration settings.
        result = generate_report(scale, seed=seed, **orchestration)
    elif name == "tune-tmin":
        from repro.core.autotune import tune_t_min

        workload = build_workload(scale)
        probe_epochs = epochs if epochs is not None else max(2, scale.epochs // 4)
        result = tune_t_min(workload, probe_epochs=probe_epochs, seed=seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    return result


def _result_payload(name: str, result) -> dict:
    if name == "fig1":
        return {"gavg": result.gavg_by_layer, "bits": result.bits_by_layer}
    if name == "fig2":
        return {"curves": result.curves, "best": result.best_accuracy}
    if name == "fig3":
        return {"bits": result.bits_by_layer}
    if name == "fig4":
        return {"targets": result.targets, "energy_to_target": result.energy_to_target}
    if name == "fig5":
        return {"points": [vars(point) for point in result.points]}
    if name == "table1":
        return {"rows": [vars(row) for row in result.rows]}
    if name == "ablations":
        return {"points": [vars(point) for point in result.points]}
    if name == "schedules":
        return {"rows": [vars(row) for row in result.rows]}
    if name == "report":
        return {"scale": result.scale_name, "sections": [section.title for section in result.sections]}
    if name == "tune-tmin":
        return {"best_t_min": result.best_t_min, "trials": [vars(trial) for trial in result.trials]}
    raise ValueError(name)


def run_experiment(argv: Optional[Sequence[str]] = None) -> int:
    args = build_experiment_parser().parse_args(argv)
    scale = get_scale(args.scale)
    if args.cache_dir is not None:
        from pathlib import Path

        cache_path = Path(args.cache_dir)
        # Fail before training, not when the first result is stored.
        if cache_path.exists() and not cache_path.is_dir():
            print(f"--cache-dir {args.cache_dir!r} exists and is not a directory", file=sys.stderr)
            return 2
    if args.experiment == "tune-tmin" and (args.workers > 1 or args.cache_dir):
        print(
            "note: tune-tmin runs its own adaptive search; "
            "--workers/--cache-dir are ignored for it",
            file=sys.stderr,
        )
    orchestration = {
        "workers": args.workers,
        "cache_dir": args.cache_dir,
        "use_cache": not args.no_cache,
        "progress": _progress_printer,
    }
    result = _run_experiment(args.experiment, scale, args.epochs, args.seed, orchestration)

    if args.experiment == "report":
        markdown = result.to_markdown()
        print(markdown)
        if args.markdown_out:
            from pathlib import Path

            Path(args.markdown_out).write_text(markdown)
            print(f"\nreport written to {args.markdown_out}")
    else:
        for row in result.format_rows():
            print(row)
    if args.json_out:
        path = dump_json(_result_payload(args.experiment, result), args.json_out)
        print(f"\nresult written to {path}")
    return 0


# --------------------------------------------------------------------------- #
# repro serve-bench
# --------------------------------------------------------------------------- #
def build_serve_bench_parser() -> argparse.ArgumentParser:
    from repro.hardware.latency import COMPUTE_PROFILES
    from repro.models import available_models

    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description=(
            "Compile a model into execution plans and benchmark serving "
            "throughput/latency at each bitwidth against the Module forward."
        ),
    )
    parser.add_argument(
        "--model",
        default="tiny_convnet",
        help=(
            "registry model; with --workers a comma-separated list serves "
            f"multiple models concurrently (known: {', '.join(available_models())})"
        ),
    )
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--in-channels", type=int, default=1)
    parser.add_argument("--image-size", type=int, default=12, help="input H=W (conv models)")
    parser.add_argument(
        "--width-multiplier", type=float, default=1.0, help="channel scaling factor"
    )
    parser.add_argument(
        "--bits", default="8,4", help="comma-separated uniform weight bitwidths to serve"
    )
    parser.add_argument(
        "--checkpoint", default=None, help="load trained weights from this .npz checkpoint"
    )
    parser.add_argument(
        "--export",
        default=None,
        help="serve this saved QuantizedModelExport (.npz) instead of synthesising exports",
    )
    parser.add_argument("--batch-size", type=int, default=16, help="micro-batch size")
    parser.add_argument("--requests", type=int, default=256, help="synthetic requests per variant")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best wins)")
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "comma-separated worker-pool sizes (e.g. 1,4): run the concurrent "
            "multi-worker scaling bench instead of the per-bitwidth comparison"
        ),
    )
    parser.add_argument(
        "--scaling-bits",
        default="fp32",
        help="bitwidth variant served by the scaling bench: 'fp32' or an integer",
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help=(
            "'process' runs the thread-vs-process backend comparison: the "
            "same request stream through both, asserting bitwise-identical "
            "responses (exit 1 on mismatch)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="process-backend shard count (also the thread backend's worker "
        "count in the --backend process comparison)",
    )
    parser.add_argument(
        "--device",
        default="smartphone_npu",
        choices=sorted(COMPUTE_PROFILES) + ["none"],
        help="edge profile for analytic energy/latency models ('none' to skip)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, help="also write the report as JSON here")
    return parser


def _run_scaling_bench(args, model_names: List[str]) -> int:
    import numpy as np

    from repro.models import build_model
    from repro.serve import run_scaling_bench

    try:
        workers_list = [int(value) for value in args.workers.split(",") if value.strip()]
    except ValueError:
        print(f"--workers must be a comma-separated list of integers, got {args.workers!r}",
              file=sys.stderr)
        return 2
    if not workers_list or any(workers < 1 for workers in workers_list):
        print(f"--workers entries must be positive, got {args.workers!r}", file=sys.stderr)
        return 2
    if args.scaling_bits == "fp32":
        scaling_bits = None
    else:
        try:
            scaling_bits = int(args.scaling_bits)
        except ValueError:
            print(f"--scaling-bits must be 'fp32' or an integer, got {args.scaling_bits!r}",
                  file=sys.stderr)
            return 2

    ignored = []
    if args.bits != "8,4":
        ignored.append("--bits (use --scaling-bits)")
    if args.device != "smartphone_npu":
        ignored.append("--device")
    if ignored:
        print(f"note: {', '.join(ignored)} ignored by the --workers scaling bench",
              file=sys.stderr)

    models = {}
    for index, name in enumerate(model_names):
        module = build_model(
            name,
            num_classes=args.num_classes,
            width_multiplier=args.width_multiplier,
            in_channels=args.in_channels,
            rng=np.random.default_rng(args.seed + index),
        )
        models[name] = (module, _model_input_shape(name, args))

    try:
        report = run_scaling_bench(
            models,
            bits=scaling_bits,
            workers_list=workers_list,
            batch_size=args.batch_size,
            requests=args.requests,
            repeats=args.repeats,
            seed=args.seed,
        )
    except ValueError as error:
        # e.g. --scaling-bits outside the quantiser's supported range.
        print(f"serve-bench failed: {error}", file=sys.stderr)
        return 2
    print(
        f"serve-bench scaling: models={','.join(report.models)} "
        f"variant={'fp32' if report.bits is None else f'{report.bits}bit'} "
        f"batch={report.batch_size} requests={report.requests}"
    )
    for line in report.format_rows():
        print(line)
    if args.json_out:
        path = dump_json({"rows": [vars(row) for row in report.rows]}, args.json_out)
        print(f"\nreport written to {path}")
    return 0


def _run_backend_bench(args, model_names: List[str]) -> int:
    import numpy as np

    from repro.models import build_model
    from repro.serve import run_backend_bench

    if args.scaling_bits == "fp32":
        bits = None
    else:
        try:
            bits = int(args.scaling_bits)
        except ValueError:
            print(f"--scaling-bits must be 'fp32' or an integer, got {args.scaling_bits!r}",
                  file=sys.stderr)
            return 2
    if args.shards < 1:
        print(f"--shards must be positive, got {args.shards}", file=sys.stderr)
        return 2

    models = {}
    for index, name in enumerate(model_names):
        module = build_model(
            name,
            num_classes=args.num_classes,
            width_multiplier=args.width_multiplier,
            in_channels=args.in_channels,
            rng=np.random.default_rng(args.seed + index),
        )
        models[name] = (module, _model_input_shape(name, args))

    try:
        report = run_backend_bench(
            models,
            bits=bits,
            workers=args.shards,
            shards=args.shards,
            batch_size=args.batch_size,
            requests=args.requests,
            repeats=args.repeats,
            seed=args.seed,
        )
    except (RuntimeError, ValueError) as error:
        # Bad parameters, or a shard worker failed to come up.
        print(f"serve-bench failed: {error}", file=sys.stderr)
        return 2
    print(
        f"serve-bench backends: models={','.join(report.models)} "
        f"variant={'fp32' if report.bits is None else f'{report.bits}bit'} "
        f"batch={report.batch_size} requests={report.requests} shards={report.shards}"
    )
    for line in report.format_rows():
        print(line)
    if args.json_out:
        path = dump_json(
            {"identical": report.identical, "rows": [vars(row) for row in report.rows]},
            args.json_out,
        )
        print(f"\nreport written to {path}")
    if not report.identical:
        print(
            "FAIL: thread and process backends returned different logits "
            "for an identical request stream",
            file=sys.stderr,
        )
        return 1
    return 0


def run_serve_bench(argv: Optional[Sequence[str]] = None) -> int:
    import numpy as np

    from repro.models import available_models, build_model
    from repro.quant.deploy import load_export
    from repro.serve import run_serve_bench as serve_bench
    from repro.train.serialization import load_checkpoint

    args = build_serve_bench_parser().parse_args(argv)
    model_names = [name for name in args.model.split(",") if name.strip()]
    unknown = [name for name in model_names if name not in available_models()]
    if not model_names or unknown:
        print(
            f"unknown model(s) {unknown or args.model!r}; "
            f"known: {', '.join(available_models())}",
            file=sys.stderr,
        )
        return 2
    if args.backend == "process":
        if args.export or args.checkpoint:
            print(
                "--export/--checkpoint are not supported by the --backend "
                "process comparison (it synthesises variants via --scaling-bits)",
                file=sys.stderr,
            )
            return 2
        if args.workers is not None:
            print("note: --workers ignored by --backend process (use --shards)",
                  file=sys.stderr)
        return _run_backend_bench(args, model_names)
    if args.workers is not None:
        if args.export or args.checkpoint:
            # The scaling bench rebuilds models from the registry; silently
            # benchmarking fresh weights while the user thinks their
            # artifact is being served would be misleading.
            print(
                "--export/--checkpoint are not supported by the --workers "
                "scaling bench (it synthesises variants via --scaling-bits)",
                file=sys.stderr,
            )
            return 2
        return _run_scaling_bench(args, model_names)
    if len(model_names) > 1:
        print("multiple --model values need --workers (the scaling bench)", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    model = build_model(
        model_names[0],
        num_classes=args.num_classes,
        width_multiplier=args.width_multiplier,
        in_channels=args.in_channels,
        rng=rng,
    )
    input_shape = _model_input_shape(model_names[0], args)
    try:
        if args.checkpoint:
            load_checkpoint(model, args.checkpoint)
            print(f"loaded checkpoint {args.checkpoint}")
        export = load_export(args.export) if args.export else None
    except (FileNotFoundError, KeyError, ValueError) as error:
        # Missing file, architecture mismatch, or unsupported export format.
        print(f"cannot load model artifact: {error}", file=sys.stderr)
        return 2

    try:
        bits_list = [int(bits) for bits in args.bits.split(",") if bits.strip()]
    except ValueError:
        print(f"--bits must be a comma-separated list of integers, got {args.bits!r}", file=sys.stderr)
        return 2
    try:
        report = serve_bench(
            model,
            input_shape,
            bits_list=bits_list,
            export=export,
            batch_size=args.batch_size,
            requests=args.requests,
            repeats=args.repeats,
            device=None if args.device == "none" else args.device,
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        # e.g. an export saved from a different architecture than --model.
        print(f"serve-bench failed: {error}", file=sys.stderr)
        return 2
    print(
        f"serve-bench: {report.model} input={report.input_shape} "
        f"batch={report.batch_size} requests={report.requests} device={report.device}"
    )
    for line in report.format_rows():
        print(line)
    if args.json_out:
        path = dump_json({"rows": [vars(row) for row in report.rows]}, args.json_out)
        print(f"\nreport written to {path}")
    return 0


# --------------------------------------------------------------------------- #
# repro plan-inspect
# --------------------------------------------------------------------------- #
def build_plan_inspect_parser() -> argparse.ArgumentParser:
    from repro.models import available_models
    from repro.runtime import available_passes

    parser = argparse.ArgumentParser(
        prog="repro-plan-inspect",
        description=(
            "Compile a saved quantised export into an execution plan and "
            "print the optimizing pipeline's pass-by-pass graph summary "
            "(node counts, fused ops, planned arena bytes)."
        ),
    )
    parser.add_argument("export", help="QuantizedModelExport archive (.npz) to compile")
    parser.add_argument(
        "--model",
        default="tiny_convnet",
        choices=sorted(available_models()),
        help="registry architecture the export was taken from (default: tiny_convnet)",
    )
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--in-channels", type=int, default=1)
    parser.add_argument("--image-size", type=int, default=12, help="input H=W (conv models)")
    parser.add_argument(
        "--width-multiplier", type=float, default=1.0, help="channel scaling factor"
    )
    parser.add_argument(
        "--passes",
        default=None,
        help=(
            "comma-separated pass pipeline to run instead of the default "
            f"(known: {', '.join(available_passes())})"
        ),
    )
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="disable every pass (inspect the raw traced graph)",
    )
    parser.add_argument(
        "--batch", type=_positive_int, default=16, help="batch size for the arena-bytes report"
    )
    parser.add_argument(
        "--steps", action="store_true", help="also print the lowered step listing"
    )
    parser.add_argument(
        "--tune",
        type=_positive_float,
        default=None,
        metavar="BUDGET_S",
        help=(
            "autotune kernel-variant selection with this measurement budget "
            "in seconds (default: free heuristic selection)"
        ),
    )
    parser.add_argument(
        "--tuning-cache",
        default=None,
        metavar="PATH",
        help="persistent tuning-cache JSON consulted (and updated) by --tune",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _print_kernel_variants(plan) -> None:
    """Per-node variant/provenance listing of a compiled plan."""
    chosen = plan.kernel_variants()
    if not chosen:
        print("kernel variants: none (no conv / linear / pool steps)")
        return
    print("kernel variants:")
    for key, (variant, provenance) in chosen.items():
        index, label = key.split(":", 1)
        print(f"  {int(index):3d}: {label:<32s} {variant} ({provenance})")


def run_plan_inspect(argv: Optional[Sequence[str]] = None) -> int:
    import numpy as np

    from repro.models import build_model
    from repro.quant.deploy import load_export
    from repro.runtime import (
        Autotuner,
        PlanCompileError,
        TuningCache,
        TuningConfig,
        compile_quantized_plan,
    )

    args = build_plan_inspect_parser().parse_args(argv)
    model = build_model(
        args.model,
        num_classes=args.num_classes,
        width_multiplier=args.width_multiplier,
        in_channels=args.in_channels,
        rng=np.random.default_rng(args.seed),
    )
    input_shape = _model_input_shape(args.model, args)
    passes = None
    if args.passes is not None:
        passes = tuple(name.strip() for name in args.passes.split(",") if name.strip())
    tuner = None
    if args.tune is not None or args.tuning_cache is not None:
        cache = TuningCache(args.tuning_cache) if args.tuning_cache else None
        tuner = Autotuner(TuningConfig(
            cache=cache, budget_s=args.tune if args.tune is not None else 1.0
        ))
    try:
        export = load_export(args.export)
        plan = compile_quantized_plan(
            model,
            export,
            input_shape,
            passes=passes,
            optimize=not args.no_optimize,
            tuning=tuner,
        )
    except FileNotFoundError as error:
        print(f"cannot read export: {error}", file=sys.stderr)
        return 2
    except (KeyError, ValueError, PlanCompileError) as error:
        # Architecture mismatch, unknown pass name, unsupported archive.
        print(f"plan-inspect failed: {error}", file=sys.stderr)
        return 2
    print(plan.describe_pipeline(batch_size=args.batch))
    print()
    _print_kernel_variants(plan)
    if tuner is not None:
        print(f"tuning: {tuner.describe()}")
    if args.steps:
        print()
        print(plan.describe())
    return 0


# --------------------------------------------------------------------------- #
# repro autotune
# --------------------------------------------------------------------------- #
def build_autotune_parser() -> argparse.ArgumentParser:
    from repro.models import available_models

    parser = argparse.ArgumentParser(
        prog="repro-autotune",
        description=(
            "Micro-benchmark every applicable kernel variant of a model's "
            "compiled plan and persist the winners to a tuning cache, so "
            "later compilations (any process, any model sharing the shapes) "
            "select tuned kernels with zero measurements."
        ),
    )
    parser.add_argument(
        "--model",
        default="tiny_convnet",
        choices=sorted(available_models()),
        help="registry architecture to tune (default: tiny_convnet)",
    )
    parser.add_argument(
        "--cache",
        default=".repro-tuning.json",
        help="tuning-cache JSON to consult and update (default: .repro-tuning.json)",
    )
    parser.add_argument(
        "--budget",
        type=_positive_float,
        default=2.0,
        help="total measurement budget in seconds (default: 2.0, must be > 0)",
    )
    parser.add_argument(
        "--bits",
        default=None,
        help=(
            "also tune quantised variants at these comma-separated "
            "bitwidths (fresh in-process exports of the model's weights)"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "re-run every tuned plan against the untuned reference pipeline "
            "and require bitwise-identical outputs"
        ),
    )
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--in-channels", type=int, default=1)
    parser.add_argument("--image-size", type=int, default=12, help="input H=W (conv models)")
    parser.add_argument(
        "--width-multiplier", type=float, default=1.0, help="channel scaling factor"
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def run_autotune(argv: Optional[Sequence[str]] = None) -> int:
    import numpy as np

    from repro.models import build_model
    from repro.quant import export_quantized_model
    from repro.runtime import (
        Autotuner,
        DEFAULT_PASSES,
        PlanCompileError,
        TuningCache,
        TuningConfig,
        compile_plan,
        compile_quantized_plan,
    )

    args = build_autotune_parser().parse_args(argv)
    try:
        bits_list = (
            [int(bits) for bits in args.bits.split(",") if bits.strip()]
            if args.bits else []
        )
    except ValueError:
        print(f"--bits must be a comma-separated list of integers, got {args.bits!r}",
              file=sys.stderr)
        return 2
    model = build_model(
        args.model,
        num_classes=args.num_classes,
        width_multiplier=args.width_multiplier,
        in_channels=args.in_channels,
        rng=np.random.default_rng(args.seed),
    )
    input_shape = _model_input_shape(args.model, args)
    cache = TuningCache(args.cache)
    tuner = Autotuner(TuningConfig(cache=cache, budget_s=args.budget))
    reference_passes = tuple(p for p in DEFAULT_PASSES if p != "select_kernels")
    probe = np.random.default_rng(args.seed + 1).normal(size=(4,) + input_shape)

    variants = [("fp32", None)]
    try:
        for width in bits_list:
            export = export_quantized_model(
                model, {name: width for name, _ in model.named_parameters()}
            )
            variants.append((f"int{width}", export))
    except ValueError as error:
        print(f"autotune failed: {error}", file=sys.stderr)
        return 2

    print(f"autotune: {args.model} input={input_shape} cache={cache.path} "
          f"budget={args.budget:.1f}s")
    for label, export in variants:
        try:
            if export is None:
                plan = compile_plan(model, input_shape, tuning=tuner)
            else:
                plan = compile_quantized_plan(model, export, input_shape, tuning=tuner)
        except PlanCompileError as error:  # pragma: no cover - defensive
            print(f"autotune failed compiling {label}: {error}", file=sys.stderr)
            return 2
        print(f"\n[{label}]")
        _print_kernel_variants(plan)
        if args.verify:
            if export is None:
                reference = compile_plan(model, input_shape, passes=reference_passes)
            else:
                reference = compile_quantized_plan(
                    model, export, input_shape, passes=reference_passes
                )
            if not np.array_equal(plan.run(probe), reference.run(probe)):
                print(f"verify FAILED: {label} tuned plan diverges from the "
                      f"reference pipeline", file=sys.stderr)
                return 1
            print("verify: tuned output bitwise-identical to the reference pipeline")
    print()
    print(f"tuning: {tuner.describe()}")
    print(f"measurements: {tuner.measurements}")
    print(f"cache: {len(cache)} entries at {cache.path} "
          f"(hits={cache.hits} misses={cache.misses} retunes={cache.retunes})")
    return 0


# --------------------------------------------------------------------------- #
# repro adapt-bench
# --------------------------------------------------------------------------- #
def build_adapt_bench_parser() -> argparse.ArgumentParser:
    from repro.models import available_models

    image_models = sorted(name for name in available_models() if name != "mlp")
    parser = argparse.ArgumentParser(
        prog="repro-adapt-bench",
        description=(
            "Serve a model while an APT fine-tuning job retrains it on "
            "drifted data and hot-swaps the result; measure swap latency "
            "and serving degradation."
        ),
    )
    parser.add_argument(
        "--model",
        default="tiny_convnet",
        choices=image_models,
        help="registry image model to serve and adapt (default: tiny_convnet)",
    )
    parser.add_argument("--bits", type=int, default=8, help="served/swapped variant bitwidth")
    parser.add_argument("--workers", type=_positive_int, default=2, help="serving worker threads")
    parser.add_argument(
        "--requests", type=_positive_int, default=256, help="requests per measured phase"
    )
    parser.add_argument("--batch-size", type=_positive_int, default=16, help="micro-batch size")
    parser.add_argument("--epochs", type=_positive_int, default=2, help="fine-tune epochs")
    parser.add_argument(
        "--train-samples", type=_positive_int, default=256, help="fine-tune dataset size"
    )
    parser.add_argument("--image-size", type=int, default=12, help="input H=W")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", default=None, help="also write the report as JSON here")
    return parser


def run_adapt_bench_cli(argv: Optional[Sequence[str]] = None) -> int:
    from repro.adapt import run_adapt_bench

    args = build_adapt_bench_parser().parse_args(argv)
    try:
        report = run_adapt_bench(
            args.model,
            bits=args.bits,
            workers=args.workers,
            requests=args.requests,
            batch_size=args.batch_size,
            epochs=args.epochs,
            train_samples=args.train_samples,
            image_size=args.image_size,
            seed=args.seed,
        )
    except ValueError as error:
        # e.g. --bits outside the quantiser's supported range.
        print(f"adapt-bench failed: {error}", file=sys.stderr)
        return 2
    print(
        f"adapt-bench: {report.model} variant={report.bits}bit "
        f"workers={report.workers} epochs={report.epochs}"
    )
    for line in report.format_rows():
        print(line)
    if args.json_out:
        path = dump_json(vars(report), args.json_out)
        print(f"\nreport written to {path}")
    if report.failed_requests:
        print(
            f"adapt-bench: {report.failed_requests} requests failed during the handoff",
            file=sys.stderr,
        )
        return 1
    if report.status != "swapped":
        # The feature under test (fine-tune -> re-export -> hot-swap) did
        # not complete; serving on the old plan succeeding is not a pass.
        print(f"adapt-bench: adaptation did not swap (status {report.status!r})",
              file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------- #
# repro metrics
# --------------------------------------------------------------------------- #
def build_metrics_parser() -> argparse.ArgumentParser:
    from repro.models import available_models

    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description=(
            "Run a short instrumented serving session and dump the "
            "observability layer's metrics (histograms, counters, SLO burn)."
        ),
    )
    parser.add_argument(
        "--model",
        default="tiny_convnet",
        choices=sorted(available_models()),
        help="registry model to serve (default: tiny_convnet)",
    )
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--in-channels", type=int, default=1)
    parser.add_argument("--image-size", type=int, default=12, help="input H=W (conv models)")
    parser.add_argument(
        "--bits", default="8,4", help="comma-separated uniform weight bitwidths to serve"
    )
    parser.add_argument("--workers", type=_positive_int, default=2, help="serving worker threads")
    parser.add_argument(
        "--requests", type=_positive_int, default=64, help="synthetic requests to serve"
    )
    parser.add_argument("--batch-size", type=_positive_int, default=16, help="micro-batch size")
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=None,
        help="per-request latency SLO budget in milliseconds (default: none)",
    )
    from repro.hardware.latency import COMPUTE_PROFILES

    parser.add_argument(
        "--device",
        default="smartphone_npu",
        choices=sorted(COMPUTE_PROFILES) + ["none"],
        help="edge profile for analytic energy/latency models ('none' to skip)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    parser.add_argument("--json-out", default=None, help="also write the snapshot JSON here")
    return parser


def run_metrics(argv: Optional[Sequence[str]] = None) -> int:
    import numpy as np

    from repro.hardware.energy import EnergyModel
    from repro.hardware.latency import COMPUTE_PROFILES
    from repro.models import build_model
    from repro.quant import export_quantized_model
    from repro.serve import InferenceService, ModelRepository, QueuePolicy, RequestSLO

    args = build_metrics_parser().parse_args(argv)
    try:
        bits_list = [int(bits) for bits in args.bits.split(",") if bits.strip()]
    except ValueError:
        print(f"--bits must be a comma-separated list of integers, got {args.bits!r}",
              file=sys.stderr)
        return 2
    if not bits_list:
        print(f"--bits must name at least one bitwidth, got {args.bits!r}", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    model = build_model(
        args.model, num_classes=args.num_classes, in_channels=args.in_channels, rng=rng
    )
    input_shape = _model_input_shape(args.model, args)
    repository = ModelRepository()
    repository.add_model(args.model, model, input_shape)
    # A replica of the same architecture sharing the same exports: its
    # warm-up resolves every plan from the content-addressed cache, so the
    # dump demonstrates plan_cache hits alongside the compile misses.
    replica = build_model(
        args.model,
        num_classes=args.num_classes,
        in_channels=args.in_channels,
        rng=np.random.default_rng(args.seed),
    )
    replica_name = f"{args.model}-replica"
    repository.add_model(replica_name, replica, input_shape)
    try:
        for width in bits_list:
            export = export_quantized_model(
                model, {name: width for name, _ in model.named_parameters()}
            )
            repository.add_export(args.model, export)
            repository.add_export(replica_name, export)
    except ValueError as error:
        # e.g. a bitwidth outside the quantiser's supported range.
        print(f"metrics run failed: {error}", file=sys.stderr)
        return 2

    slo = RequestSLO(
        max_latency_s=None if args.max_latency_ms is None else args.max_latency_ms / 1000.0
    )
    device = None if args.device == "none" else args.device
    service = InferenceService(
        repository,
        workers=args.workers,
        queue_policy=QueuePolicy(max_batch_size=args.batch_size),
        compute_profile=COMPUTE_PROFILES[device] if device else None,
        energy_model=EnergyModel() if device else None,
    )
    sample_rng = np.random.default_rng(args.seed + 1)
    with service:
        futures = [
            service.submit(
                args.model if index % 2 == 0 else replica_name,
                sample_rng.normal(size=input_shape),
                slo,
            )
            for index in range(args.requests)
        ]
        for future in futures:
            future.result(timeout=60.0)
    snapshot = service.metrics_snapshot()

    if args.json:
        import json

        print(json.dumps(snapshot.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"metrics: {args.model} bits={','.join(map(str, bits_list))} "
            f"workers={args.workers} requests={args.requests}"
        )
        print()
        print(snapshot.render_text())
    if args.json_out:
        path = dump_json(snapshot.as_dict(), args.json_out)
        if not args.json:
            print(f"\nsnapshot written to {path}")
    return 0


# --------------------------------------------------------------------------- #
# repro codegen
# --------------------------------------------------------------------------- #
def build_codegen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-codegen",
        description=(
            "Inspect and exercise the native codegen backend: compiler / "
            "BLAS-bridge availability, the on-disk artifact cache, and a "
            "build-and-bitwise-verify probe of every kernel family."
        ),
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="print the backend status (the default action)",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete every compiled artifact from the cache directory",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "emit, compile and bitwise-verify one kernel per family "
            "(conv2d, linear, elementwise); exit 1 if any family fails "
            "on a host with a working compiler"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="pin the artifact cache directory for this invocation",
    )
    parser.add_argument("--json", action="store_true", help="print results as JSON")
    return parser


def run_codegen(argv: Optional[Sequence[str]] = None) -> int:
    import json

    from repro.runtime import codegen

    args = build_codegen_parser().parse_args(argv)
    if args.cache_dir is not None:
        codegen.configure(cache_dir_path=args.cache_dir)

    if args.clear_cache:
        removed = codegen.clear_cache()
        print(f"codegen: removed {removed} cached artifacts from {codegen.cache_dir()}")

    exit_code = 0
    if args.verify:
        report = codegen.verify_backend()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(f"codegen verify: compiler={report['compiler']} blas={report['blas']}")
            print(f"  cache_dir: {report['cache_dir']}")
            for family in ("conv2d", "linear", "elementwise"):
                verdict = "ok" if report[family] else "FAILED"
                print(f"  {family}: {verdict}")
            print(
                f"  builds: {report['built']} compiled, {report['cached']} "
                f"from warm cache, {report['failed']} failed"
            )
        if report["compiler"] is not None and not all(
            report[family] for family in ("conv2d", "linear", "elementwise")
        ):
            exit_code = 1
    elif args.status or not args.clear_cache:
        status = codegen.status()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(f"codegen: enabled={status['enabled']}")
            print(f"  compiler: {status['compiler'] or 'none found'}")
            print(f"  blas: {status['blas']}")
            print(f"  cache_dir: {status['cache_dir']} ({status['artifacts']} artifacts)")
            print(f"  builds: {status['builds']}")
            print(f"  dispatches: {status['dispatches']}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch ``python -m repro.cli {train,experiment,serve-bench,adapt-bench,plan-inspect,autotune,codegen,metrics} ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "train":
        return run_train(rest)
    if command == "experiment":
        return run_experiment(rest)
    if command == "serve-bench":
        return run_serve_bench(rest)
    if command == "adapt-bench":
        return run_adapt_bench_cli(rest)
    if command == "plan-inspect":
        return run_plan_inspect(rest)
    if command == "autotune":
        return run_autotune(rest)
    if command == "codegen":
        return run_codegen(rest)
    if command == "metrics":
        return run_metrics(rest)
    print(
        f"unknown command {command!r}; expected 'train', 'experiment', "
        f"'serve-bench', 'adapt-bench', 'plan-inspect', 'autotune', "
        f"'codegen' or 'metrics'",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
