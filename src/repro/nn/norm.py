"""Batch normalisation layers.

The paper trains with BN [10] and no dropout.  Running statistics are kept as
plain numpy buffers; the affine scale/shift are :class:`Parameter` objects
flagged ``quantisable=False`` by default because they are tiny relative to
conv/linear weights (the controller may still include them if configured).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, is_grad_enabled


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features), name="bn_weight", quantisable=False)
        self.bias = Parameter(np.zeros(num_features), name="bn_bias", quantisable=False)
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _normalise(self, x: Tensor, axes, view_shape) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            batch_mean = mean.data.reshape(self.num_features)
            batch_var = var.data.reshape(self.num_features)
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            new_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            self.update_buffer("running_mean", new_mean)
            self.update_buffer("running_var", new_var)
            normalised = (x - mean) / (var + self.eps).sqrt()
            scale = self.weight.reshape(view_shape)
            shift = self.bias.reshape(view_shape)
            return normalised * scale + shift
        if not is_grad_enabled():
            # Evaluation under no_grad: skip the per-op Tensor wrappers and
            # run the grad-free kernel (same arithmetic, same result).
            return Tensor(
                kernels.batch_norm(
                    x.data,
                    self.running_mean,
                    self.running_var,
                    self.weight.data,
                    self.bias.data,
                    self.eps,
                    view_shape,
                )
            )
        # Eval-mode BN with fixed statistics is an affine layer: fold the
        # running stats into a per-channel scale/shift so only two
        # elementwise operations touch the (large) activation -- the same
        # folded form every inference runtime lowers BN to, and the form
        # the grad-free kernel above computes.  The per-channel arithmetic
        # stays in autograd so gradients still reach weight and bias when
        # fine-tuning against frozen statistics.
        denom = Tensor(np.sqrt(self.running_var + self.eps).reshape(view_shape))
        scale = self.weight.reshape(view_shape) / denom
        shift = self.bias.reshape(view_shape) - Tensor(
            self.running_mean.reshape(view_shape)
        ) * scale
        return x * scale + shift


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over NCHW feature maps."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        return self._normalise(x, axes=(0, 2, 3), view_shape=(1, self.num_features, 1, 1))


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over (N, C) feature vectors."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C) input, got shape {x.shape}")
        return self._normalise(x, axes=(0,), view_shape=(1, self.num_features))
