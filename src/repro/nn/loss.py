"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class Loss(Module):
    """Base class for losses (callable modules returning scalar tensors)."""


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over integer class labels.

    Accepts logits of shape ``(N, C)`` and labels as an ``(N,)`` integer numpy
    array (or anything convertible).  Reduction is always the mean, matching
    the paper's training setup.
    """

    def forward(self, logits: Tensor, labels) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"labels shape {labels.shape} incompatible with logits {logits.shape}"
            )
        log_probs = F.log_softmax(logits, axis=1)
        one_hot = Tensor(F.one_hot(labels, logits.shape[1]))
        negative_log_likelihood = -(log_probs * one_hot).sum(axis=1)
        return negative_log_likelihood.mean()


class MSELoss(Loss):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float64))
        diff = prediction - target_t
        return (diff * diff).mean()
