"""Core trainable layers: Linear, Conv2d, and small utility layers."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F, init


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Random generator used for weight initialisation (He normal, per the
        paper's training recipe).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), rng=rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias", quantisable=False) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng=rng),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias", quantisable=False) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial(self, height: int, width: int) -> tuple:
        """Output spatial size for the given input size (used by cost models)."""
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return out_h, out_w

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class Identity(Module):
    """Pass-through module, useful as a placeholder for skipped blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0], -1))


class Dropout(Module):
    """Inverted dropout.

    The paper's recipe uses no dropout, but the layer is provided for the
    baseline methods and examples that want it.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)
