"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.nn.module import Module
from repro.tensor import Tensor


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, str(index), module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._ordered)
        setattr(self, str(index), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """Hold an indexable list of child modules (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._ordered)
        setattr(self, str(index), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList has no forward; index into it explicitly")
