"""Neural-network layers built on the autograd tensor engine.

The public surface intentionally mirrors ``torch.nn`` for the small subset of
layers the paper's models (ResNet-20/110, MobileNetV2, CifarNet) need, so
model definitions in :mod:`repro.models` read like conventional PyTorch code.
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential, ModuleList
from repro.nn.layers import Linear, Conv2d, Identity, Flatten, Dropout
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.activations import ReLU, ReLU6, Sigmoid, Tanh, LeakyReLU
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.loss import CrossEntropyLoss, MSELoss, Loss

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "Identity",
    "Flatten",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "CrossEntropyLoss",
    "MSELoss",
    "Loss",
]
