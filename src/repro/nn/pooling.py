"""Pooling layers."""

from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class MaxPool2d(Module):
    """Max pooling over NCHW feature maps."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling over NCHW feature maps."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling: NCHW -> NC (the CIFAR ResNet head)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
