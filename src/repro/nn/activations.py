"""Activation layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """ReLU clipped at 6 (used by MobileNetV2)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clamp(0.0, 6.0)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (x - positive) * self.negative_slope
        return positive + negative


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
