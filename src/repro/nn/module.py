"""Module and Parameter base classes.

A :class:`Module` owns :class:`Parameter` objects and child modules, exposes
them through ``parameters()`` / ``named_parameters()`` and provides the
train/eval switch used by batch normalisation and dropout.

Parameters carry extra metadata needed by the quantisation layer and by the
APT controller:

* ``quantisable`` -- whether APT / fixed-precision trainers are allowed to
  quantise this parameter (biases and BN affine parameters are learnable but
  tiny; the paper quantises weights, and the controller can be configured to
  include or exclude the rest).
* ``layer_id`` -- assigned by the precision controller so per-layer metrics
  (Gavg) and bitwidths can be tracked.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    In addition to the autograd machinery inherited from :class:`Tensor`, a
    parameter knows whether it may be quantised and which logical layer it
    belongs to (filled in by the precision controller).
    """

    __slots__ = ("quantisable", "layer_id")

    def __init__(self, data, name: Optional[str] = None, quantisable: bool = True) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)
        self.quantisable = quantisable
        self.layer_id: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, name={self.name!r}, quantisable={self.quantisable})"


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer in place of re-registration."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # Modes and gradient handling
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter and buffer arrays (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer:{name}"] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays previously produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer:"):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{params[name].data.shape} vs {value.shape}"
                )
            params[name].data = value.copy()
        buffer_owners = self._collect_buffer_owners()
        for name, value in state.items():
            if not name.startswith("buffer:"):
                continue
            key = name[len("buffer:"):]
            if key in buffer_owners:
                owner, local_name = buffer_owners[key]
                owner.update_buffer(local_name, np.array(value, copy=True))

    def _collect_buffer_owners(self) -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}

        def visit(module: "Module", prefix: str) -> None:
            for local_name in module._buffers:
                owners[f"{prefix}{local_name}"] = (module, local_name)
            for child_name, child in module._modules.items():
                visit(child, f"{prefix}{child_name}.")

        visit(self, "")
        return owners

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters() if p.requires_grad or not trainable_only)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
