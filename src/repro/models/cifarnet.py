"""Architectures referenced by the Table I baselines.

* :class:`CifarNet` -- the small two-conv / two-fc network TernGrad reports
  CIFAR-10 results on.
* :class:`VGGLike` -- the plain VGG-style stack WAGE uses ("VGG-like" in
  Table I), scaled by a width multiplier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor


class CifarNet(nn.Module):
    """Two convolutional blocks followed by two fully connected layers."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        image_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        c1 = max(4, int(round(32 * width_multiplier)))
        c2 = max(4, int(round(64 * width_multiplier)))
        hidden = max(16, int(round(384 * width_multiplier)))
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, c1, 5, padding=2, rng=rng),
            nn.BatchNorm2d(c1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 5, padding=2, rng=rng),
            nn.BatchNorm2d(c2),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        spatial = image_size // 4
        self.flatten = nn.Flatten()
        self.classifier = nn.Sequential(
            nn.Linear(c2 * spatial * spatial, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.flatten(self.features(x)))


class VGGLike(nn.Module):
    """Plain 3x3-conv stack in the style of the WAGE experiments."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        widths = [max(4, int(round(c * width_multiplier))) for c in (64, 128, 256)]
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], 3, padding=1, rng=rng),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
            nn.Conv2d(widths[0], widths[0], 3, padding=1, rng=rng),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(widths[0], widths[1], 3, padding=1, rng=rng),
            nn.BatchNorm2d(widths[1]),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(widths[1], widths[2], 3, padding=1, rng=rng),
            nn.BatchNorm2d(widths[2]),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
        )
        self.classifier = nn.Linear(widths[2], num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
