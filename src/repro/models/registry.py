"""Model registry: build any supported architecture by name.

The experiment harness and the examples construct models through
:func:`build_model` so a single ``--model`` string selects the architecture,
and the reduced-scale benchmark configurations only need to pass a width
multiplier.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.models.cifarnet import CifarNet, VGGLike
from repro.models.mobilenetv2 import mobilenetv2_cifar
from repro.models.resnet import resnet20, resnet110
from repro.models.simple import MLP, SmallConvNet, TinyConvNet
from repro.nn.module import Module


def _build_mlp(num_classes: int, width_multiplier: float, in_channels: int, rng) -> Module:
    hidden = max(8, int(round(64 * width_multiplier)))
    return MLP(in_features=in_channels, num_classes=num_classes, hidden=(hidden, hidden), rng=rng)


_BUILDERS: Dict[str, Callable[..., Module]] = {
    "resnet20": lambda num_classes, width_multiplier, in_channels, rng: resnet20(
        num_classes=num_classes, width_multiplier=width_multiplier, rng=rng
    ),
    "resnet110": lambda num_classes, width_multiplier, in_channels, rng: resnet110(
        num_classes=num_classes, width_multiplier=width_multiplier, rng=rng
    ),
    "mobilenetv2": lambda num_classes, width_multiplier, in_channels, rng: mobilenetv2_cifar(
        num_classes=num_classes, width_multiplier=width_multiplier, rng=rng
    ),
    "cifarnet": lambda num_classes, width_multiplier, in_channels, rng: CifarNet(
        num_classes=num_classes, width_multiplier=width_multiplier, in_channels=in_channels, rng=rng
    ),
    "vgg_like": lambda num_classes, width_multiplier, in_channels, rng: VGGLike(
        num_classes=num_classes, width_multiplier=width_multiplier, in_channels=in_channels, rng=rng
    ),
    "small_convnet": lambda num_classes, width_multiplier, in_channels, rng: SmallConvNet(
        in_channels=in_channels, num_classes=num_classes, width=max(4, int(round(16 * width_multiplier))), rng=rng
    ),
    "tiny_convnet": lambda num_classes, width_multiplier, in_channels, rng: TinyConvNet(
        in_channels=in_channels, num_classes=num_classes, width=max(4, int(round(8 * width_multiplier))), rng=rng
    ),
    "mlp": _build_mlp,
}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(
    name: str,
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    in_channels: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Construct a model by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_models`.
    num_classes:
        Output dimensionality.
    width_multiplier:
        Channel / hidden-width scaling factor (1.0 = paper-size).
    in_channels:
        Input channels for convolutional models; input features for ``mlp``.
    rng:
        Generator for reproducible initialisation.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; available: {', '.join(available_models())}") from None
    return builder(num_classes, width_multiplier, in_channels, rng)
