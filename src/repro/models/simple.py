"""Small models for tests, examples and fast benchmark configurations."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor


class MLP(nn.Module):
    """Fully connected classifier with configurable hidden sizes."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (64, 64),
        batch_norm: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        layers = []
        previous = in_features
        for width in hidden:
            layers.append(nn.Linear(previous, width, rng=rng))
            if batch_norm:
                layers.append(nn.BatchNorm1d(width))
            layers.append(nn.ReLU())
            previous = width
        layers.append(nn.Linear(previous, num_classes, rng=rng))
        self.body = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


class TinyConvNet(nn.Module):
    """Two conv blocks + linear head; the smallest model that exercises conv/BN."""

    def __init__(
        self,
        in_channels: int = 1,
        num_classes: int = 10,
        width: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, width, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(width, width * 2, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(width * 2),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
        )
        self.classifier = nn.Linear(width * 2, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class SmallConvNet(nn.Module):
    """Three conv blocks + linear head; the default reduced-scale CNN.

    Deep enough (4 weight layers) for layer-wise precision adaptation to show
    differentiated behaviour, shallow enough to train on CPU within the fast
    benchmark configurations.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, width, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(width, width * 2, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(width * 2),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(width * 2, width * 4, kernel_size=3, padding=1, rng=rng),
            nn.BatchNorm2d(width * 4),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
        )
        self.classifier = nn.Linear(width * 4, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
