"""CIFAR-style residual networks (He et al., ref. [6] of the paper).

``resnet20`` and ``resnet110`` follow the standard CIFAR ResNet layout:
a 3x3 stem with 16 channels, three stages of ``n`` basic blocks with 16/32/64
channels (stride 2 between stages, option-A / projection-shortcut where the
shape changes), global average pooling, and a linear classifier.
ResNet-20 has n=3, ResNet-110 has n=18.

``width_multiplier`` scales all channel counts so the architecture can be
instantiated at a CPU-feasible size for the reduced benchmark configurations
while keeping the same depth and connectivity.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with BN/ReLU and an identity or projection skip."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class CifarResNet(nn.Module):
    """ResNet-(6n+2) for 32x32 inputs."""

    def __init__(
        self,
        num_blocks_per_stage: int,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_blocks_per_stage < 1:
            raise ValueError("need at least one block per stage")
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        widths = [max(4, int(round(c * width_multiplier))) for c in (16, 32, 64)]
        self.depth = 6 * num_blocks_per_stage + 2

        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], 3, stride=1, padding=1, rng=rng),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
        )
        self.stage1 = self._make_stage(widths[0], widths[0], num_blocks_per_stage, 1, rng)
        self.stage2 = self._make_stage(widths[0], widths[1], num_blocks_per_stage, 2, rng)
        self.stage3 = self._make_stage(widths[1], widths[2], num_blocks_per_stage, 2, rng)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(
        in_channels: int,
        out_channels: int,
        blocks: int,
        stride: int,
        rng: Optional[np.random.Generator],
    ) -> nn.Sequential:
        layers: List[nn.Module] = [BasicBlock(in_channels, out_channels, stride, rng=rng)]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(out_channels, out_channels, 1, rng=rng))
        return nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.classifier(out)


def resnet_n(
    n: int,
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> CifarResNet:
    """Build a ResNet-(6n+2)."""
    return CifarResNet(n, num_classes=num_classes, width_multiplier=width_multiplier, rng=rng)


def resnet20(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> CifarResNet:
    """ResNet-20 (n=3), the paper's primary backbone."""
    return resnet_n(3, num_classes, width_multiplier, rng)


def resnet110(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> CifarResNet:
    """ResNet-110 (n=18), used for the CIFAR-100 comparison."""
    return resnet_n(18, num_classes, width_multiplier, rng)
