"""MobileNetV2 adapted to 32x32 inputs (Sandler et al., ref. [17]).

The CIFAR adaptation follows common practice: the stem stride is 1 instead
of 2 and the first inverted-residual stage keeps stride 1 so the feature map
is not collapsed too early.  ``width_multiplier`` scales every channel count
(and can be set well below 1.0 for the CPU-feasible benchmark
configurations); ``depth_multiplier`` scales the number of blocks per stage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.tensor import Tensor


def _scaled(channels: int, multiplier: float, minimum: int = 4) -> int:
    return max(minimum, int(round(channels * multiplier)))


class InvertedResidual(nn.Module):
    """MobileNetV2 inverted residual block (expansion -> 3x3 -> projection).

    The 3x3 convolution is a full (dense) convolution rather than a depthwise
    one: the autograd engine does not implement grouped convolutions, and the
    distinction does not affect the precision-adaptation behaviour the
    reproduction studies.  The expansion / projection structure, ReLU6
    activations, linear bottleneck and residual connection are preserved.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expand_ratio: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels

        layers: List[nn.Module] = []
        if expand_ratio != 1:
            layers += [
                nn.Conv2d(in_channels, hidden, 1, rng=rng),
                nn.BatchNorm2d(hidden),
                nn.ReLU6(),
            ]
        layers += [
            nn.Conv2d(hidden, hidden, 3, stride=stride, padding=1, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU6(),
            nn.Conv2d(hidden, out_channels, 1, rng=rng),
            nn.BatchNorm2d(out_channels),
        ]
        self.block = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out


#: (expand_ratio, channels, num_blocks, stride) per stage -- the standard
#: MobileNetV2 table with the CIFAR stride adaptation.
_CIFAR_STAGES: Sequence[Tuple[int, int, int, int]] = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


class MobileNetV2Cifar(nn.Module):
    """MobileNetV2 for 32x32 images."""

    def __init__(
        self,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        depth_multiplier: float = 1.0,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if width_multiplier <= 0 or depth_multiplier <= 0:
            raise ValueError("multipliers must be positive")
        stem_channels = _scaled(32, width_multiplier)
        head_channels = _scaled(1280, width_multiplier, minimum=64)

        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, rng=rng),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU6(),
        )

        blocks: List[nn.Module] = []
        channels = stem_channels
        for expand_ratio, base_channels, num_blocks, stride in _CIFAR_STAGES:
            out_channels = _scaled(base_channels, width_multiplier)
            repeats = max(1, int(round(num_blocks * depth_multiplier)))
            for block_index in range(repeats):
                block_stride = stride if block_index == 0 else 1
                blocks.append(
                    InvertedResidual(channels, out_channels, block_stride, expand_ratio, rng=rng)
                )
                channels = out_channels
        self.blocks = nn.Sequential(*blocks)

        self.head = nn.Sequential(
            nn.Conv2d(channels, head_channels, 1, rng=rng),
            nn.BatchNorm2d(head_channels),
            nn.ReLU6(),
            nn.GlobalAvgPool2d(),
        )
        self.classifier = nn.Linear(head_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        return self.classifier(out)


def mobilenetv2_cifar(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    depth_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> MobileNetV2Cifar:
    """Convenience constructor matching the paper's third backbone."""
    return MobileNetV2Cifar(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        depth_multiplier=depth_multiplier,
        rng=rng,
    )
