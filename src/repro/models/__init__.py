"""Model zoo.

Contains the three backbones the paper evaluates (ResNet-20, ResNet-110,
MobileNetV2, all in their CIFAR form), the architectures referenced by the
Table I baselines (CifarNet for TernGrad, a VGG-like network for WAGE), and
small models (MLP, SmallConvNet) used by the fast tests, examples and
reduced-scale benchmark configurations.

All constructors accept ``width_multiplier`` so the same architecture can be
instantiated at a fraction of its nominal width for CPU-feasible runs, and an
explicit ``rng`` for reproducible initialisation.
"""

from repro.models.simple import MLP, SmallConvNet, TinyConvNet
from repro.models.resnet import CifarResNet, resnet20, resnet110, resnet_n
from repro.models.mobilenetv2 import MobileNetV2Cifar, mobilenetv2_cifar
from repro.models.cifarnet import CifarNet, VGGLike
from repro.models.registry import build_model, available_models

__all__ = [
    "MLP",
    "SmallConvNet",
    "TinyConvNet",
    "CifarResNet",
    "resnet20",
    "resnet110",
    "resnet_n",
    "MobileNetV2Cifar",
    "mobilenetv2_cifar",
    "CifarNet",
    "VGGLike",
    "build_model",
    "available_models",
]
