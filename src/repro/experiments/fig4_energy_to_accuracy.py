"""Figure 4: training energy to reach a target accuracy, per method.

The paper's grouped-bar figure: for each Top-1 target (91.0, 91.25, ...,
92.0 on CIFAR-10 / ResNet-20), the energy each fixed-bitwidth model (12, 14,
16, 32) and APT spends to first reach that accuracy, normalised to the
32-bit model's full-run cost.  Observations the reproduction should preserve:

* APT reaches every target with the least energy;
* the lowest fixed bitwidth is the cheapest of the fixed models but cannot
  reach the highest targets at all (it is "absent from the group");
* fixed-bitwidth models pay disproportionately for the last fraction of a
  percent of accuracy, APT much less so.

At reduced scale the accuracy targets are chosen relative to what the fp32
run achieves rather than hard-coded to 91-92%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult, fp32_reference_energy
from repro.experiments.scales import ExperimentScale, get_scale
from repro.experiments.workload import build_workload


@dataclass
class Fig4Result:
    """Normalised energy-to-target for every method and accuracy target."""

    #: Accuracy targets (fractions in [0, 1]).
    targets: List[float]
    #: method name -> target -> normalised energy (None if target not reached).
    energy_to_target: Dict[str, Dict[float, Optional[float]]]
    #: Full training curves, for reference.
    runs: Dict[str, StrategyRunResult]
    fp32_total_energy_pj: float

    def methods(self) -> List[str]:
        return list(self.energy_to_target)

    def format_rows(self) -> List[str]:
        rows = ["Figure 4: normalised training energy to reach target accuracy"]
        header = "  target   " + "  ".join(f"{name:>12s}" for name in self.methods())
        rows.append(header)
        for target in self.targets:
            cells = []
            for name in self.methods():
                value = self.energy_to_target[name][target]
                cells.append(f"{value:12.3f}" if value is not None else f"{'absent':>12s}")
            rows.append(f"  {target:7.3f}  " + "  ".join(cells))
        return rows


def run_fig4(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    fixed_bitwidths: Sequence[int] = (8, 12, 16),
    num_targets: int = 4,
    t_min: float = 6.0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Fig4Result:
    """Reproduce Figure 4 (energy to reach target accuracies)."""
    scale = scale or get_scale("bench")
    epochs = epochs if epochs is not None else scale.epochs

    specs = [RunSpec(scale=scale, strategy_kind="fp32", seed=seed, epochs=epochs, label="fp32")]
    for bits in fixed_bitwidths:
        specs.append(
            RunSpec(
                scale=scale,
                strategy_kind="fixed",
                strategy_params={"bits": bits},
                seed=seed,
                epochs=epochs,
                label=f"{bits}-bit",
            )
        )
    specs.append(
        RunSpec(
            scale=scale,
            strategy_kind="apt",
            strategy_params={
                "initial_bits": 6,
                "t_min": t_min,
                "metric_interval": scale.metric_interval,
            },
            seed=seed,
            epochs=epochs,
            label="apt",
        )
    )
    results = execute_specs(
        specs, workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )
    runs: Dict[str, StrategyRunResult] = {
        spec.label: result for spec, result in zip(specs, results)
    }
    workload = build_workload(scale)

    # Accuracy targets: evenly spaced between ~70% and ~100% of the best
    # accuracy the fp32 run achieved (the paper uses 91%..92% absolute).  The
    # top target is nudged just below the fp32 best so it is guaranteed to be
    # attainable by at least the fp32 run itself.
    fp32_best = runs["fp32"].best_accuracy
    fractions = [0.7 + 0.3 * i / (num_targets - 1) for i in range(num_targets)]
    targets = [fp32_best * fraction - 1e-9 for fraction in fractions]

    fp32_total = fp32_reference_energy(workload, epochs)
    energy_to_target: Dict[str, Dict[float, Optional[float]]] = {}
    for name, run in runs.items():
        per_target: Dict[float, Optional[float]] = {}
        for target in targets:
            energy = run.history.energy_to_reach(target)
            per_target[target] = None if energy is None else energy / fp32_total
        energy_to_target[name] = per_target

    return Fig4Result(
        targets=targets,
        energy_to_target=energy_to_target,
        runs=runs,
        fp32_total_energy_pj=fp32_total,
    )
