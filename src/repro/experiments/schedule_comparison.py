"""Adaptive (APT) versus open-loop precision schedules.

Not a figure from the paper, but the comparison its novelty claim rests on:
static mixed precision and hand-crafted ramps are mainstream; what does the
Gavg feedback loop add?  The experiment trains, on the same workload and from
the same initialisation:

* APT (the paper's feedback controller),
* a uniform static low-bit configuration (the "just quantise everything"
  baseline),
* a hand-crafted static mixed configuration (more bits for the first and
  last layers),
* an open-loop linear ramp that adds bits on a schedule with no feedback,
* fp32 as the reference,

and reports accuracy, normalised energy and normalised training memory for
each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class ScheduleComparisonRow:
    """Outcome of one scheduling policy."""

    policy: str
    adaptive: bool
    accuracy: float
    normalised_energy: float
    normalised_memory: float
    average_bits: float


@dataclass
class ScheduleComparisonResult:
    rows: List[ScheduleComparisonRow]
    runs: Dict[str, StrategyRunResult]

    def row_for(self, policy: str) -> ScheduleComparisonRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no row for policy {policy!r}")

    def format_rows(self) -> List[str]:
        rows = ["Adaptive vs open-loop precision schedules"]
        rows.append(
            f"  {'policy':<22s} {'adaptive':>8s} {'accuracy':>9s} {'energy':>8s} {'memory':>8s} {'bits':>6s}"
        )
        for row in self.rows:
            rows.append(
                f"  {row.policy:<22s} {'yes' if row.adaptive else 'no':>8s} "
                f"{row.accuracy:9.3f} {row.normalised_energy:8.3f} "
                f"{row.normalised_memory:8.3f} {row.average_bits:6.1f}"
            )
        return rows


def run_schedule_comparison(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    low_bits: int = 6,
    ramp_end_bits: int = 14,
    t_min: float = 6.0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> ScheduleComparisonResult:
    """Run the adaptive-vs-open-loop comparison at the given scale."""
    scale = scale or get_scale("bench")
    epochs = epochs if epochs is not None else scale.epochs
    ramp_epochs = max(1, int(0.6 * epochs))

    policies = {
        "fp32": (RunSpec(scale=scale, strategy_kind="fp32", seed=seed, epochs=epochs, label="fp32"), False),
        f"uniform_{low_bits}bit": (
            RunSpec(
                scale=scale,
                strategy_kind="fixed",
                strategy_params={"bits": low_bits},
                seed=seed,
                epochs=epochs,
                label=f"uniform_{low_bits}bit",
            ),
            False,
        ),
        "static_first_last": (
            RunSpec(
                scale=scale,
                strategy_kind="static_first_last",
                strategy_params={"edge_bits": ramp_end_bits, "interior_bits": low_bits},
                seed=seed,
                epochs=epochs,
                label="static_first_last",
            ),
            False,
        ),
        "linear_ramp": (
            RunSpec(
                scale=scale,
                strategy_kind="linear_ramp",
                strategy_params={
                    "start_bits": low_bits,
                    "end_bits": ramp_end_bits,
                    "ramp_epochs": ramp_epochs,
                },
                seed=seed,
                epochs=epochs,
                label="linear_ramp",
            ),
            False,
        ),
        "apt": (
            RunSpec(
                scale=scale,
                strategy_kind="apt",
                strategy_params={
                    "initial_bits": low_bits,
                    "t_min": t_min,
                    "metric_interval": scale.metric_interval,
                },
                seed=seed,
                epochs=epochs,
                label="apt",
            ),
            True,
        ),
    }

    results = execute_specs(
        [spec for spec, _ in policies.values()],
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
    )

    rows: List[ScheduleComparisonRow] = []
    runs: Dict[str, StrategyRunResult] = {}
    for (policy, (_, adaptive)), result in zip(policies.items(), results):
        runs[policy] = result
        rows.append(
            ScheduleComparisonRow(
                policy=policy,
                adaptive=adaptive,
                accuracy=result.history.final_test_accuracy,
                normalised_energy=result.normalised_energy,
                normalised_memory=result.normalised_memory,
                average_bits=result.history.records[-1].average_bits,
            )
        )
    return ScheduleComparisonResult(rows=rows, runs=runs)
