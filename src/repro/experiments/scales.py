"""Workload scale presets.

The paper's experiments train ResNet-20/110 and MobileNetV2 on CIFAR-10/100
for 200 epochs on a GPU.  A pure-numpy CPU substrate cannot run that inside a
test or benchmark budget, so every experiment accepts a scale preset:

* ``smoke``  -- seconds; MLP on Gaussian blobs; used by the unit tests.
* ``bench``  -- tens of seconds; small CNN on synthetic digits; the default
  for the benchmark harness, large enough for the qualitative shapes
  (orderings, crossovers, adaptation dynamics) to be visible.
* ``bench_cifar`` -- minutes; reduced-width CNN on the synthetic CIFAR-10
  stand-in at 32x32; closer to the paper's workload, used when more fidelity
  is wanted.
* ``paper`` -- the full-size configuration (ResNet-20, 200 epochs, 50k
  images).  Provided for completeness and documented in EXPERIMENTS.md; not
  run by default because it is not feasible on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class ExperimentScale:
    """Everything needed to size one experiment run."""

    name: str
    model: str
    dataset: str
    epochs: int
    batch_size: int
    train_samples: int
    test_samples: int
    learning_rate: float
    lr_milestones: Tuple[int, ...]
    width_multiplier: float = 1.0
    num_classes: int = 10
    image_size: int = 32
    in_channels: int = 3
    metric_interval: int = 5
    use_augmentation: bool = False
    seed: int = 0

    @property
    def input_shape(self) -> Tuple[int, ...]:
        if self.dataset in ("blobs", "spirals"):
            return (self.in_channels,)
        return (self.in_channels, self.image_size, self.image_size)


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        model="mlp",
        dataset="blobs",
        epochs=4,
        batch_size=32,
        train_samples=256,
        test_samples=64,
        learning_rate=0.05,
        lr_milestones=(3,),
        num_classes=4,
        in_channels=16,
        metric_interval=2,
    ),
    "bench": ExperimentScale(
        name="bench",
        model="tiny_convnet",
        dataset="digits",
        epochs=14,
        batch_size=64,
        train_samples=512,
        test_samples=128,
        learning_rate=0.08,
        lr_milestones=(9, 12),
        num_classes=10,
        image_size=12,
        in_channels=1,
        metric_interval=2,
    ),
    "bench_cifar": ExperimentScale(
        name="bench_cifar",
        model="small_convnet",
        dataset="cifar10",
        epochs=10,
        batch_size=64,
        train_samples=1500,
        test_samples=300,
        learning_rate=0.08,
        lr_milestones=(6, 8),
        num_classes=10,
        image_size=32,
        in_channels=3,
        width_multiplier=0.5,
        metric_interval=4,
        use_augmentation=True,
    ),
    "paper": ExperimentScale(
        name="paper",
        model="resnet20",
        dataset="cifar10",
        epochs=200,
        batch_size=128,
        train_samples=50000,
        test_samples=10000,
        learning_rate=0.1,
        lr_milestones=(100, 150),
        num_classes=10,
        image_size=32,
        in_channels=3,
        metric_interval=50,
        use_augmentation=True,
    ),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {', '.join(sorted(SCALES))}"
        ) from None
