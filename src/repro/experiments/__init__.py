"""Experiment runners: one module per figure / table of the paper.

Every runner follows the same pattern:

* it accepts an :class:`~repro.experiments.scales.ExperimentScale` that
  selects the workload size ("smoke" for the test-suite, "bench" for the
  benchmark harness, "paper" for the full-size configuration the paper used),
* it runs the required training jobs through the shared
  :class:`~repro.train.trainer.Trainer`,
* it returns a plain dataclass with the same rows / series the paper reports,
  plus a ``to_markdown()`` / ``format_rows()`` helper used by the benchmark
  harness and EXPERIMENTS.md.

See DESIGN.md section 4 for the experiment index.
"""

from repro.experiments.scales import ExperimentScale, SCALES, get_scale
from repro.experiments.workload import Workload, build_workload
from repro.experiments.runners import StrategyRunResult, run_strategy
from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunEvent,
    RunSpec,
    execute_spec,
    execute_specs,
)
from repro.experiments.fig1_gavg_dynamics import Fig1Result, run_fig1
from repro.experiments.fig2_training_curves import Fig2Result, run_fig2
from repro.experiments.fig3_bitwidth_trajectory import Fig3Result, run_fig3
from repro.experiments.fig4_energy_to_accuracy import Fig4Result, run_fig4
from repro.experiments.fig5_tradeoff_sweep import Fig5Result, run_fig5
from repro.experiments.table1_comparison import Table1Result, run_table1
from repro.experiments.ablations import AblationResult, run_ablations
from repro.experiments.schedule_comparison import (
    ScheduleComparisonResult,
    run_schedule_comparison,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "Workload",
    "build_workload",
    "StrategyRunResult",
    "run_strategy",
    "Orchestrator",
    "ResultStore",
    "RunEvent",
    "RunSpec",
    "execute_spec",
    "execute_specs",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Table1Result",
    "run_table1",
    "AblationResult",
    "run_ablations",
    "ScheduleComparisonResult",
    "run_schedule_comparison",
]
