"""Shared strategy runner used by every experiment module.

:func:`run_strategy` trains one precision strategy on one workload and
returns a :class:`StrategyRunResult`.  The result is a *picklable summary*:
it carries the training history, the resource totals, and — for adaptive
strategies — the controller's per-layer Gavg / bitwidth trajectories, but
**not** the live :class:`~repro.train.trainer.Trainer` (model, loaders,
optimiser state).  That keeps a sweep's worth of results small enough to
hold in memory and lets the experiment orchestrator ship results across
process boundaries and persist them as JSON.

Callers that genuinely need the trained model in-process (the ``repro-train``
checkpoint path) pass ``keep_trainer=True`` and read the optional
:attr:`StrategyRunResult.trainer` handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.workload import Workload
from repro.hardware.accounting import EnergyMeter
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import TrainingMemoryModel
from repro.hardware.profile import profile_model
from repro.optim.lr_scheduler import MultiStepLR
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.train.callbacks import Callback
from repro.train.history import TrainingHistory
from repro.train.strategy import PrecisionStrategy
from repro.train.trainer import Trainer


@dataclass
class StrategyRunResult:
    """Serialisable summary of one training run.

    Everything except :attr:`trainer` is plain data (floats, ints, lists,
    dicts, :class:`TrainingHistory`) and survives ``pickle`` and the JSON
    round-trip of :meth:`to_dict` / :meth:`from_dict`.
    """

    strategy_name: str
    history: TrainingHistory
    #: Total analytic training energy, picojoules.
    total_energy_pj: float
    #: Same, normalised to the fp32 reference energy for this workload.
    normalised_energy: float
    #: Peak training-time model memory, bits.
    peak_memory_bits: int
    #: Same, normalised to the all-fp32 model.
    normalised_memory: float
    #: Best test accuracy seen during the run.
    best_accuracy: float
    #: Human-readable strategy description (``strategy.describe()``).
    strategy_description: str = ""
    #: Per-layer smoothed-Gavg trajectories (APT only; Figure 1).
    gavg_by_layer: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    #: Per-layer bitwidth trajectories (APT only; Figure 3).
    bits_by_layer: Dict[str, List[int]] = field(default_factory=dict)
    #: Final stored bitwidth per quantised parameter (checkpoint metadata).
    weight_bits: Dict[str, int] = field(default_factory=dict)
    #: The live trainer, populated only on request (``keep_trainer=True``);
    #: never pickled or serialised with the summary.
    trainer: Optional[Trainer] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        """Plain-python representation for the orchestrator's result store."""
        return {
            "strategy_name": self.strategy_name,
            "strategy_description": self.strategy_description,
            "history": self.history.to_dict(),
            "total_energy_pj": self.total_energy_pj,
            "normalised_energy": self.normalised_energy,
            "peak_memory_bits": self.peak_memory_bits,
            "normalised_memory": self.normalised_memory,
            "best_accuracy": self.best_accuracy,
            "gavg_by_layer": self.gavg_by_layer,
            "bits_by_layer": self.bits_by_layer,
            "weight_bits": self.weight_bits,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StrategyRunResult":
        """Rebuild a summary written by :meth:`to_dict` (via JSON or not)."""
        return cls(
            strategy_name=payload["strategy_name"],
            history=TrainingHistory.from_dict(payload["history"]),
            total_energy_pj=float(payload["total_energy_pj"]),
            normalised_energy=float(payload["normalised_energy"]),
            peak_memory_bits=int(payload["peak_memory_bits"]),
            normalised_memory=float(payload["normalised_memory"]),
            best_accuracy=float(payload["best_accuracy"]),
            strategy_description=payload.get("strategy_description", ""),
            gavg_by_layer={
                # float() also restores the "Infinity"/"NaN" strings a JSON
                # writer uses for non-finite Gavg samples.
                name: [None if value is None else float(value) for value in values]
                for name, values in (payload.get("gavg_by_layer") or {}).items()
            },
            bits_by_layer={
                name: [int(bits) for bits in values]
                for name, values in (payload.get("bits_by_layer") or {}).items()
            },
            weight_bits={
                name: int(bits)
                for name, bits in (payload.get("weight_bits") or {}).items()
            },
        )


def fp32_reference_energy(workload: Workload, epochs: int, energy_model: Optional[EnergyModel] = None) -> float:
    """Energy (pJ) of training the workload for ``epochs`` epochs at fp32.

    Used as the normaliser for Figures 4 and 5; computed analytically without
    running the training loop (the energy model does not depend on the data).
    """
    model = workload.model_factory(seed=workload.scale.seed)
    profile = profile_model(model, workload.input_shape)
    meter = EnergyMeter(profile, energy_model or EnergyModel())
    per_epoch = meter.fp32_reference_epoch_pj(len(workload.train_set))
    return per_epoch * epochs


def run_strategy(
    workload: Workload,
    strategy: PrecisionStrategy,
    epochs: Optional[int] = None,
    seed: int = 0,
    optimizer_name: str = "sgd",
    learning_rate: Optional[float] = None,
    callbacks: Sequence[Callback] = (),
    energy_model: Optional[EnergyModel] = None,
    keep_trainer: bool = False,
) -> StrategyRunResult:
    """Train one strategy on a workload and collect the paper's measurements.

    The returned summary drops the trainer (model + loaders + optimiser)
    unless ``keep_trainer=True``; sweeps that train many strategies would
    otherwise pin every completed run's model in memory.
    """
    scale = workload.scale
    epochs = epochs if epochs is not None else scale.epochs
    learning_rate = learning_rate if learning_rate is not None else scale.learning_rate

    model = workload.model_factory(seed=seed)
    if optimizer_name == "sgd":
        optimizer = SGD(model.parameters(), lr=learning_rate, momentum=0.9, weight_decay=1e-4)
    elif optimizer_name == "adam":
        optimizer = Adam(model.parameters(), lr=min(learning_rate, 1e-2), weight_decay=1e-4)
    else:
        raise ValueError(f"unknown optimiser {optimizer_name!r}")
    scheduler = MultiStepLR(optimizer, milestones=list(scale.lr_milestones))

    profile = profile_model(model, workload.input_shape)
    energy_meter = EnergyMeter(profile, energy_model or EnergyModel())
    memory_model = TrainingMemoryModel()

    train_loader, test_loader = workload.loaders(seed=seed)
    trainer = Trainer(
        model=model,
        optimizer=optimizer,
        train_loader=train_loader,
        test_loader=test_loader,
        strategy=strategy,
        scheduler=scheduler,
        energy_meter=energy_meter,
        memory_model=memory_model,
        callbacks=callbacks,
    )
    history = trainer.fit(epochs)

    fp32_energy = fp32_reference_energy(workload, epochs, energy_model)
    fp32_memory = memory_model.total_bits(
        model, {name: 32 for name, _ in model.named_parameters()}
    )
    peak_memory = history.peak_memory_bits or fp32_memory

    # Capture the adaptive controller's trajectories (Figures 1 and 3) as
    # plain data so callers need not retain the strategy or trainer.
    controller = getattr(strategy, "controller", None)
    gavg_by_layer: Dict[str, List[Optional[float]]] = {}
    bits_by_layer: Dict[str, List[int]] = {}
    if controller is not None:
        if hasattr(controller, "gavg_history"):
            gavg_by_layer = controller.gavg_history()
        if hasattr(controller, "bits_history"):
            bits_by_layer = controller.bits_history()

    return StrategyRunResult(
        strategy_name=strategy.name,
        history=history,
        total_energy_pj=history.total_energy_pj,
        normalised_energy=history.total_energy_pj / fp32_energy if fp32_energy else 0.0,
        peak_memory_bits=peak_memory,
        normalised_memory=peak_memory / fp32_memory if fp32_memory else 0.0,
        best_accuracy=history.best_test_accuracy,
        strategy_description=strategy.describe(),
        gavg_by_layer=gavg_by_layer,
        bits_by_layer=bits_by_layer,
        weight_bits=dict(strategy.weight_bits()),
        trainer=trainer if keep_trainer else None,
    )
