"""Shared strategy runner used by every experiment module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.experiments.workload import Workload
from repro.hardware.accounting import EnergyMeter
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import TrainingMemoryModel
from repro.hardware.profile import profile_model
from repro.optim.lr_scheduler import MultiStepLR
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.train.callbacks import Callback
from repro.train.history import TrainingHistory
from repro.train.strategy import PrecisionStrategy
from repro.train.trainer import Trainer


@dataclass
class StrategyRunResult:
    """Everything one training run produces."""

    strategy_name: str
    history: TrainingHistory
    #: Total analytic training energy, picojoules.
    total_energy_pj: float
    #: Same, normalised to the fp32 reference energy for this workload.
    normalised_energy: float
    #: Peak training-time model memory, bits.
    peak_memory_bits: int
    #: Same, normalised to the all-fp32 model.
    normalised_memory: float
    #: Best test accuracy seen during the run.
    best_accuracy: float
    #: The trainer (kept so callers can inspect strategy state, e.g. the APT
    #: controller history for Figures 1 and 3).
    trainer: Trainer


def fp32_reference_energy(workload: Workload, epochs: int, energy_model: Optional[EnergyModel] = None) -> float:
    """Energy (pJ) of training the workload for ``epochs`` epochs at fp32.

    Used as the normaliser for Figures 4 and 5; computed analytically without
    running the training loop (the energy model does not depend on the data).
    """
    model = workload.model_factory(seed=workload.scale.seed)
    profile = profile_model(model, workload.input_shape)
    meter = EnergyMeter(profile, energy_model or EnergyModel())
    per_epoch = meter.fp32_reference_epoch_pj(len(workload.train_set))
    return per_epoch * epochs


def run_strategy(
    workload: Workload,
    strategy: PrecisionStrategy,
    epochs: Optional[int] = None,
    seed: int = 0,
    optimizer_name: str = "sgd",
    learning_rate: Optional[float] = None,
    callbacks: Sequence[Callback] = (),
    energy_model: Optional[EnergyModel] = None,
) -> StrategyRunResult:
    """Train one strategy on a workload and collect the paper's measurements."""
    scale = workload.scale
    epochs = epochs if epochs is not None else scale.epochs
    learning_rate = learning_rate if learning_rate is not None else scale.learning_rate

    model = workload.model_factory(seed=seed)
    if optimizer_name == "sgd":
        optimizer = SGD(model.parameters(), lr=learning_rate, momentum=0.9, weight_decay=1e-4)
    elif optimizer_name == "adam":
        optimizer = Adam(model.parameters(), lr=min(learning_rate, 1e-2), weight_decay=1e-4)
    else:
        raise ValueError(f"unknown optimiser {optimizer_name!r}")
    scheduler = MultiStepLR(optimizer, milestones=list(scale.lr_milestones))

    profile = profile_model(model, workload.input_shape)
    energy_meter = EnergyMeter(profile, energy_model or EnergyModel())
    memory_model = TrainingMemoryModel()

    train_loader, test_loader = workload.loaders(seed=seed)
    trainer = Trainer(
        model=model,
        optimizer=optimizer,
        train_loader=train_loader,
        test_loader=test_loader,
        strategy=strategy,
        scheduler=scheduler,
        energy_meter=energy_meter,
        memory_model=memory_model,
        callbacks=callbacks,
    )
    history = trainer.fit(epochs)

    fp32_energy = fp32_reference_energy(workload, epochs, energy_model)
    fp32_memory = memory_model.total_bits(
        model, {name: 32 for name, _ in model.named_parameters()}
    )
    peak_memory = history.peak_memory_bits or fp32_memory
    return StrategyRunResult(
        strategy_name=strategy.name,
        history=history,
        total_energy_pj=history.total_energy_pj,
        normalised_energy=history.total_energy_pj / fp32_energy if fp32_energy else 0.0,
        peak_memory_bits=peak_memory,
        normalised_memory=peak_memory / fp32_memory if fp32_memory else 0.0,
        best_accuracy=history.best_test_accuracy,
        trainer=trainer,
    )
