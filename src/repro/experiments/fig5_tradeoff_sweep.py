"""Figure 5: training energy and model size versus accuracy across T_min.

The paper sweeps the Gavg threshold ``T_min`` from 0.1 to 100 and scatters,
for each setting, the normalised training energy (orange) and normalised
training-time model size against the accuracy reached after 200 epochs.  The
expected shape:

* both resources increase monotonically (in trend) with ``T_min``,
* accuracy increases quickly for thresholds below ~1 and plateaus above it,
* memory follows the same trend as energy (both are driven by the allocated
  bitwidths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class TradeoffPoint:
    """One point of the Figure 5 scatter."""

    t_min: float
    accuracy: float
    normalised_energy: float
    normalised_memory: float
    average_bits: float


@dataclass
class Fig5Result:
    """The full sweep."""

    points: List[TradeoffPoint]
    runs: Dict[float, StrategyRunResult]

    def thresholds(self) -> List[float]:
        return [point.t_min for point in self.points]

    def format_rows(self) -> List[str]:
        rows = ["Figure 5: resource consumption vs accuracy across T_min"]
        rows.append(
            f"  {'T_min':>8s}  {'accuracy':>9s}  {'energy':>8s}  {'memory':>8s}  {'avg bits':>8s}"
        )
        for point in self.points:
            rows.append(
                f"  {point.t_min:8.2f}  {point.accuracy:9.3f}  "
                f"{point.normalised_energy:8.3f}  {point.normalised_memory:8.3f}  "
                f"{point.average_bits:8.2f}"
            )
        return rows


def run_fig5(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    thresholds: Sequence[float] = (0.1, 0.5, 1.0, 6.0, 20.0, 100.0),
    initial_bits: int = 6,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Fig5Result:
    """Reproduce Figure 5 (the T_min trade-off sweep)."""
    scale = scale or get_scale("bench")

    specs = [
        RunSpec(
            scale=scale,
            strategy_kind="apt",
            strategy_params={
                "initial_bits": initial_bits,
                "t_min": float(t_min),
                "metric_interval": scale.metric_interval,
            },
            seed=seed,
            epochs=epochs,
            label=f"t_min={float(t_min)}",
        )
        for t_min in thresholds
    ]
    results = execute_specs(
        specs, workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )

    points: List[TradeoffPoint] = []
    runs: Dict[float, StrategyRunResult] = {}
    for t_min, run in zip(thresholds, results):
        runs[float(t_min)] = run
        points.append(
            TradeoffPoint(
                t_min=float(t_min),
                accuracy=run.history.final_test_accuracy,
                normalised_energy=run.normalised_energy,
                normalised_memory=run.normalised_memory,
                average_bits=run.history.records[-1].average_bits,
            )
        )
    return Fig5Result(points=points, runs=runs)
