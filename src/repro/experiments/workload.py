"""Workload construction: scale preset -> model factory + data loaders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.data import (
    ArrayDataset,
    DataLoader,
    build_paper_augmentation,
    make_blobs,
    make_spirals,
    make_synthetic_cifar10,
    make_synthetic_cifar100,
    make_synthetic_digits,
)
from repro.experiments.scales import ExperimentScale
from repro.models import build_model
from repro.nn.module import Module


@dataclass
class Workload:
    """A sized experiment workload.

    ``model_factory`` builds a freshly initialised model (deterministic per
    seed) so every strategy in a comparison starts from identical weights.
    """

    scale: ExperimentScale
    model_factory: Callable[[int], Module]
    train_set: ArrayDataset
    test_set: ArrayDataset

    def loaders(self, seed: int = 0) -> Tuple[DataLoader, DataLoader]:
        """Fresh train / test loaders with a deterministic shuffling stream."""
        train_loader = DataLoader(
            self.train_set,
            batch_size=self.scale.batch_size,
            shuffle=True,
            rng=np.random.default_rng(seed + 1000),
        )
        test_loader = DataLoader(
            self.test_set,
            batch_size=max(self.scale.batch_size, 128),
            shuffle=False,
        )
        return train_loader, test_loader

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.scale.input_shape


def _build_datasets(scale: ExperimentScale) -> Tuple[ArrayDataset, ArrayDataset]:
    if scale.dataset == "blobs":
        return make_blobs(
            num_classes=scale.num_classes,
            samples_per_class=max(2, (scale.train_samples + scale.test_samples) // scale.num_classes),
            features=scale.in_channels,
            seed=scale.seed,
        )
    if scale.dataset == "spirals":
        return make_spirals(num_classes=scale.num_classes, seed=scale.seed)
    if scale.dataset == "digits":
        return make_synthetic_digits(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            image_size=scale.image_size,
            num_classes=scale.num_classes,
            seed=scale.seed,
        )
    if scale.dataset == "cifar10":
        return make_synthetic_cifar10(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            image_size=scale.image_size,
            seed=scale.seed,
        )
    if scale.dataset == "cifar100":
        return make_synthetic_cifar100(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            image_size=scale.image_size,
            seed=scale.seed,
        )
    raise ValueError(f"unknown dataset {scale.dataset!r}")


def build_workload(scale: ExperimentScale) -> Workload:
    """Materialise the datasets and model factory for a scale preset."""
    train_set, test_set = _build_datasets(scale)
    if scale.use_augmentation and scale.dataset in ("cifar10", "cifar100", "digits"):
        train_set.transform = build_paper_augmentation(
            padding=4 if scale.image_size >= 32 else 2,
            rng=np.random.default_rng(scale.seed + 7),
        )

    def model_factory(seed: int = 0) -> Module:
        return build_model(
            scale.model,
            num_classes=scale.num_classes,
            width_multiplier=scale.width_multiplier,
            in_channels=scale.in_channels,
            rng=np.random.default_rng(seed),
        )

    return Workload(scale=scale, model_factory=model_factory, train_set=train_set, test_set=test_set)
