"""Parallel experiment orchestration with an on-disk result cache.

Every figure / table of the paper is a *sweep*: the same workload trained
under several precision strategies (or the same strategy under several
hyper-parameters).  This module turns each training job into a declarative,
content-hashed :class:`RunSpec`, executes batches of specs through an
:class:`Orchestrator` that fans out over ``multiprocessing`` workers, and
memoises completed runs in a :class:`ResultStore` keyed by the spec hash so
repeated invocations (re-running a figure, extending a sweep, regenerating
the full report) retrain nothing that is already known.

The flow::

    RunSpec (scale x strategy x seed x epochs x optimizer)
        --content_hash()-->  ResultStore lookup
              hit  -> StrategyRunResult loaded from JSON, zero training
              miss -> worker process trains it (run_strategy), result
                      stored, returned

Determinism: a spec fully determines its run.  Workers rebuild the workload
from the embedded :class:`ExperimentScale` (datasets and model init are
seeded by the scale and the spec seed), so a 4-worker run produces results
identical to a serial run of the same specs — and both produce byte-identical
stored summaries.

Strategies are never pickled; workers receive only the spec (plain data) and
construct the strategy locally via :func:`build_strategy`.  Results come
back as :class:`~repro.experiments.runners.StrategyRunResult` summaries,
which deliberately exclude the live trainer.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.fixed_precision import FixedPrecisionStrategy
from repro.baselines.methods import TABLE1_METHODS, build_table1_strategy
from repro.baselines.schedules import LinearRampStrategy, StaticMixedPrecisionStrategy
from repro.core.config import APTConfig
from repro.core.strategy import APTStrategy
from repro.experiments.runners import StrategyRunResult, run_strategy
from repro.experiments.scales import ExperimentScale
from repro.experiments.workload import build_workload
from repro.train.serialization import to_jsonable
from repro.train.strategy import FP32Strategy, PrecisionStrategy

PathLike = Union[str, Path]

#: Bump when the stored payload layout changes; mismatched entries are
#: treated as cache misses rather than parse errors.
STORE_FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# Run specifications
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One fully-determined training job.

    ``strategy_kind`` selects a constructor in :func:`build_strategy`;
    ``strategy_params`` are its keyword arguments (plain JSON-able values).
    ``label`` is a display / result key only — it does not participate in
    the content hash, so relabelling a sweep does not invalidate its cache.
    """

    scale: ExperimentScale
    strategy_kind: str
    strategy_params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0
    epochs: Optional[int] = None
    optimizer: str = "sgd"
    learning_rate: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        # Normalise so that semantically identical specs hash identically:
        # a None epoch / learning rate means "the scale's default".
        object.__setattr__(self, "strategy_params", dict(self.strategy_params))
        if self.epochs is None:
            object.__setattr__(self, "epochs", self.scale.epochs)
        if self.learning_rate is None:
            object.__setattr__(self, "learning_rate", self.scale.learning_rate)
        if not self.label:
            object.__setattr__(self, "label", self.strategy_kind)

    def to_payload(self) -> Dict[str, object]:
        """The hash-relevant content as plain JSON-able data."""
        import dataclasses

        return {
            "scale": to_jsonable(dataclasses.asdict(self.scale)),
            "strategy_kind": self.strategy_kind,
            "strategy_params": to_jsonable(dict(self.strategy_params)),
            "seed": self.seed,
            "epochs": self.epochs,
            "optimizer": self.optimizer,
            "learning_rate": self.learning_rate,
        }

    def content_hash(self) -> str:
        """Stable hex digest of everything that determines the run's outcome."""
        canonical = json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    def describe(self) -> str:
        return f"{self.label} [{self.strategy_kind}, seed={self.seed}, epochs={self.epochs}]"


def build_strategy(kind: str, params: Mapping[str, object]) -> PrecisionStrategy:
    """Construct the strategy a spec names, inside whichever process runs it."""
    params = dict(params)
    if kind == "fp32":
        return FP32Strategy()
    if kind == "fixed":
        return FixedPrecisionStrategy(
            int(params.get("bits", 8)),
            master_copy=bool(params.get("master_copy", False)),
        )
    if kind == "apt":
        # float() also accepts the "Infinity" string the JSON canonicaliser
        # writes for an infinite T_max.
        config = APTConfig(
            initial_bits=int(params.get("initial_bits", 6)),
            t_min=float(params.get("t_min", 6.0)),
            t_max=float(params.get("t_max", math.inf)),
            metric_interval=int(params.get("metric_interval", 10)),
            bits_step=int(params.get("bits_step", 1)),
        )
        return APTStrategy(config)
    if kind == "static_first_last":
        return StaticMixedPrecisionStrategy.first_last_heavy(
            edge_bits=int(params.get("edge_bits", 12)),
            interior_bits=int(params.get("interior_bits", 6)),
        )
    if kind == "linear_ramp":
        return LinearRampStrategy(
            start_bits=int(params.get("start_bits", 6)),
            end_bits=int(params.get("end_bits", 16)),
            ramp_epochs=int(params.get("ramp_epochs", 10)),
        )
    if kind in TABLE1_METHODS:
        return build_table1_strategy(kind)
    raise ValueError(
        f"unknown strategy kind {kind!r}; known: fp32, fixed, apt, "
        f"static_first_last, linear_ramp, {', '.join(sorted(TABLE1_METHODS))}"
    )


def execute_spec(spec: RunSpec) -> StrategyRunResult:
    """Run one spec from scratch and return its picklable summary.

    Module-level so it can be dispatched to ``multiprocessing`` workers.
    The workload is rebuilt here (not shared) so every run sees exactly the
    data stream its spec determines, independent of what ran before it in
    the same process — the property that makes parallel == serial.
    """
    workload = build_workload(spec.scale)
    strategy = build_strategy(spec.strategy_kind, spec.strategy_params)
    return run_strategy(
        workload,
        strategy,
        epochs=spec.epochs,
        seed=spec.seed,
        optimizer_name=spec.optimizer,
        learning_rate=spec.learning_rate,
    )


def _execute_indexed(item: Tuple[int, RunSpec]) -> Tuple[int, StrategyRunResult, float]:
    index, spec = item
    started = time.perf_counter()
    result = execute_spec(spec)
    return index, result, time.perf_counter() - started


# --------------------------------------------------------------------------- #
# Result store
# --------------------------------------------------------------------------- #
class ResultStore:
    """Exact-hash JSON cache of completed run summaries.

    One file per spec hash under ``root``; writes are atomic (temp file +
    rename) so a killed run never leaves a half-written entry, and a resumed
    sweep simply skips the hashes that made it to disk.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def path_for(self, spec_or_hash: Union[RunSpec, str]) -> Path:
        spec_hash = (
            spec_or_hash.content_hash() if isinstance(spec_or_hash, RunSpec) else spec_or_hash
        )
        return self.root / f"{spec_hash}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.get(spec) is not None

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, spec: RunSpec) -> Optional[StrategyRunResult]:
        """The stored summary for this exact spec, or None (a miss)."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("format_version") != STORE_FORMAT_VERSION:
            return None
        try:
            return StrategyRunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, spec: RunSpec, result: StrategyRunResult) -> Path:
        """Persist a summary under the spec's hash; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "spec_hash": spec.content_hash(),
            "spec": spec.to_payload(),
            "label": spec.label,
            "result": to_jsonable(result.to_dict()),
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        handle, tmp_name = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return path

    def list_hashes(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


# --------------------------------------------------------------------------- #
# Orchestrator
# --------------------------------------------------------------------------- #
@dataclass
class RunEvent:
    """Progress notification for one spec in a batch."""

    spec: RunSpec
    #: ``"cached"`` (served from the store) or ``"completed"`` (trained now).
    status: str
    #: Position of the completion within the batch (1-based), for display.
    sequence: int
    total: int
    duration_s: float = 0.0


@dataclass
class BatchReport:
    """What one :meth:`Orchestrator.run` call actually did."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    duration_s: float = 0.0


ProgressCallback = Callable[[RunEvent], None]


class Orchestrator:
    """Executes batches of :class:`RunSpec` with caching and worker fan-out.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`.  Without one every spec is executed.
    workers:
        ``<= 1`` runs specs serially in-process; ``N > 1`` fans pending specs
        out over a ``multiprocessing`` pool of N processes.  Cache lookups
        and stores always happen in the parent, so the store needs no locks.
    use_cache:
        When False the store is neither consulted nor written (``--no-cache``).
    progress:
        Optional callback fired once per spec as it resolves.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        use_cache: bool = True,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.workers = workers
        self.use_cache = use_cache
        self.progress = progress
        self.last_report = BatchReport()

    # -- internals --------------------------------------------------------- #
    def _emit(self, event: RunEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def _finish(self, spec: RunSpec, result: StrategyRunResult) -> StrategyRunResult:
        if self.store is not None and self.use_cache:
            self.store.put(spec, result)
        return result

    # -- public API -------------------------------------------------------- #
    def run(self, specs: Sequence[RunSpec]) -> List[StrategyRunResult]:
        """Resolve every spec (cache or training) and return results in order."""
        started = time.perf_counter()
        report = BatchReport(total=len(specs))
        results: List[Optional[StrategyRunResult]] = [None] * len(specs)
        pending: List[Tuple[int, RunSpec]] = []
        #: content hash -> index of the first pending spec with that hash;
        #: later twins share its result instead of training again.
        first_with_hash: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []  # (index, index of its twin)
        sequence = 0

        for index, spec in enumerate(specs):
            cached = (
                self.store.get(spec) if (self.store is not None and self.use_cache) else None
            )
            if cached is not None:
                sequence += 1
                report.cache_hits += 1
                results[index] = cached
                self._emit(RunEvent(spec, "cached", sequence, len(specs)))
                continue
            spec_hash = spec.content_hash()
            if spec_hash in first_with_hash:
                duplicates.append((index, first_with_hash[spec_hash]))
            else:
                first_with_hash[spec_hash] = index
                pending.append((index, spec))

        if pending and self.workers > 1 and len(pending) > 1:
            import multiprocessing

            processes = min(self.workers, len(pending))
            with multiprocessing.Pool(processes=processes) as pool:
                for index, result, duration_s in pool.imap_unordered(_execute_indexed, pending):
                    sequence += 1
                    report.executed += 1
                    spec = specs[index]
                    results[index] = self._finish(spec, result)
                    self._emit(
                        RunEvent(spec, "completed", sequence, len(specs), duration_s=duration_s)
                    )
        else:
            for index, spec in pending:
                spec_started = time.perf_counter()
                result = execute_spec(spec)
                sequence += 1
                report.executed += 1
                results[index] = self._finish(spec, result)
                self._emit(
                    RunEvent(
                        spec,
                        "completed",
                        sequence,
                        len(specs),
                        duration_s=time.perf_counter() - spec_started,
                    )
                )

        for index, twin_index in duplicates:
            sequence += 1
            report.cache_hits += 1
            results[index] = results[twin_index]
            self._emit(RunEvent(specs[index], "cached", sequence, len(specs)))

        report.duration_s = time.perf_counter() - started
        self.last_report = report
        return results  # type: ignore[return-value]


def execute_specs(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> List[StrategyRunResult]:
    """One-shot convenience wrapper every experiment module calls.

    ``cache_dir=None`` disables the store entirely; otherwise results land
    under that directory keyed by spec hash.
    """
    store = ResultStore(cache_dir) if cache_dir is not None else None
    orchestrator = Orchestrator(
        store=store, workers=workers, use_cache=use_cache, progress=progress
    )
    return orchestrator.run(specs)
