"""One-shot reproduction report.

:func:`generate_report` runs every experiment runner (Figures 1-5, Table I,
the ablations and the schedule comparison) at one workload scale and renders
a single markdown document with the same structure as EXPERIMENTS.md: one
section per paper artefact with the measured rows and, where it helps, an
ASCII rendering of the curve.  The CLI exposes it for users who want a fresh
report for their own scale / seed without running the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.ablations import run_ablations
from repro.experiments.fig1_gavg_dynamics import run_fig1
from repro.experiments.fig2_training_curves import run_fig2
from repro.experiments.fig3_bitwidth_trajectory import run_fig3
from repro.experiments.fig4_energy_to_accuracy import run_fig4
from repro.experiments.fig5_tradeoff_sweep import run_fig5
from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart
from repro.experiments.scales import ExperimentScale, get_scale
from repro.experiments.schedule_comparison import run_schedule_comparison
from repro.experiments.table1_comparison import run_table1


@dataclass
class ReportSection:
    """One experiment's contribution to the report."""

    title: str
    body_lines: List[str] = field(default_factory=list)

    def to_markdown(self) -> str:
        return "\n".join([f"## {self.title}", ""] + self.body_lines + [""])


@dataclass
class ReproductionReport:
    """All sections plus scale metadata."""

    scale_name: str
    sections: List[ReportSection] = field(default_factory=list)

    def to_markdown(self) -> str:
        header = [
            "# APT reproduction report",
            "",
            f"Workload scale: `{self.scale_name}`.  Energy and memory are normalised "
            "to the fp32 run of the same workload; see DESIGN.md for the cost model.",
            "",
        ]
        return "\n".join(header + [section.to_markdown() for section in self.sections])

    def section(self, title_prefix: str) -> ReportSection:
        for section in self.sections:
            if section.title.startswith(title_prefix):
                return section
        raise KeyError(f"no section starting with {title_prefix!r}")


def _code_block(lines: List[str]) -> List[str]:
    return ["```"] + lines + ["```"]


def generate_report(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    include_ablations: bool = True,
    include_schedule_comparison: bool = True,
    include_charts: bool = True,
    workers: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> ReproductionReport:
    """Run every experiment at ``scale`` and assemble the markdown report.

    ``workers`` / ``cache_dir`` / ``use_cache`` are forwarded to every
    experiment's orchestrator; with a cache directory the report reuses any
    runs the individual figure commands already produced (many of the
    figures share training jobs, so even a cold full report benefits).
    """
    scale = scale or get_scale("bench")
    orchestration = {
        "workers": workers,
        "cache_dir": cache_dir,
        "use_cache": use_cache,
        "progress": progress,
    }
    report = ReproductionReport(scale_name=scale.name)

    fig1 = run_fig1(scale, seed=seed, **orchestration)
    section = ReportSection("Figure 1 - Gavg dynamics (T_min = 1.0)")
    section.body_lines += _code_block(fig1.format_rows())
    if include_charts:
        section.body_lines += _code_block(
            ascii_line_chart(fig1.series(), title="smoothed Gavg vs epoch").splitlines()
        )
    report.sections.append(section)

    fig2 = run_fig2(scale, seed=seed, **orchestration)
    section = ReportSection("Figure 2 - training curves")
    section.body_lines += _code_block(fig2.format_rows())
    if include_charts:
        section.body_lines += _code_block(
            ascii_line_chart(fig2.curves, title="test accuracy vs epoch").splitlines()
        )
    report.sections.append(section)

    fig3 = run_fig3(scale, seed=seed, **orchestration)
    section = ReportSection("Figure 3 - layer-wise bitwidth trajectories")
    section.body_lines += _code_block(fig3.format_rows())
    report.sections.append(section)

    fig4 = run_fig4(scale, seed=seed, **orchestration)
    section = ReportSection("Figure 4 - energy to reach target accuracy")
    section.body_lines += _code_block(fig4.format_rows())
    if include_charts and fig4.targets:
        top_reachable = max(
            (target for target in fig4.targets
             if any(v is not None for v in (fig4.energy_to_target[m][target] for m in fig4.methods()))),
            default=None,
        )
        if top_reachable is not None:
            bars = {method: fig4.energy_to_target[method][top_reachable] for method in fig4.methods()}
            section.body_lines += _code_block(
                ascii_bar_chart(bars, title=f"energy to reach {top_reachable:.3f}").splitlines()
            )
    report.sections.append(section)

    fig5 = run_fig5(scale, seed=seed, **orchestration)
    section = ReportSection("Figure 5 - T_min trade-off sweep")
    section.body_lines += _code_block(fig5.format_rows())
    report.sections.append(section)

    table1 = run_table1(scale, seed=seed, **orchestration)
    section = ReportSection("Table I - method comparison")
    section.body_lines += table1.to_markdown().splitlines()
    report.sections.append(section)

    if include_ablations:
        ablations = run_ablations(scale, seed=seed, **orchestration)
        section = ReportSection("Ablations")
        section.body_lines += _code_block(ablations.format_rows())
        report.sections.append(section)

    if include_schedule_comparison:
        schedules = run_schedule_comparison(scale, seed=seed, **orchestration)
        section = ReportSection("Adaptive vs open-loop schedules")
        section.body_lines += _code_block(schedules.format_rows())
        report.sections.append(section)

    return report
