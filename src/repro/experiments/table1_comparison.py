"""Table I: comparison of network quantisation methods.

For each method the paper tabulates the model precision used in BPROP (fp32
master copy for most, 8-bit for WAGE, adaptive for APT), the optimiser, and
the accuracy reached on CIFAR-10 / CIFAR-100.  The reproduction runs each
method's strategy on the synthetic stand-in datasets with its attributed
optimiser and additionally reports the normalised training memory, which is
the structural point the table makes (master-copy methods save nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.methods import TABLE1_METHODS
from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class Table1Row:
    """One row of Table I."""

    method: str
    bprop_precision: str
    optimizer: str
    accuracy: float
    normalised_memory: float
    normalised_energy: float

    def as_tuple(self):
        return (
            self.method,
            self.bprop_precision,
            self.optimizer,
            self.accuracy,
            self.normalised_memory,
            self.normalised_energy,
        )


@dataclass
class Table1Result:
    """All rows plus the underlying runs."""

    dataset: str
    rows: List[Table1Row]
    runs: Dict[str, StrategyRunResult]

    def row_for(self, method: str) -> Table1Row:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method {method!r}")

    def to_markdown(self) -> str:
        lines = [
            f"| Method | BPROP precision | Optimizer | {self.dataset} acc | Train mem (vs fp32) | Train energy (vs fp32) |",
            "|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            lines.append(
                f"| {row.method} | {row.bprop_precision} | {row.optimizer} | "
                f"{row.accuracy:.3f} | {row.normalised_memory:.2f} | {row.normalised_energy:.2f} |"
            )
        return "\n".join(lines)

    def format_rows(self) -> List[str]:
        return self.to_markdown().splitlines()


def run_table1(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    methods: Optional[Sequence[str]] = None,
    include_apt: bool = True,
    t_min: float = 6.0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Table1Result:
    """Reproduce Table I on one dataset (selected by the scale preset)."""
    scale = scale or get_scale("bench")
    method_names = list(methods) if methods is not None else list(TABLE1_METHODS)

    specs: List[RunSpec] = []
    labels: List[tuple] = []  # (method, bprop label, optimizer label)
    for name in method_names:
        _, bprop_label, optimizer_label = TABLE1_METHODS[name]
        specs.append(
            RunSpec(
                scale=scale,
                strategy_kind=name,
                seed=seed,
                epochs=epochs,
                optimizer=optimizer_label.lower(),
                label=name,
            )
        )
        labels.append((name, bprop_label, optimizer_label))
    if include_apt:
        specs.append(
            RunSpec(
                scale=scale,
                strategy_kind="apt",
                strategy_params={
                    "initial_bits": 6,
                    "t_min": t_min,
                    "metric_interval": scale.metric_interval,
                },
                seed=seed,
                epochs=epochs,
                optimizer="sgd",
                label="apt",
            )
        )
        labels.append(("apt", "Adaptive", "SGD"))

    results = execute_specs(
        specs, workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )

    rows: List[Table1Row] = []
    runs: Dict[str, StrategyRunResult] = {}
    for (name, bprop_label, optimizer_label), run in zip(labels, results):
        runs[name] = run
        rows.append(
            Table1Row(
                method=name,
                bprop_precision=bprop_label,
                optimizer=optimizer_label,
                accuracy=run.best_accuracy,
                normalised_memory=run.normalised_memory,
                normalised_energy=run.normalised_energy,
            )
        )

    return Table1Result(dataset=scale.dataset, rows=rows, runs=runs)
