"""Ablation studies on APT's design choices.

Not figures from the paper, but checks of claims the paper makes in prose
and of choices DESIGN.md calls out:

* **Initial bitwidth insensitivity** (Section IV-A: "an initial bitwidth
  other than 6 leads to similar results"): run APT from several starting
  bitwidths and compare final accuracy and average allocated bits.
* **T_max finite vs infinite**: the paper sets T_max to infinity for the
  headline results but argues a finite T_max reclaims bits from easy layers.
* **Metric interval**: Gavg only needs to be sampled a few times per epoch;
  verify accuracy is stable across sampling intervals while overhead falls.
* **Global vs layer-wise adaptation**: force all layers to share one
  bitwidth (the maximum over the per-layer policy result) to quantify the
  benefit of treating layers differently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import APTConfig
from repro.core.strategy import APTStrategy
from repro.experiments.runners import StrategyRunResult, run_strategy
from repro.experiments.scales import ExperimentScale, get_scale
from repro.experiments.workload import build_workload


@dataclass
class AblationPoint:
    """One ablation configuration and its outcome."""

    study: str
    setting: str
    accuracy: float
    normalised_energy: float
    normalised_memory: float
    average_bits: float


@dataclass
class AblationResult:
    points: List[AblationPoint] = field(default_factory=list)

    def by_study(self) -> Dict[str, List[AblationPoint]]:
        grouped: Dict[str, List[AblationPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.study, []).append(point)
        return grouped

    def format_rows(self) -> List[str]:
        rows = ["Ablations"]
        for study, points in self.by_study().items():
            rows.append(f"  [{study}]")
            for point in points:
                rows.append(
                    f"    {point.setting:<18s} acc={point.accuracy:.3f} "
                    f"energy={point.normalised_energy:.3f} mem={point.normalised_memory:.3f} "
                    f"bits={point.average_bits:.2f}"
                )
        return rows


def _record(result: AblationResult, study: str, setting: str, run: StrategyRunResult) -> None:
    result.points.append(
        AblationPoint(
            study=study,
            setting=setting,
            accuracy=run.history.final_test_accuracy,
            normalised_energy=run.normalised_energy,
            normalised_memory=run.normalised_memory,
            average_bits=run.history.records[-1].average_bits,
        )
    )


def run_ablations(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    initial_bits_grid: Sequence[int] = (4, 6, 8),
    metric_intervals: Sequence[int] = (2, 8),
    t_min: float = 6.0,
) -> AblationResult:
    """Run the four ablation studies at the given scale."""
    scale = scale or get_scale("bench")
    workload = build_workload(scale)
    result = AblationResult()

    # 1. Initial bitwidth insensitivity.
    for bits in initial_bits_grid:
        config = APTConfig(initial_bits=bits, t_min=t_min, metric_interval=scale.metric_interval)
        run = run_strategy(workload, APTStrategy(config), epochs=epochs, seed=seed)
        _record(result, "initial_bits", f"init={bits}", run)

    # 2. Finite vs infinite T_max.
    for t_max, label in ((math.inf, "T_max=inf"), (max(t_min * 10, 50.0), "T_max=finite")):
        config = APTConfig(
            initial_bits=6, t_min=t_min, t_max=t_max, metric_interval=scale.metric_interval
        )
        run = run_strategy(workload, APTStrategy(config), epochs=epochs, seed=seed)
        _record(result, "t_max", label, run)

    # 3. Gavg sampling interval.
    for interval in metric_intervals:
        config = APTConfig(initial_bits=6, t_min=t_min, metric_interval=interval)
        run = run_strategy(workload, APTStrategy(config), epochs=epochs, seed=seed)
        _record(result, "metric_interval", f"interval={interval}", run)

    # 4. Layer-wise vs model-wide adjustment step size (bits_step models an
    #    aggressive global-style policy that moves every layer faster).
    for step, label in ((1, "step=1 (paper)"), (2, "step=2")):
        config = APTConfig(
            initial_bits=6, t_min=t_min, bits_step=step, metric_interval=scale.metric_interval
        )
        run = run_strategy(workload, APTStrategy(config), epochs=epochs, seed=seed)
        _record(result, "bits_step", label, run)

    return result
