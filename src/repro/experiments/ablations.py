"""Ablation studies on APT's design choices.

Not figures from the paper, but checks of claims the paper makes in prose
and of choices DESIGN.md calls out:

* **Initial bitwidth insensitivity** (Section IV-A: "an initial bitwidth
  other than 6 leads to similar results"): run APT from several starting
  bitwidths and compare final accuracy and average allocated bits.
* **T_max finite vs infinite**: the paper sets T_max to infinity for the
  headline results but argues a finite T_max reclaims bits from easy layers.
* **Metric interval**: Gavg only needs to be sampled a few times per epoch;
  verify accuracy is stable across sampling intervals while overhead falls.
* **Global vs layer-wise adaptation**: force all layers to share one
  bitwidth (the maximum over the per-layer policy result) to quantify the
  benefit of treating layers differently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class AblationPoint:
    """One ablation configuration and its outcome."""

    study: str
    setting: str
    accuracy: float
    normalised_energy: float
    normalised_memory: float
    average_bits: float


@dataclass
class AblationResult:
    points: List[AblationPoint] = field(default_factory=list)

    def by_study(self) -> Dict[str, List[AblationPoint]]:
        grouped: Dict[str, List[AblationPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.study, []).append(point)
        return grouped

    def format_rows(self) -> List[str]:
        rows = ["Ablations"]
        for study, points in self.by_study().items():
            rows.append(f"  [{study}]")
            for point in points:
                rows.append(
                    f"    {point.setting:<18s} acc={point.accuracy:.3f} "
                    f"energy={point.normalised_energy:.3f} mem={point.normalised_memory:.3f} "
                    f"bits={point.average_bits:.2f}"
                )
        return rows


def _record(result: AblationResult, study: str, setting: str, run: StrategyRunResult) -> None:
    result.points.append(
        AblationPoint(
            study=study,
            setting=setting,
            accuracy=run.history.final_test_accuracy,
            normalised_energy=run.normalised_energy,
            normalised_memory=run.normalised_memory,
            average_bits=run.history.records[-1].average_bits,
        )
    )


def run_ablations(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    initial_bits_grid: Sequence[int] = (4, 6, 8),
    metric_intervals: Sequence[int] = (2, 8),
    t_min: float = 6.0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> AblationResult:
    """Run the four ablation studies at the given scale."""
    scale = scale or get_scale("bench")

    def apt_spec(setting: str, **params: object) -> RunSpec:
        merged = {"t_min": t_min, "metric_interval": scale.metric_interval, **params}
        return RunSpec(
            scale=scale,
            strategy_kind="apt",
            strategy_params=merged,
            seed=seed,
            epochs=epochs,
            label=setting,
        )

    # (study, setting, spec) for every configuration; all independent, so
    # the whole ablation grid fans out in one batch.
    jobs = []
    for bits in initial_bits_grid:
        jobs.append(("initial_bits", f"init={bits}", apt_spec(f"init={bits}", initial_bits=bits)))
    for t_max, label in ((math.inf, "T_max=inf"), (max(t_min * 10, 50.0), "T_max=finite")):
        jobs.append(("t_max", label, apt_spec(label, initial_bits=6, t_max=t_max)))
    for interval in metric_intervals:
        jobs.append(
            (
                "metric_interval",
                f"interval={interval}",
                apt_spec(f"interval={interval}", initial_bits=6, metric_interval=interval),
            )
        )
    # bits_step models an aggressive global-style policy that moves every
    # layer faster than the paper's one-bit-per-epoch rule.
    for step, label in ((1, "step=1 (paper)"), (2, "step=2")):
        jobs.append(("bits_step", label, apt_spec(label, initial_bits=6, bits_step=step)))

    results = execute_specs(
        [spec for _, _, spec in jobs],
        workers=workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
    )

    result = AblationResult()
    for (study, setting, _), run in zip(jobs, results):
        _record(result, study, setting, run)
    return result
