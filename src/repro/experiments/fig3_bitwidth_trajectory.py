"""Figure 3: layer-wise bitwidth versus epoch under APT.

The paper plots the bitwidth trajectories of four representative weight
layers of ResNet-20: all start at the initial 6 bits, diverge as APT treats
layers differently, and the first / last layers climb highest once the
learning-rate decay makes the loss (and the gradients) drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class Fig3Result:
    """Per-layer bitwidth trajectories plus the selected representative layers."""

    bits_by_layer: Dict[str, List[int]]
    selected_layers: List[str]
    initial_bits: int
    run: StrategyRunResult

    def trajectories(self) -> Dict[str, List[int]]:
        """The curves the figure plots (selected layers only)."""
        return {name: self.bits_by_layer[name] for name in self.selected_layers}

    def final_bits(self) -> Dict[str, int]:
        return {name: values[-1] for name, values in self.bits_by_layer.items() if values}

    def format_rows(self) -> List[str]:
        rows = ["Figure 3: layer-wise bitwidth vs epoch"]
        for name in self.selected_layers:
            formatted = ", ".join(str(bits) for bits in self.bits_by_layer[name])
            rows.append(f"  {name}: {formatted}")
        return rows


def run_fig3(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    num_layers_to_plot: int = 4,
    t_min: float = 6.0,
    initial_bits: int = 6,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Fig3Result:
    """Reproduce Figure 3 (bitwidth trajectories of representative layers)."""
    scale = scale or get_scale("bench")
    spec = RunSpec(
        scale=scale,
        strategy_kind="apt",
        strategy_params={
            "initial_bits": initial_bits,
            "t_min": t_min,
            "metric_interval": scale.metric_interval,
        },
        seed=seed,
        epochs=epochs,
        label="apt",
    )
    (run,) = execute_specs(
        [spec], workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )

    bits_by_layer = run.bits_by_layer
    names = list(bits_by_layer)
    # Representative selection: first layer, last layer, and evenly spaced
    # interior layers (the paper picks four layers including first and last).
    if len(names) <= num_layers_to_plot:
        selected = names
    else:
        step = (len(names) - 1) / (num_layers_to_plot - 1)
        selected = [names[int(round(i * step))] for i in range(num_layers_to_plot)]
    return Fig3Result(
        bits_by_layer=bits_by_layer,
        selected_layers=selected,
        initial_bits=initial_bits,
        run=run,
    )
