"""Terminal (ASCII) plotting for experiment results.

The environment this reproduction targets has no plotting stack, so the
figure runners can render their curves directly in the terminal: line charts
for accuracy / Gavg / bitwidth trajectories and horizontal bar charts for the
energy comparisons.  The functions return strings (they never print), so
they compose with the reporting helpers and are easy to test.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

_GLYPHS = "ox+*#@%&"


def _finite(values: Iterable[Optional[float]]) -> List[float]:
    return [float(v) for v in values if v is not None and math.isfinite(float(v))]


def ascii_line_chart(
    series: Mapping[str, Sequence[Optional[float]]],
    width: int = 60,
    height: int = 15,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more named series as an ASCII line chart.

    Each series is a sequence indexed by epoch; ``None`` entries (e.g. Gavg
    before the first sample) are skipped.  Series are distinguished by glyph
    and listed in the legend.
    """
    if not series:
        raise ValueError("need at least one series to plot")
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 characters")

    all_values = _finite(value for values in series.values() for value in values)
    if not all_values:
        raise ValueError("series contain no finite values")
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0
    max_length = max(len(values) for values in series.values())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for position, value in enumerate(values):
            if value is None or not math.isfinite(float(value)):
                continue
            x = int(round(position / max(max_length - 1, 1) * (width - 1)))
            y = int(round((float(value) - low) / (high - low) * (height - 1)))
            grid[height - 1 - y][x] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{high:.3g}"
    bottom_label = f"{low:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width + f"  epoch 0 .. {max_length - 1}"
    )
    legend = "  ".join(
        f"{_GLYPHS[index % len(_GLYPHS)]}={name}" for index, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, Optional[float]],
    width: int = 50,
    title: str = "",
    absent_label: str = "absent",
) -> str:
    """Render a horizontal bar chart (used for the Figure 4 energy groups).

    ``None`` values are rendered as ``absent`` (a method that never reached
    the accuracy target), mirroring the missing bars in the paper's figure.
    """
    if not values:
        raise ValueError("need at least one bar to plot")
    finite = _finite(values.values())
    maximum = max(finite) if finite else 1.0
    if maximum <= 0:
        maximum = 1.0
    name_width = max(len(name) for name in values)

    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        if value is None or not math.isfinite(float(value)):
            lines.append(f"{name:>{name_width}} | {absent_label}")
            continue
        bar_length = int(round(float(value) / maximum * width))
        bar = "#" * max(bar_length, 1 if value > 0 else 0)
        lines.append(f"{name:>{name_width}} | {bar} {float(value):.3f}")
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[tuple],
    width: int = 60,
    height: int = 15,
    title: str = "",
) -> str:
    """Render (x, y) points as an ASCII scatter (used for the Figure 5 sweep)."""
    if not points:
        raise ValueError("need at least one point")
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
        row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
        grid[height - 1 - row][column] = "o"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_low:.3g} .. {x_high:.3g}   y: {y_low:.3g} .. {y_high:.3g}")
    return "\n".join(lines)
