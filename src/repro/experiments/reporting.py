"""Formatting helpers for experiment results.

The benchmark harness prints the same rows / series the paper's figures and
table report; these helpers keep that formatting in one place and provide a
small CSV writer used by the examples.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def to_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(map(str, headers)) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(map(str, row)) + " |")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def curves_to_rows(curves: Mapping[str, Sequence[float]]) -> List[List[object]]:
    """Transpose named curves into per-epoch rows (epoch, curve1, curve2, ...)."""
    if not curves:
        return []
    length = max(len(values) for values in curves.values())
    rows: List[List[object]] = []
    for epoch in range(length):
        row: List[object] = [epoch]
        for name in curves:
            values = curves[name]
            row.append(values[epoch] if epoch < len(values) else "")
        rows.append(row)
    return rows
