"""Figure 2: test accuracy versus epoch for fp32 / 16-bit / 8-bit / APT.

The paper's observation (Section IV-A):

* fp32 and 16-bit have the steepest curves (no underflow),
* the fixed 8-bit model climbs visibly slower (model-wide underflow drives
  Gavg from ~1 down to ~0.1 within 50 epochs),
* APT starts from a 6-bit model, begins below the 8-bit curve, then
  overtakes it and catches up with 16-bit / fp32 as bits are added.

At reduced scale the same ordering is expected: the low fixed bitwidth is
chosen relative to the workload so that underflow genuinely stalls it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class Fig2Result:
    """Accuracy-vs-epoch curves per training method."""

    curves: Dict[str, List[float]]
    final_accuracy: Dict[str, float]
    best_accuracy: Dict[str, float]
    runs: Dict[str, StrategyRunResult]
    low_bits: int
    mid_bits: int

    def format_rows(self) -> List[str]:
        rows = ["Figure 2: test accuracy vs epoch"]
        for name, curve in self.curves.items():
            formatted = ", ".join(f"{value:.3f}" for value in curve)
            rows.append(f"  {name:<12s}: {formatted}")
        return rows


def run_fig2(
    scale: Optional[ExperimentScale] = None,
    epochs: Optional[int] = None,
    seed: int = 0,
    low_bits: int = 4,
    mid_bits: int = 16,
    t_min: float = 6.0,
    initial_bits: int = 6,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Fig2Result:
    """Reproduce Figure 2 (training curves of the four methods).

    ``low_bits`` plays the role of the paper's 8-bit model: the fixed
    bitwidth low enough for underflow to visibly slow training at the chosen
    workload scale (8 bits on full CIFAR ResNet-20; 4 bits at the reduced
    scales whose weight ranges are narrower).
    """
    scale = scale or get_scale("bench")

    specs = [
        RunSpec(scale=scale, strategy_kind="fp32", seed=seed, epochs=epochs, label="fp32"),
        RunSpec(
            scale=scale,
            strategy_kind="fixed",
            strategy_params={"bits": mid_bits},
            seed=seed,
            epochs=epochs,
            label=f"{mid_bits}-bit",
        ),
        RunSpec(
            scale=scale,
            strategy_kind="fixed",
            strategy_params={"bits": low_bits},
            seed=seed,
            epochs=epochs,
            label=f"{low_bits}-bit",
        ),
        RunSpec(
            scale=scale,
            strategy_kind="apt",
            strategy_params={
                "initial_bits": initial_bits,
                "t_min": t_min,
                "metric_interval": scale.metric_interval,
            },
            seed=seed,
            epochs=epochs,
            label="apt",
        ),
    ]
    results = execute_specs(
        specs, workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )
    runs: Dict[str, StrategyRunResult] = {
        spec.label: result for spec, result in zip(specs, results)
    }

    curves = {name: run.history.test_accuracy_curve for name, run in runs.items()}
    return Fig2Result(
        curves=curves,
        final_accuracy={name: run.history.final_test_accuracy for name, run in runs.items()},
        best_accuracy={name: run.best_accuracy for name, run in runs.items()},
        runs=runs,
        low_bits=low_bits,
        mid_bits=mid_bits,
    )
