"""Figure 1: Gavg versus epoch for two layers under APT.

The paper's Figure 1 (Section III-C) shows two qualitatively different layer
behaviours with ``T_min = 1.0``:

* *Layer A* starts with Gavg below the threshold (it suffers underflow
  immediately); APT allocates bits until its Gavg rises above ``T_min``.
* *Layer B* starts easy to update (high Gavg); its Gavg decays as training
  converges, and every time it touches ``T_min`` APT adds a bit to keep it
  learning.

The runner trains with APT at ``T_min = 1.0``, records every layer's
smoothed-Gavg trajectory, and picks the two layers that best illustrate the
two regimes (lowest and highest initial Gavg).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.orchestrator import (
    PathLike,
    ProgressCallback,
    RunSpec,
    execute_specs,
)
from repro.experiments.runners import StrategyRunResult
from repro.experiments.scales import ExperimentScale, get_scale


@dataclass
class Fig1Result:
    """Per-layer Gavg and bitwidth trajectories under APT."""

    t_min: float
    gavg_by_layer: Dict[str, List[Optional[float]]]
    bits_by_layer: Dict[str, List[int]]
    layer_a: str
    layer_b: str
    run: StrategyRunResult

    def series(self) -> Dict[str, List[Optional[float]]]:
        """The two curves the figure plots."""
        return {
            "layer_a": self.gavg_by_layer[self.layer_a],
            "layer_b": self.gavg_by_layer[self.layer_b],
        }

    def format_rows(self) -> List[str]:
        rows = [f"Figure 1 (T_min={self.t_min}): Gavg vs epoch"]
        for label, name in (("A", self.layer_a), ("B", self.layer_b)):
            values = ", ".join(
                "-" if value is None else f"{value:.2f}" for value in self.gavg_by_layer[name]
            )
            rows.append(f"  layer {label} ({name}): {values}")
        return rows


def run_fig1(
    scale: ExperimentScale = None,
    t_min: float = 1.0,
    epochs: Optional[int] = None,
    seed: int = 0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Fig1Result:
    """Reproduce Figure 1 at the given workload scale."""
    scale = scale or get_scale("bench")
    spec = RunSpec(
        scale=scale,
        strategy_kind="apt",
        strategy_params={
            "initial_bits": 6,
            "t_min": t_min,
            "metric_interval": scale.metric_interval,
        },
        seed=seed,
        epochs=epochs,
        label="apt",
    )
    (run,) = execute_specs(
        [spec], workers=workers, cache_dir=cache_dir, use_cache=use_cache, progress=progress
    )

    gavg_by_layer = run.gavg_by_layer
    bits_by_layer = run.bits_by_layer

    def first_value(values: List[Optional[float]]) -> float:
        for value in values:
            if value is not None:
                return value
        return float("inf")

    names = list(gavg_by_layer)
    layer_a = min(names, key=lambda name: first_value(gavg_by_layer[name]))
    layer_b = max(names, key=lambda name: first_value(gavg_by_layer[name]))
    return Fig1Result(
        t_min=t_min,
        gavg_by_layer=gavg_by_layer,
        bits_by_layer=bits_by_layer,
        layer_a=layer_a,
        layer_b=layer_b,
        run=run,
    )
