"""Optimisers and learning-rate schedules.

The paper trains with plain SGD (momentum 0.9, weight decay 1e-4) and a
step schedule (divide by 10 at epochs 100 and 150), plus a two-epoch warmup
for CIFAR-100.  Adam is provided because several Table I baselines use it.

The :class:`~repro.optim.sgd.SGD` optimiser accepts an ``update_hook`` so the
quantisation layer can intercept the weight update and apply the quantised
update rule of Eq. 3 (this is how underflow enters the training loop).
"""

from repro.optim.sgd import SGD, UpdateHook
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import (
    LRScheduler,
    ConstantLR,
    MultiStepLR,
    WarmupMultiStepLR,
    CosineAnnealingLR,
)

__all__ = [
    "SGD",
    "Adam",
    "UpdateHook",
    "LRScheduler",
    "ConstantLR",
    "MultiStepLR",
    "WarmupMultiStepLR",
    "CosineAnnealingLR",
]
