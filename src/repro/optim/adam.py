"""Adam optimiser.

Provided because several Table I baselines (BNN, TTQ, DoReFa-Net, TernGrad)
train with Adam.  The APT experiments themselves use plain SGD to highlight
the energy/memory savings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.sgd import UpdateHook


class Adam:
    """Adam with bias correction and optional decoupled update hook."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        update_hook: Optional[UpdateHook] = None,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimiser received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self.update_hook = update_hook or UpdateHook()
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1 ** self._step_count)
            v_hat = v / (1 - self.beta2 ** self._step_count)
            delta = -self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self.update_hook.apply(param, delta)

    @property
    def step_count(self) -> int:
        return self._step_count
