"""Learning-rate schedules.

Implements the exact recipes from Section IV of the paper:

* **CIFAR-10 recipe** -- start at 0.1, divide by 10 at epochs 100 and 150,
  stop at 200 epochs (:class:`MultiStepLR`).
* **CIFAR-100 recipe** -- warm up at lr 0.01 for the first two epochs, then
  follow the CIFAR-10 schedule (:class:`WarmupMultiStepLR`).

Schedulers are stepped once per epoch with ``scheduler.step(epoch)``.
"""

from __future__ import annotations

import math
from typing import Sequence


class LRScheduler:
    """Base class: owns the optimiser and a base learning rate."""

    def __init__(self, optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int) -> float:
        """Set the optimiser's lr for ``epoch`` and return it."""
        lr = self.get_lr(epoch)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """Keep the base learning rate unchanged."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class MultiStepLR(LRScheduler):
    """Divide the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for milestone in self.milestones if epoch >= milestone)
        return self.base_lr * (self.gamma ** passed)


class WarmupMultiStepLR(MultiStepLR):
    """The paper's CIFAR-100 recipe: low-lr warmup, then step decay."""

    def __init__(
        self,
        optimizer,
        milestones: Sequence[int],
        gamma: float = 0.1,
        warmup_epochs: int = 2,
        warmup_lr: float = 0.01,
    ) -> None:
        super().__init__(optimizer, milestones, gamma)
        self.warmup_epochs = warmup_epochs
        self.warmup_lr = warmup_lr

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.warmup_lr
        return super().get_lr(epoch)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base lr down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
