"""SGD with momentum, weight decay, and a pluggable update hook.

The hook is the integration point for quantised training: instead of applying
``param += delta`` directly, the optimiser offers the proposed delta to the
hook, which may snap it onto the parameter's quantisation grid (Eq. 3 of the
paper) or redirect it to an fp32 master copy (the behaviour of the baselines
that keep a master copy, Table I).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class UpdateHook:
    """Interface for intercepting parameter updates.

    ``apply`` receives the parameter and the proposed dense update ``delta``
    (already including learning rate, momentum and weight decay) and is
    responsible for writing the new value into ``param.data``.  The default
    implementation performs the plain full-precision update.
    """

    def apply(self, param: Parameter, delta: np.ndarray) -> None:
        param.data = param.data + delta


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Parameters
    ----------
    params:
        Iterable of :class:`Parameter` objects.
    lr:
        Learning rate (mutable via :attr:`lr`, used by the schedulers).
    momentum:
        Classical momentum coefficient (the paper uses 0.9).
    weight_decay:
        L2 penalty added to the gradient (the paper uses 1e-4).
    update_hook:
        Optional :class:`UpdateHook` that applies the final update; used by
        the quantisation layer.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        update_hook: Optional[UpdateHook] = None,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimiser received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.update_hook = update_hook or UpdateHook()
        self._velocity: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one optimisation step using the gradients currently stored."""
        self._step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            delta = -self.lr * grad
            self.update_hook.apply(param, delta)

    @property
    def step_count(self) -> int:
        return self._step_count

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "step_count": self._step_count,
        }
