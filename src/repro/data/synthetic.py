"""Synthetic datasets standing in for CIFAR-10 / CIFAR-100.

The CIFAR archives cannot be downloaded in this offline environment, so we
generate class-structured image data with the same layout (3x32x32 CHW
float) and a controllable difficulty.  Each class is defined by a smooth
random template (low-frequency noise produced by repeated box blurring of
white noise); samples are the template plus per-sample structured noise and a
random brightness/contrast jitter.  This produces datasets that

* are linearly non-trivial but learnable by small CNNs,
* exhibit the plateau-shaped training curves the paper's figures rely on,
* stress quantisation exactly like natural images do: gradients shrink as the
  loss falls, so low-precision layers hit the underflow regime.

Smaller generators (blobs, spirals, synthetic digits) are provided for the
fast test-suite and for the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Configuration of the synthetic image generator."""

    num_classes: int = 10
    train_samples: int = 2000
    test_samples: int = 400
    image_size: int = 32
    channels: int = 3
    noise_scale: float = 0.6
    template_smoothing: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.train_samples < self.num_classes or self.test_samples < self.num_classes:
            raise ValueError("need at least one sample per class in each split")
        if self.image_size < 4:
            raise ValueError("image_size must be at least 4")
        if self.noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")


def _box_blur(image: np.ndarray, passes: int) -> np.ndarray:
    """Cheap separable box blur used to create smooth class templates."""
    blurred = image
    for _ in range(passes):
        padded = np.pad(blurred, ((0, 0), (1, 1), (1, 1)), mode="edge")
        blurred = (
            padded[:, :-2, 1:-1]
            + padded[:, 2:, 1:-1]
            + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:]
            + padded[:, 1:-1, 1:-1]
        ) / 5.0
    return blurred


def _generate_split(
    templates: np.ndarray,
    samples: int,
    config: SyntheticImageConfig,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    num_classes = templates.shape[0]
    labels = rng.integers(0, num_classes, size=samples)
    # Guarantee every class appears at least once.
    labels[:num_classes] = np.arange(num_classes)
    rng.shuffle(labels)
    images = np.empty(
        (samples, config.channels, config.image_size, config.image_size), dtype=np.float64
    )
    for i, label in enumerate(labels):
        noise = rng.normal(0.0, config.noise_scale, size=templates[label].shape)
        noise = _box_blur(noise, 1)
        brightness = rng.normal(0.0, 0.1)
        contrast = 1.0 + rng.normal(0.0, 0.1)
        images[i] = contrast * (templates[label] + noise) + brightness
    return images, labels.astype(np.int64)


def make_synthetic_image_dataset(
    config: SyntheticImageConfig,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate (train, test) :class:`ArrayDataset` pairs from one config."""
    rng = np.random.default_rng(config.seed)
    templates = rng.normal(
        0.0, 1.0, size=(config.num_classes, config.channels, config.image_size, config.image_size)
    )
    templates = np.stack([_box_blur(t, config.template_smoothing) for t in templates])
    # Rescale templates to unit std so difficulty is controlled by noise_scale.
    templates = templates / (templates.std() + 1e-12)
    train_x, train_y = _generate_split(templates, config.train_samples, config, rng)
    test_x, test_y = _generate_split(templates, config.test_samples, config, rng)
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y)


def make_synthetic_cifar10(
    train_samples: int = 2000,
    test_samples: int = 400,
    image_size: int = 32,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """10-class CIFAR-10 stand-in (see module docstring for the substitution)."""
    config = SyntheticImageConfig(
        num_classes=10,
        train_samples=train_samples,
        test_samples=test_samples,
        image_size=image_size,
        seed=seed,
    )
    return make_synthetic_image_dataset(config)


def make_synthetic_cifar100(
    train_samples: int = 5000,
    test_samples: int = 1000,
    image_size: int = 32,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """100-class CIFAR-100 stand-in."""
    config = SyntheticImageConfig(
        num_classes=100,
        train_samples=train_samples,
        test_samples=test_samples,
        image_size=image_size,
        seed=seed,
    )
    return make_synthetic_image_dataset(config)


def make_blobs(
    num_classes: int = 4,
    samples_per_class: int = 100,
    features: int = 16,
    separation: float = 3.0,
    noise: float = 1.0,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Gaussian blobs: the fastest non-trivial classification task.

    Returns an 80/20 train/test split.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, separation, size=(num_classes, features))
    inputs = []
    labels = []
    for label, center in enumerate(centers):
        points = center + rng.normal(0.0, noise, size=(samples_per_class, features))
        inputs.append(points)
        labels.append(np.full(samples_per_class, label, dtype=np.int64))
    x = np.concatenate(inputs)
    y = np.concatenate(labels)
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    split = int(0.8 * len(x))
    return ArrayDataset(x[:split], y[:split]), ArrayDataset(x[split:], y[split:])


def make_spirals(
    num_classes: int = 3,
    samples_per_class: int = 150,
    noise: float = 0.15,
    turns: float = 1.5,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Interleaved 2-D spirals: small but requires a genuinely non-linear model."""
    rng = np.random.default_rng(seed)
    inputs = []
    labels = []
    for label in range(num_classes):
        t = np.linspace(0.1, 1.0, samples_per_class)
        angle = 2 * np.pi * (turns * t + label / num_classes)
        radius = t
        x = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        x = x + rng.normal(0.0, noise, size=x.shape)
        inputs.append(x)
        labels.append(np.full(samples_per_class, label, dtype=np.int64))
    x = np.concatenate(inputs)
    y = np.concatenate(labels)
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    split = int(0.8 * len(x))
    return ArrayDataset(x[:split], y[:split]), ArrayDataset(x[split:], y[split:])


def make_synthetic_digits(
    train_samples: int = 800,
    test_samples: int = 200,
    image_size: int = 12,
    num_classes: int = 10,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Small single-channel image classification task (MNIST-like scale).

    Used by convolutional tests and the quickstart example: large enough to
    exercise Conv2d / BatchNorm2d / pooling, small enough to train in seconds.
    """
    config = SyntheticImageConfig(
        num_classes=num_classes,
        train_samples=train_samples,
        test_samples=test_samples,
        image_size=image_size,
        channels=1,
        noise_scale=0.5,
        template_smoothing=2,
        seed=seed,
    )
    return make_synthetic_image_dataset(config)
