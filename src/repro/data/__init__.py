"""Datasets, augmentation and loading.

The paper evaluates on CIFAR-10 and CIFAR-100.  Those archives cannot be
downloaded in this environment, so :mod:`repro.data.synthetic` provides
class-structured synthetic image datasets with the same tensor layout
(32x32x3, NCHW float) and label structure, plus smaller tasks (blobs,
spirals, synthetic digits) that train to high accuracy within seconds and are
used by the fast test-suite and benchmark configurations.  The augmentation
pipeline (pad 4, random 32x32 crop, horizontal flip) follows Section IV of
the paper exactly.
"""

from repro.data.dataset import ArrayDataset, Dataset
from repro.data.loader import DataLoader
from repro.data.augment import (
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    build_paper_augmentation,
)
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_synthetic_cifar10,
    make_synthetic_cifar100,
    make_synthetic_image_dataset,
    make_blobs,
    make_spirals,
    make_synthetic_digits,
)
from repro.data.drift import DriftSpec, drift_dataset, make_drift_sequence

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "build_paper_augmentation",
    "SyntheticImageConfig",
    "make_synthetic_cifar10",
    "make_synthetic_cifar100",
    "make_synthetic_image_dataset",
    "make_blobs",
    "make_spirals",
    "make_synthetic_digits",
    "DriftSpec",
    "drift_dataset",
    "make_drift_sequence",
]
