"""Distribution-drift generators for in-situ adaptation scenarios.

The paper's motivation for on-device training is "personalisation or
adaptation to evolving environment": the data a deployed model sees drifts
away from what it was trained on, and the device must fine-tune in place
under its energy/memory budget.  This module synthesises exactly that
situation on top of the synthetic datasets:

* :func:`drift_dataset` -- produce a drifted copy of an
  :class:`~repro.data.dataset.ArrayDataset` by mixing per-class feature
  shifts, global covariate shift (brightness / contrast for images, affine
  shift for vectors) and optional label noise.
* :func:`make_drift_sequence` -- a sequence of increasingly drifted
  (train, test) splits, modelling an environment that keeps changing between
  on-device adaptation sessions.

The continual-adaptation example (``examples/continual_adaptation.py``) uses
these to compare how many adaptation sessions a battery budget sustains with
fp32 fine-tuning versus APT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class DriftSpec:
    """How strongly and in what ways a dataset drifts."""

    #: Standard deviation of the per-class mean shift, in units of the data std.
    class_shift: float = 0.5
    #: Global multiplicative (contrast-like) drift applied to all samples.
    scale_drift: float = 0.1
    #: Global additive (brightness-like) drift applied to all samples.
    offset_drift: float = 0.1
    #: Fraction of labels randomly re-assigned (sensor/annotation noise).
    label_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.class_shift < 0 or self.scale_drift < 0 or self.offset_drift < 0:
            raise ValueError("drift magnitudes must be non-negative")
        if not 0.0 <= self.label_noise < 1.0:
            raise ValueError(f"label_noise must be in [0, 1), got {self.label_noise}")


def drift_dataset(
    dataset: ArrayDataset,
    spec: DriftSpec,
    rng: Optional[np.random.Generator] = None,
) -> ArrayDataset:
    """Return a drifted copy of ``dataset`` (the original is untouched)."""
    rng = rng or np.random.default_rng()
    inputs = dataset.inputs.copy()
    labels = dataset.labels.copy()
    data_std = float(inputs.std()) or 1.0
    num_classes = dataset.num_classes

    # Per-class mean shift: each class's distribution moves somewhere new.
    if spec.class_shift > 0:
        feature_shape = inputs.shape[1:]
        shifts = rng.normal(0.0, spec.class_shift * data_std, size=(num_classes,) + feature_shape)
        for label in range(num_classes):
            inputs[labels == label] += shifts[label]

    # Global covariate shift shared by every sample (sensor degradation,
    # lighting change, ...).
    scale = 1.0 + rng.normal(0.0, spec.scale_drift)
    offset = rng.normal(0.0, spec.offset_drift * data_std)
    inputs = scale * inputs + offset

    # Label noise.
    if spec.label_noise > 0:
        flip = rng.random(len(labels)) < spec.label_noise
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))

    return ArrayDataset(inputs, labels, transform=dataset.transform)


def make_drift_sequence(
    train_set: ArrayDataset,
    test_set: ArrayDataset,
    num_stages: int,
    spec: DriftSpec,
    seed: int = 0,
) -> List[Tuple[ArrayDataset, ArrayDataset]]:
    """A sequence of progressively drifted (train, test) environment stages.

    Stage 0 is the original environment; stage ``i`` applies the drift spec
    ``i`` times cumulatively, so later stages are further from the training
    distribution.  Train and test splits drift together (they describe the
    same environment).
    """
    if num_stages < 1:
        raise ValueError("need at least one stage")
    rng = np.random.default_rng(seed)
    stages: List[Tuple[ArrayDataset, ArrayDataset]] = [(train_set, test_set)]
    current_train, current_test = train_set, test_set
    for _ in range(num_stages - 1):
        # The same generator drives both splits so they drift consistently.
        state = rng.integers(0, 2 ** 31)
        current_train = drift_dataset(current_train, spec, np.random.default_rng(state))
        current_test = drift_dataset(current_test, spec, np.random.default_rng(state))
        stages.append((current_train, current_test))
    return stages
