"""Mini-batch loader."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset


class DataLoader:
    """Iterate a dataset in shuffled mini-batches of numpy arrays.

    Yields ``(inputs, labels)`` pairs where ``inputs`` has the batch dimension
    first.  The paper trains with a batch size of 128; tests and fast bench
    configurations use smaller batches.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 128,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    @property
    def num_samples(self) -> int:
        if self.drop_last:
            return len(self) * self.batch_size
        return len(self.dataset)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            samples = []
            labels = []
            for index in batch_indices:
                sample, label = self.dataset[int(index)]
                samples.append(sample)
                labels.append(label)
            yield np.stack(samples), np.asarray(labels, dtype=np.int64)
