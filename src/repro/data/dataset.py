"""Dataset abstractions."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays with an optional per-sample transform.

    Parameters
    ----------
    inputs:
        Array of shape ``(N, ...)``; image datasets use NCHW.
    labels:
        Integer labels of shape ``(N,)``.
    transform:
        Optional callable applied to each input sample at access time (the
        augmentation pipeline).  It receives and returns a numpy array.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) must have equal length"
            )
        if len(inputs) == 0:
            raise ValueError("dataset must not be empty")
        self.inputs = inputs
        self.labels = labels
        self.transform = transform

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        sample = self.inputs[index]
        if self.transform is not None:
            sample = self.transform(sample)
        return sample, int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    def subset(self, indices) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices`` (shares the transform)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.inputs[indices], self.labels[indices], transform=self.transform)
