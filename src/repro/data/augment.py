"""Data augmentation matching Section IV of the paper.

Training: pad 4 pixels on each side, take a random crop at the original size,
and flip horizontally with probability 0.5.  Testing: the single original
view, optionally normalised.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, sample: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            sample = transform(sample)
        return sample


class RandomCrop:
    """Pad a CHW image and crop a random window at the original size."""

    def __init__(self, padding: int = 4, rng: Optional[np.random.Generator] = None) -> None:
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = padding
        self.rng = rng or np.random.default_rng()

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.ndim != 3:
            raise ValueError(f"expected CHW image, got shape {image.shape}")
        if self.padding == 0:
            return image
        _, height, width = image.shape
        padded = np.pad(
            image, ((0, 0), (self.padding, self.padding), (self.padding, self.padding))
        )
        top = int(self.rng.integers(0, 2 * self.padding + 1))
        left = int(self.rng.integers(0, 2 * self.padding + 1))
        return padded[:, top : top + height, left : left + width]


class RandomHorizontalFlip:
    """Flip a CHW image left-right with the given probability."""

    def __init__(self, probability: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self.rng = rng or np.random.default_rng()

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if image.ndim != 3:
            raise ValueError(f"expected CHW image, got shape {image.shape}")
        if self.rng.random() < self.probability:
            return image[:, :, ::-1].copy()
        return image


class Normalize:
    """Per-channel standardisation of a CHW image."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std


def build_paper_augmentation(
    padding: int = 4,
    flip_probability: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> Compose:
    """The training-time augmentation of Section IV (pad-4 crop + flip)."""
    rng = rng or np.random.default_rng()
    return Compose([RandomCrop(padding=padding, rng=rng), RandomHorizontalFlip(flip_probability, rng=rng)])
