"""Serve-while-training benchmark behind ``repro.cli adapt-bench``.

Measures the two costs of online adaptation the architecture promises to
keep small:

* **Swap latency** -- how long the atomic repository handoff takes (the
  compile happens before the swap; the handoff itself is dictionary writes
  plus a generation bump).
* **Serving degradation** -- throughput of the worker pool while an APT
  fine-tuning job trains on the same host, versus an idle baseline, plus a
  post-swap wave proving the service is healthy on the new version.

Every request's future is awaited, so the report also certifies the
zero-dropped-requests property across the handoff.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.adapt.job import AdaptationJob, AdaptationWorker
from repro.core.config import APTConfig
from repro.data.drift import DriftSpec, drift_dataset
from repro.data.synthetic import make_synthetic_digits
from repro.models import build_model
from repro.quant.deploy import export_quantized_model
from repro.serve.repository import ModelRepository
from repro.serve.scheduler import QueuePolicy
from repro.serve.service import InferenceService


@dataclass
class AdaptBenchReport:
    """Result of one adapt-bench run."""

    model: str
    bits: int
    workers: int
    epochs: int
    train_samples: int
    baseline_requests: int
    contended_requests: int
    post_swap_requests: int
    baseline_rps: float
    contended_rps: float
    post_swap_rps: float
    train_seconds: float
    swap_seconds: float
    accuracy_before: float
    accuracy_after: float
    generation_before: int
    generation_after: int
    failed_requests: int
    status: str

    @property
    def degradation_pct(self) -> float:
        """Throughput lost while the fine-tune job shared the host (%)."""
        if self.baseline_rps <= 0:
            return 0.0
        return max(0.0, 100.0 * (1.0 - self.contended_rps / self.baseline_rps))

    def format_rows(self) -> List[str]:
        """The report as aligned text lines (phases, then the swap summary)."""
        return [
            f"{'phase':<22s} {'requests':>9s} {'req/s':>10s}",
            "-" * 43,
            f"{'baseline (idle host)':<22s} {self.baseline_requests:9d} {self.baseline_rps:10.0f}",
            f"{'during fine-tune':<22s} {self.contended_requests:9d} {self.contended_rps:10.0f}",
            f"{'after hot-swap':<22s} {self.post_swap_requests:9d} {self.post_swap_rps:10.0f}",
            "",
            f"throughput degradation while training: {self.degradation_pct:.1f}%",
            f"fine-tune: {self.train_seconds:.2f}s over {self.epochs} epochs "
            f"on {self.train_samples} samples ({self.status})",
            f"hot-swap latency: {self.swap_seconds * 1e3:.3f} ms "
            f"(generation {self.generation_before} -> {self.generation_after})",
            f"accuracy before/after: {self.accuracy_before:.3f} -> {self.accuracy_after:.3f}",
            f"failed/dropped requests: {self.failed_requests}",
        ]


def _pump(
    service: InferenceService,
    model: str,
    samples: np.ndarray,
    count: int,
) -> Tuple[float, int]:
    """Serve ``count`` requests round-robin from ``samples``; returns (s, failures)."""
    started = time.perf_counter()
    futures = [
        service.submit(model, samples[index % len(samples)]) for index in range(count)
    ]
    failures = 0
    for future in futures:
        try:
            future.result(timeout=60.0)
        except Exception:  # noqa: BLE001 - the bench counts, not raises
            failures += 1
    return time.perf_counter() - started, failures


def run_adapt_bench(
    model_name: str = "tiny_convnet",
    *,
    bits: int = 8,
    workers: int = 2,
    requests: int = 256,
    batch_size: int = 16,
    epochs: int = 2,
    train_samples: int = 256,
    image_size: int = 12,
    num_classes: int = 10,
    config: Optional[APTConfig] = None,
    seed: int = 0,
) -> AdaptBenchReport:
    """Serve one model while an APT fine-tune job retrains and hot-swaps it.

    Args:
        model_name: Registry model (an image model; data comes from
            :func:`~repro.data.synthetic.make_synthetic_digits`).
        bits: Uniform bitwidth of the served (and swapped) variant.
        workers: Worker-pool threads serving requests.
        requests: Requests per measured phase (baseline / contended waves /
            post-swap).
        batch_size: Micro-batch size of the variant's queue.
        epochs: Fine-tune epochs (keep small; the bench measures overlap,
            not convergence).
        train_samples: Labelled samples the fine-tune job trains on
            (drifted copies of the serving distribution).
        image_size, num_classes: Workload geometry.
        config: APT hyper-parameters for the session (default: paper's).
        seed: Base RNG seed.

    Returns:
        An :class:`AdaptBenchReport`; ``failed_requests`` counts futures
        that raised or timed out (the acceptance criterion is 0).
    """
    from repro.quant.affine import FLOAT_BITS_THRESHOLD, MIN_BITS

    if not MIN_BITS <= bits < FLOAT_BITS_THRESHOLD:
        raise ValueError(
            f"bits must be in [{MIN_BITS}, {FLOAT_BITS_THRESHOLD - 1}] for a "
            f"quantised serving variant, got {bits}"
        )
    rng = np.random.default_rng(seed)
    model = build_model(model_name, num_classes=num_classes, in_channels=1, rng=rng)
    input_shape = (1, image_size, image_size)
    train_set, test_set = make_synthetic_digits(
        train_samples=train_samples,
        test_samples=max(64, train_samples // 4),
        image_size=image_size,
        seed=seed,
    )

    repo = ModelRepository()
    repo.add_model(model_name, model, input_shape)
    repo.add_export(
        model_name,
        export_quantized_model(model, {n: bits for n, _ in model.named_parameters()}),
        bits=bits,
    )
    generation_before = repo.generation(model_name)

    request_stream = np.stack([test_set[index][0] for index in range(len(test_set))])
    service = InferenceService(
        repo,
        workers=workers,
        queue_policy=QueuePolicy(max_batch_size=batch_size, max_queue_delay_s=0.0),
    )
    failures = 0
    with service:
        # Phase 1: idle-host baseline.
        baseline_seconds, failed = _pump(service, model_name, request_stream, requests)
        failures += failed

        # Phase 2: keep serving while the fine-tune job trains on a drifted
        # copy of the serving distribution (the motivating scenario).
        drifted = drift_dataset(
            train_set, DriftSpec(class_shift=0.4, scale_drift=0.1),
            rng=np.random.default_rng(seed + 1),
        )
        job = AdaptationJob(
            model=model_name,
            bits=bits,
            train_set=drifted,
            config=config,
            epochs=epochs,
            batch_size=32,
            seed=seed,
        )
        contended_requests = 0
        contended_seconds = 0.0
        with AdaptationWorker(repo) as adapt_worker:
            handle = adapt_worker.submit(job)
            while True:
                elapsed, failed = _pump(service, model_name, request_stream, requests)
                contended_seconds += elapsed
                contended_requests += requests
                failures += failed
                if handle.done():
                    break
            result = handle.result()
        generation_after = repo.generation(model_name)

        # Phase 3: the service keeps serving on the swapped-in version.
        post_seconds, failed = _pump(service, model_name, request_stream, requests)
        failures += failed

    return AdaptBenchReport(
        model=model_name,
        bits=bits,
        workers=workers,
        epochs=epochs,
        train_samples=len(drifted),
        baseline_requests=requests,
        contended_requests=contended_requests,
        post_swap_requests=requests,
        baseline_rps=requests / baseline_seconds if baseline_seconds > 0 else 0.0,
        contended_rps=(
            contended_requests / contended_seconds if contended_seconds > 0 else 0.0
        ),
        post_swap_rps=requests / post_seconds if post_seconds > 0 else 0.0,
        train_seconds=result.train_seconds,
        swap_seconds=result.swap_seconds,
        accuracy_before=result.accuracy_before,
        accuracy_after=result.accuracy_after,
        generation_before=generation_before,
        generation_after=generation_after,
        failed_requests=failures,
        status=result.status,
    )
