"""APT fine-tuning jobs that end in a hot-swap of the served export.

This is the closing of the paper's loop: the model that *serves* is the
model that *trains*.  An :class:`AdaptationJob` names a repository variant
and brings labelled samples (typically a
:meth:`~repro.adapt.buffer.FeedbackBuffer.snapshot` of serving feedback);
:func:`run_adaptation_job` then

1. clones the architecture and resumes from the **currently served
   export** -- weights via :func:`~repro.quant.deploy.load_into_model`,
   per-layer precision via the export's stored bitwidths
   (:meth:`~repro.quant.deploy.QuantizedModelExport.bitwidths`), so the
   APT controller continues from the adapted state rather than re-running
   the warm-up;
2. fine-tunes with the shared :class:`~repro.train.trainer.Trainer` under
   an :class:`~repro.core.strategy.APTStrategy` (the exact training stack
   the paper's experiments use, including analytic energy accounting);
3. re-exports the fine-tuned model as integer codes and atomically
   :meth:`~repro.serve.repository.ModelRepository.swap`\\ s it into
   serving, recording how long the handoff took.

:class:`AdaptationWorker` runs jobs on a background thread so serving and
fine-tuning overlap -- the scenario the whole subsystem exists for.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.config import APTConfig
from repro.core.strategy import APTStrategy
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.hardware.accounting import EnergyMeter
from repro.hardware.energy import EnergyModel
from repro.optim.sgd import SGD
from repro.quant.deploy import export_quantized_model, load_into_model
from repro.serve.repository import ModelRepository, ModelVersion
from repro.train.history import TrainingHistory
from repro.train.serialization import save_checkpoint
from repro.train.trainer import Trainer, TrainerConfig


@dataclass
class AdaptationJob:
    """One fine-tune-and-swap work item.

    Attributes
    ----------
    model, bits:
        The repository variant to adapt: training resumes from this
        export, and the refreshed export is swapped back under the same
        variant key (stable queue keys and routing while the model's
        *content* moves on).
    train_set:
        Labelled samples from the serving distribution -- usually a
        feedback-buffer snapshot.
    eval_set:
        Held-out labelled samples for the before/after accuracy check;
        defaults to ``train_set`` when absent (fit quality only).
    config:
        APT hyper-parameters for the session.  The per-layer *starting*
        bitwidths always come from the served export; this controls the
        thresholds/clamps of the feedback loop during fine-tuning.
    epochs, batch_size, learning_rate, momentum, weight_decay, seed:
        The usual fine-tuning recipe (short and cheap by design).
    min_improvement:
        When set, the swap only happens if evaluated accuracy improved by
        at least this much; otherwise the job completes with status
        ``"skipped"`` and serving keeps the old version.
    checkpoint_dir:
        When set, the fine-tuned model is also written as a training
        checkpoint (``repro.train.serialization.save_checkpoint``) before
        the swap -- the durable artifact of the session.
    tag:
        Free-form label carried into the result (e.g. the trigger reason).
    """

    model: str
    bits: int
    train_set: ArrayDataset
    eval_set: Optional[ArrayDataset] = None
    config: Optional[APTConfig] = None
    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    seed: int = 0
    min_improvement: Optional[float] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be at least 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {self.batch_size}")


@dataclass
class AdaptationResult:
    """Outcome of one adaptation job.

    ``status`` is one of ``"swapped"`` (the new export is serving),
    ``"skipped"`` (trained, but the improvement gate held the swap back)
    or ``"failed"`` (``error`` carries the message; serving untouched).
    """

    job: AdaptationJob
    status: str
    version: Optional[ModelVersion] = None
    accuracy_before: float = 0.0
    accuracy_after: float = 0.0
    train_seconds: float = 0.0
    swap_seconds: float = 0.0
    #: Analytic fine-tuning energy (pJ) from the repository's model profile.
    energy_pj: float = 0.0
    history: Optional[TrainingHistory] = None
    checkpoint_path: Optional[Path] = None
    error: str = ""

    @property
    def swapped(self) -> bool:
        """Whether the refreshed export is now the served version."""
        return self.status == "swapped"


def run_adaptation_job(
    repository: ModelRepository,
    job: AdaptationJob,
    *,
    clock: Callable[[], float] = time.perf_counter,
) -> AdaptationResult:
    """Fine-tune one served variant and hot-swap the result into serving.

    Args:
        repository: The repository serving the variant (and receiving the
            swap).
        job: What to adapt and how.
        clock: Injectable timer for the train/swap latency measurements.

    Returns:
        An :class:`AdaptationResult`; never raises for training/swap
        problems (``status="failed"`` instead), so a worker thread survives
        bad jobs.  Programming errors (unknown model/variant, invalid job)
        do raise.

    Raises:
        KeyError: the repository has no such model/variant.
    """
    export = repository.export(job.model, job.bits)
    model = repository.clone_model(job.model)
    load_into_model(export, model)

    strategy = APTStrategy(
        job.config or APTConfig.paper_default(),
        initial_bitwidths=export.bitwidths(),
    )
    train_loader = DataLoader(
        job.train_set, batch_size=job.batch_size, rng=np.random.default_rng(job.seed)
    )
    eval_loader = DataLoader(
        job.eval_set if job.eval_set is not None else job.train_set,
        batch_size=max(job.batch_size, 64),
        shuffle=False,
    )
    optimizer = SGD(
        model.parameters(),
        lr=job.learning_rate,
        momentum=job.momentum,
        weight_decay=job.weight_decay,
    )
    energy_meter = EnergyMeter(repository.profile(job.model), EnergyModel())
    trainer = Trainer(
        model=model,
        optimizer=optimizer,
        train_loader=train_loader,
        test_loader=eval_loader,
        strategy=strategy,
        energy_meter=energy_meter,
        config=TrainerConfig(epochs=job.epochs),
    )

    try:
        accuracy_before = trainer.evaluate()
        started = clock()
        history = trainer.fit(job.epochs)
        train_seconds = clock() - started
        accuracy_after = history.final_test_accuracy
    except Exception as error:  # noqa: BLE001 - surface, don't kill the worker
        return AdaptationResult(
            job=job, status="failed", error=f"fine-tuning failed: {error}"
        )

    result = AdaptationResult(
        job=job,
        status="skipped",
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
        train_seconds=train_seconds,
        energy_pj=energy_meter.report.total_pj,
        history=history,
    )

    try:
        new_export = export_quantized_model(model, strategy.weight_bits())
        if job.checkpoint_dir is not None:
            result.checkpoint_path = save_checkpoint(
                model,
                Path(job.checkpoint_dir) / f"{job.model}-{job.bits}bit-adapted.npz",
                bitwidths=strategy.weight_bits(),
                metadata={
                    "model": job.model,
                    "bits": job.bits,
                    "accuracy_before": accuracy_before,
                    "accuracy_after": accuracy_after,
                    "tag": job.tag,
                },
            )
    except Exception as error:  # noqa: BLE001 - e.g. unwritable checkpoint_dir
        result.status = "failed"
        result.error = f"exporting the fine-tuned model failed: {error}"
        return result

    if (
        job.min_improvement is not None
        and accuracy_after - accuracy_before < job.min_improvement
    ):
        result.error = (
            f"improvement {accuracy_after - accuracy_before:+.3f} below the "
            f"gate of {job.min_improvement:+.3f}; keeping the served version"
        )
        return result

    try:
        # Pre-compile the refreshed plan through the shared cache so the
        # timed swap below is the pure handoff (dictionary writes plus a
        # generation bump), not a compile.  The fine-tuned clone carries
        # the same architecture fingerprint as the registered module, so
        # the cache key matches the one swap() will look up.
        repository.plan_cache.get_or_compile(
            model, new_export, repository.input_shape(job.model)
        )
        started = clock()
        result.version = repository.swap(job.model, new_export, bits=job.bits)
        result.swap_seconds = clock() - started
        result.status = "swapped"
    except Exception as error:  # noqa: BLE001
        result.status = "failed"
        result.error = f"hot-swap failed: {error}"
    return result


class JobHandle:
    """Completion handle for a job submitted to an :class:`AdaptationWorker`."""

    __slots__ = ("job", "_event", "_result")

    def __init__(self, job: AdaptationJob) -> None:
        self.job = job
        self._event = threading.Event()
        self._result: Optional[AdaptationResult] = None

    def _fulfil(self, result: AdaptationResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        """Whether the job has finished (non-blocking)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> AdaptationResult:
        """Block until the job finished.

        Raises:
            TimeoutError: the job did not finish within ``timeout``.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("adaptation job not finished within the timeout")
        assert self._result is not None
        return self._result


class AdaptationWorker:
    """Background thread running adaptation jobs while serving continues.

    One worker serialises its jobs (fine-tuning is CPU-hungry; two
    concurrent sessions would just thrash), but runs them *concurrently
    with serving* -- the worker pool keeps draining batches on the current
    plan, and each finished job hands over via the repository's atomic
    swap.

    Args:
        repository: Target of every job's resume + swap.
        clock: Injectable timer, forwarded to :func:`run_adaptation_job`.
    """

    def __init__(
        self,
        repository: ModelRepository,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.repository = repository
        self.clock = clock
        self.results: List[AdaptationResult] = []
        self._results_lock = threading.Lock()
        self._queue: "queue.Queue[Optional[JobHandle]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        #: True between a timed-out stop() and its successful retry, so the
        #: shutdown sentinel is only queued once.
        self._stopping = False
        #: Makes the stopping-check + enqueue atomic against stop(), so a
        #: submit racing a stop cannot land its handle behind the shutdown
        #: sentinel (where no thread would ever fulfil it).
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AdaptationWorker":
        """Start the background thread (once; also via ``with``).

        Raises:
            RuntimeError: the worker was already started.
        """
        if self._thread is not None:
            raise RuntimeError("adaptation worker already started")
        self._thread = threading.Thread(
            target=self._loop, name="adapt-worker", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Finish queued jobs, then stop the thread.

        Raises:
            RuntimeError: the thread did not stop within ``timeout`` (it
                keeps draining; the worker still counts as started, so a
                later ``stop`` can be retried).
        """
        if self._thread is None:
            return
        with self._submit_lock:
            if not self._stopping:
                self._queue.put(None)
                self._stopping = True
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                "adaptation worker did not stop within the timeout "
                "(a job is still running); retry stop() or wait longer"
            )
        self._thread = None
        self._stopping = False

    def __enter__(self) -> "AdaptationWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, job: AdaptationJob) -> JobHandle:
        """Queue one job; returns its completion handle.

        Raises:
            RuntimeError: the worker was not started.
        """
        with self._submit_lock:
            if self._thread is None:
                raise RuntimeError("start() the adaptation worker before submitting jobs")
            if self._stopping:
                raise RuntimeError("adaptation worker is stopping; job not accepted")
            handle = JobHandle(job)
            self._queue.put(handle)
        return handle

    def run(self, job: AdaptationJob) -> AdaptationResult:
        """Run one job synchronously on the calling thread (no queueing).

        The deterministic path used by tests and the CLI bench when
        overlap is not wanted; records the result like the thread does.
        """
        result = run_adaptation_job(self.repository, job, clock=self.clock)
        with self._results_lock:
            self.results.append(result)
        return result

    def pending(self) -> int:
        """Jobs queued but not yet started or finished (approximate)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # The worker loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            handle = self._queue.get()
            if handle is None:
                return
            try:
                result = run_adaptation_job(self.repository, handle.job, clock=self.clock)
            except Exception as error:  # noqa: BLE001 - keep the worker alive
                result = AdaptationResult(
                    job=handle.job, status="failed", error=str(error)
                )
            with self._results_lock:
                self.results.append(result)
            handle._fulfil(result)
