"""The control loop tying serving, feedback, triggers and fine-tuning together.

:class:`OnlineAdaptationManager` watches one
:class:`~repro.serve.service.InferenceService`:

* it installs itself as the service's ``feedback_sink``, so every labelled
  sample reported through ``service.record_feedback`` lands in the managed
  model's :class:`~repro.adapt.buffer.FeedbackBuffer`;
* on every :meth:`poll` it evaluates the model's
  :class:`~repro.adapt.triggers.AdaptationTrigger` policies against the
  service's live :class:`~repro.serve.types.ServeStats` and the buffer;
* when a trigger fires it builds an :class:`~repro.adapt.job.AdaptationJob`
  from the buffered feedback and either runs it inline (deterministic;
  the default) or submits it to a background
  :class:`~repro.adapt.job.AdaptationWorker` so fine-tuning overlaps with
  serving;
* after a completed swap it resets the triggers and clears the buffer, so
  the next adaptation round measures the freshly served version.

Everything time-related runs off an injectable clock, so the whole loop is
unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.adapt.buffer import FeedbackBuffer
from repro.adapt.job import (
    AdaptationJob,
    AdaptationResult,
    AdaptationWorker,
    JobHandle,
    run_adaptation_job,
)
from repro.adapt.triggers import AdaptationTrigger
from repro.core.config import APTConfig
from repro.data.dataset import ArrayDataset
from repro.serve.service import InferenceService


@dataclass
class _ManagedModel:
    """Per-model adaptation policy and state."""

    name: str
    bits: int
    triggers: List[AdaptationTrigger]
    buffer: FeedbackBuffer
    eval_set: Optional[ArrayDataset]
    config: Optional[APTConfig]
    epochs: int
    batch_size: int
    learning_rate: float
    seed: int
    min_feedback: int
    min_improvement: Optional[float]
    checkpoint_dir: Optional[Union[str, Path]]
    #: Handle of the in-flight background job, when one is running.
    in_flight: Optional[JobHandle] = None
    #: Completed results, oldest first.
    results: List[AdaptationResult] = field(default_factory=list)
    #: Jobs launched so far (used to vary the fine-tune seed per session).
    sessions: int = 0
    #: Serialises launch/harvest state transitions of this model, so
    #: concurrent poll()/wait() callers cannot double-harvest one job or
    #: launch two overlapping sessions.
    lock: threading.Lock = field(default_factory=threading.Lock)


class OnlineAdaptationManager:
    """Drift-triggered APT fine-tuning with hot-swap for a running service.

    Args:
        service: The inference service to watch.  The manager installs
            itself as the service's ``feedback_sink``.
        worker: Optional started :class:`~repro.adapt.job.AdaptationWorker`.
            With one, fired jobs run on its background thread and serving
            overlaps with fine-tuning; without one, :meth:`poll` runs the
            job inline and returns its result (deterministic -- the mode
            tests and examples default to).
        clock: Injectable time source for trigger age bookkeeping.
    """

    def __init__(
        self,
        service: InferenceService,
        *,
        worker: Optional[AdaptationWorker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if service.feedback_sink is not None:
            raise ValueError(
                "the service already has a feedback_sink (another manager?); "
                "one OnlineAdaptationManager per service -- manage() accepts "
                "any number of models"
            )
        self.service = service
        self.worker = worker
        self.clock = clock
        self._lock = threading.Lock()
        self._managed: Dict[str, _ManagedModel] = {}
        self._fired_counter = service.metrics.counter(
            "adapt_trigger_fired_total",
            "Adaptation jobs launched, by model and firing trigger kind.",
            labels=("model", "trigger"),
        )
        self._jobs_counter = service.metrics.counter(
            "adapt_jobs_total",
            "Completed adaptation jobs, by model and outcome status.",
            labels=("model", "status"),
        )
        service.feedback_sink = self._on_feedback

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def manage(
        self,
        model: str,
        *,
        bits: int,
        triggers: Sequence[AdaptationTrigger],
        capacity: int = 1024,
        eval_set: Optional[ArrayDataset] = None,
        config: Optional[APTConfig] = None,
        epochs: int = 2,
        batch_size: int = 32,
        learning_rate: float = 0.05,
        seed: int = 0,
        min_feedback: int = 16,
        min_improvement: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> FeedbackBuffer:
        """Put one served variant under adaptation management.

        Args:
            model: Repository model name (must be registered).
            bits: The variant key adaptation jobs resume from and swap.
            triggers: Drift/staleness policies; any one firing launches a
                job.
            capacity: Feedback-buffer size (oldest samples evicted).
            eval_set: Held-out labelled set for before/after accuracy;
                defaults to the job's own training snapshot.
            config, epochs, batch_size, learning_rate, seed: Fine-tune
                recipe forwarded into each :class:`AdaptationJob`; the seed
                is advanced per session so repeated adaptations differ.
            min_feedback: Minimum buffered samples before a fired trigger
                may actually launch (a fine-tune on three samples helps
                nobody).
            min_improvement, checkpoint_dir: Forwarded to the job (swap
                gate / durable checkpoint).

        Returns:
            The model's :class:`FeedbackBuffer` (for introspection).

        Raises:
            KeyError: the repository does not know ``model``.
            ValueError: the model is already managed, or the variant does
                not exist.
        """
        if min_feedback < 1:
            # A fired trigger with an empty buffer would otherwise crash
            # poll() on FeedbackBuffer.snapshot().
            raise ValueError(f"min_feedback must be at least 1, got {min_feedback}")
        self.service.repository.export(model, bits)  # validates model + variant
        with self._lock:
            if model in self._managed:
                raise ValueError(f"model {model!r} is already managed")
            self._managed[model] = _ManagedModel(
                name=model,
                bits=bits,
                triggers=list(triggers),
                buffer=FeedbackBuffer(capacity),
                eval_set=eval_set,
                config=config,
                epochs=epochs,
                batch_size=batch_size,
                learning_rate=learning_rate,
                seed=seed,
                min_feedback=min_feedback,
                min_improvement=min_improvement,
                checkpoint_dir=checkpoint_dir,
            )
            return self._managed[model].buffer

    def buffer(self, model: str) -> FeedbackBuffer:
        """The managed model's feedback buffer.

        Raises:
            KeyError: the model is not managed.
        """
        with self._lock:
            return self._managed_entry(model).buffer

    def results(self, model: str) -> List[AdaptationResult]:
        """Completed adaptation results of one model, oldest first."""
        with self._lock:
            return list(self._managed_entry(model).results)

    def _managed_entry(self, model: str) -> _ManagedModel:
        entry = self._managed.get(model)
        if entry is None:
            raise KeyError(
                f"model {model!r} is not managed; managed: {sorted(self._managed)}"
            )
        return entry

    # ------------------------------------------------------------------ #
    # Feedback intake (the service's sink)
    # ------------------------------------------------------------------ #
    def _on_feedback(
        self, model: str, x: np.ndarray, label: int, prediction: Optional[int]
    ) -> None:
        with self._lock:
            entry = self._managed.get(model)
        if entry is not None:
            entry.buffer.add(x, label, prediction)

    def record_feedback(
        self, model: str, x: np.ndarray, label: int, prediction: Optional[int] = None
    ) -> None:
        """Convenience passthrough to ``service.record_feedback``."""
        self.service.record_feedback(model, x, label, prediction=prediction)

    # ------------------------------------------------------------------ #
    # The adaptation loop
    # ------------------------------------------------------------------ #
    def poll(self, now: Optional[float] = None) -> List[AdaptationResult]:
        """Evaluate triggers; launch / harvest jobs.

        Call this periodically (or after batches of feedback).  Inline mode
        (no worker) runs a fired job to completion and returns its result;
        background mode submits it and returns results of jobs that
        *finished* since the previous poll.  After every completed job the
        model's triggers are reset and its buffer cleared, so the next
        round observes the freshly served version.

        Args:
            now: Override the clock reading (tests).

        Returns:
            Results that completed during this poll, oldest first.
        """
        now = self.clock() if now is None else now
        completed: List[AdaptationResult] = []
        with self._lock:
            entries = list(self._managed.values())
        for entry in entries:
            with entry.lock:
                harvested = self._harvest_locked(entry, now)
                if harvested is not None:
                    completed.append(harvested)
                if entry.in_flight is not None:
                    continue  # one session at a time per model
                decision = None
                for trigger in entry.triggers:
                    decision = trigger.evaluate(self.service.stats, entry.buffer, now)
                    if decision.fire:
                        break
                if decision is None or not decision.fire:
                    continue
                if len(entry.buffer) < entry.min_feedback:
                    continue  # fired, but not enough data to train on yet
                self._fired_counter.labels(
                    model=entry.name, trigger=decision.trigger or "unknown"
                ).inc()
                self.service._emit(
                    {
                        "kind": "adaptation_triggered",
                        "model": entry.name,
                        "bits": entry.bits,
                        "trigger": decision.trigger or "unknown",
                        "reason": decision.reason,
                        "at": now,
                    }
                )
                job = self._build_job(entry, decision.reason)
                if self.worker is not None:
                    entry.in_flight = self.worker.submit(job)
                else:
                    result = run_adaptation_job(self.service.repository, job)
                    self._finish(entry, result, now)
                    completed.append(result)
        return completed

    def _build_job(self, entry: _ManagedModel, reason: str) -> AdaptationJob:
        job = AdaptationJob(
            model=entry.name,
            bits=entry.bits,
            train_set=entry.buffer.snapshot(),
            eval_set=entry.eval_set,
            config=entry.config,
            epochs=entry.epochs,
            batch_size=entry.batch_size,
            learning_rate=entry.learning_rate,
            seed=entry.seed + entry.sessions,
            min_improvement=entry.min_improvement,
            checkpoint_dir=entry.checkpoint_dir,
            tag=reason,
        )
        entry.sessions += 1
        return job

    def _harvest_locked(self, entry: _ManagedModel, now: float) -> Optional[AdaptationResult]:
        """Collect a finished background job, if any (caller holds entry.lock)."""
        if entry.in_flight is None or not entry.in_flight.done():
            return None
        result = entry.in_flight.result()
        entry.in_flight = None
        self._finish(entry, result, now)
        return result

    def _finish(self, entry: _ManagedModel, result: AdaptationResult, now: float) -> None:
        entry.results.append(result)
        self._jobs_counter.labels(model=entry.name, status=result.status).inc()
        self.service._emit(
            {
                "kind": "adaptation_completed",
                "model": entry.name,
                "bits": entry.bits,
                "status": result.status,
                "reason": result.job.tag,
                "at": now,
            }
        )
        # Reset regardless of outcome: a skipped or failed session would
        # otherwise re-fire on the very same buffer every poll, burning a
        # full fine-tune each time with no new evidence.  Clearing means
        # the next session only launches once fresh feedback re-arms a
        # trigger.
        entry.buffer.clear()
        for trigger in entry.triggers:
            trigger.reset(self.service.stats, now)

    def wait(self, model: str, timeout: Optional[float] = None) -> Optional[AdaptationResult]:
        """Block until the model's in-flight background job completes.

        Returns ``None`` when no job is in flight; otherwise the job's
        result (triggers reset / buffer cleared as in :meth:`poll`, unless
        a concurrent poll harvested the job first).

        Raises:
            TimeoutError: the in-flight job did not finish in time.
        """
        with self._lock:
            entry = self._managed_entry(model)
        with entry.lock:
            handle = entry.in_flight
        if handle is None:
            return None
        result = handle.result(timeout)
        with entry.lock:
            if entry.in_flight is handle:  # a concurrent poll may have won
                entry.in_flight = None
                self._finish(entry, result, self.clock())
        return result
