"""When to fine-tune: drift / staleness policies over serving signals.

A trigger looks at what serving observed -- the aggregate
:class:`~repro.serve.types.ServeStats` and the labelled
:class:`~repro.adapt.buffer.FeedbackBuffer` -- and decides whether an
adaptation job is warranted.  Triggers are deliberately cheap and
deterministic (injectable clock, no hidden wall-time reads) so the policy
layer is unit-testable; the
:class:`~repro.adapt.manager.OnlineAdaptationManager` evaluates them on
every poll and resets them after each swap.

Two built-ins cover the paper's motivating cases:

* :class:`AccuracyDropTrigger` -- the environment drifted: observed
  feedback accuracy fell more than ``max_drop`` below the baseline.
* :class:`StalenessTrigger` -- time- or traffic-based refresh: the served
  export is older than ``max_age_s`` or has served ``max_requests``
  requests since the last adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adapt.buffer import FeedbackBuffer
from repro.serve.types import ServeStats


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of one trigger evaluation."""

    fire: bool
    reason: str = ""
    #: Which trigger kind fired (``"accuracy_drop"`` / ``"staleness"``);
    #: labels the adaptation metrics and audit events.
    trigger: str = ""

    def __bool__(self) -> bool:
        return self.fire


#: The decision every trigger returns while its condition holds no.
HOLD = TriggerDecision(fire=False, reason="")


class AdaptationTrigger:
    """Base class: decides when a served model needs fine-tuning.

    Subclasses implement :meth:`evaluate`; :meth:`reset` is called by the
    manager right after a swap so age/counter baselines restart from the
    freshly served version.
    """

    def evaluate(
        self, stats: ServeStats, feedback: FeedbackBuffer, now: float
    ) -> TriggerDecision:
        """Judge the current serving state.

        Args:
            stats: Aggregate serving statistics of the watched service.
            feedback: Labelled feedback collected since the last reset.
            now: Current time from the manager's injectable clock.

        Returns:
            A :class:`TriggerDecision`; ``fire=True`` requests adaptation.
        """
        raise NotImplementedError

    def reset(self, stats: ServeStats, now: float) -> None:
        """Re-baseline after a swap (default: nothing to re-baseline)."""


class AccuracyDropTrigger(AdaptationTrigger):
    """Fire when observed feedback accuracy drops below the baseline.

    Args:
        baseline_accuracy: Accuracy the deployed model achieved before
            deployment (e.g. its training-time test accuracy).
        max_drop: Tolerated absolute drop; observed accuracy below
            ``baseline_accuracy - max_drop`` fires.
        min_feedback: Minimum judged feedback samples before the trigger
            may fire -- keeps a couple of early mistakes from triggering a
            fine-tune on noise.
        window: Evaluate accuracy over only the newest N samples (default:
            every retained sample), so recovery after a swap is visible.
    """

    def __init__(
        self,
        baseline_accuracy: float,
        max_drop: float = 0.1,
        *,
        min_feedback: int = 16,
        window: Optional[int] = None,
    ) -> None:
        if not 0.0 <= baseline_accuracy <= 1.0:
            raise ValueError(f"baseline_accuracy must be in [0, 1], got {baseline_accuracy}")
        if max_drop <= 0:
            raise ValueError(f"max_drop must be positive, got {max_drop}")
        if min_feedback < 1:
            raise ValueError(f"min_feedback must be at least 1, got {min_feedback}")
        if window is not None and window < 1:
            raise ValueError(f"window must be at least 1 or None, got {window}")
        self.baseline_accuracy = baseline_accuracy
        self.max_drop = max_drop
        self.min_feedback = min_feedback
        self.window = window

    def evaluate(
        self, stats: ServeStats, feedback: FeedbackBuffer, now: float
    ) -> TriggerDecision:
        # Gate on *judged* samples (those carrying a prediction): unjudged
        # feedback must not unlock an accuracy verdict built on one or two
        # predictions.
        if feedback.judged(self.window) < self.min_feedback:
            return HOLD
        accuracy = feedback.accuracy(self.window)
        if accuracy is None:
            return HOLD
        floor = self.baseline_accuracy - self.max_drop
        if accuracy < floor:
            return TriggerDecision(
                fire=True,
                reason=(
                    f"observed accuracy {accuracy:.3f} fell below "
                    f"{floor:.3f} (baseline {self.baseline_accuracy:.3f} "
                    f"- tolerated drop {self.max_drop:.3f})"
                ),
                trigger="accuracy_drop",
            )
        return HOLD


class StalenessTrigger(AdaptationTrigger):
    """Fire when the served version is too old or has served too much.

    Args:
        max_age_s: Fire once ``now - last_reset`` reaches this many seconds
            (``None`` disables the age condition).
        max_requests: Fire once the service has served this many requests
            since the last reset (``None`` disables the traffic condition).

    At least one condition must be given.
    """

    def __init__(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        if max_age_s is None and max_requests is None:
            raise ValueError("give max_age_s and/or max_requests")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {max_age_s}")
        if max_requests is not None and max_requests < 1:
            raise ValueError(f"max_requests must be at least 1, got {max_requests}")
        self.max_age_s = max_age_s
        self.max_requests = max_requests
        self._baseline_time: Optional[float] = None
        self._baseline_requests = 0

    def evaluate(
        self, stats: ServeStats, feedback: FeedbackBuffer, now: float
    ) -> TriggerDecision:
        if self._baseline_time is None:
            # First evaluation anchors both baselines: age runs from now,
            # and only traffic served from here on counts toward
            # max_requests (the service may have been running for a while
            # before this trigger was attached).
            self._baseline_time = now
            self._baseline_requests = stats.requests
        if self.max_age_s is not None and now - self._baseline_time >= self.max_age_s:
            return TriggerDecision(
                fire=True,
                reason=(
                    f"served version is {now - self._baseline_time:.1f}s old "
                    f"(refresh every {self.max_age_s:.1f}s)"
                ),
                trigger="staleness",
            )
        served = stats.requests - self._baseline_requests
        if self.max_requests is not None and served >= self.max_requests:
            return TriggerDecision(
                fire=True,
                reason=(
                    f"served {served} requests since the last adaptation "
                    f"(refresh every {self.max_requests})"
                ),
                trigger="staleness",
            )
        return HOLD

    def reset(self, stats: ServeStats, now: float) -> None:
        self._baseline_time = now
        self._baseline_requests = stats.requests
