"""Bounded buffer of labelled feedback samples collected while serving.

The adaptation loop needs training data from the *serving* distribution:
every labelled sample a client reports back through
:meth:`repro.serve.InferenceService.record_feedback` lands here.  The
buffer is a thread-safe ring (oldest samples evicted at capacity), tracks
the observed accuracy over samples that carried the service's prediction,
and snapshots into an :class:`~repro.data.dataset.ArrayDataset` that an
:class:`~repro.adapt.job.AdaptationJob` fine-tunes on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class FeedbackSample:
    """One served sample with its reported ground truth."""

    x: np.ndarray
    label: int
    #: The class the service predicted, when the reporter kept the result.
    prediction: Optional[int] = None

    @property
    def correct(self) -> Optional[bool]:
        """Whether the prediction matched the label (None without one)."""
        if self.prediction is None:
            return None
        return self.prediction == self.label


class FeedbackBuffer:
    """Thread-safe bounded ring of :class:`FeedbackSample` objects.

    Args:
        capacity: Maximum retained samples; adding beyond it evicts the
            oldest (the buffer tracks the *recent* serving distribution,
            which is exactly what drift adaptation wants to train on).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: Deque[FeedbackSample] = deque(maxlen=capacity)
        #: Lifetime count, unaffected by eviction / clear.
        self.total_added = 0

    def add(self, x: np.ndarray, label: int, prediction: Optional[int] = None) -> None:
        """Append one labelled sample (copies ``x``; evicts at capacity)."""
        sample = FeedbackSample(
            x=np.array(x, dtype=np.float64, copy=True),
            label=int(label),
            prediction=None if prediction is None else int(prediction),
        )
        with self._lock:
            self._samples.append(sample)
            self.total_added += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @staticmethod
    def _windowed(samples, window: Optional[int]):
        if window is None:
            return samples
        window = int(window)
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        return samples[-window:]

    def judged(self, window: Optional[int] = None) -> int:
        """How many of the newest ``window`` samples carry a prediction.

        The denominator of :meth:`accuracy` -- triggers gate on this, not
        on the raw sample count, so unjudged feedback cannot unlock an
        accuracy decision built on one or two predictions.
        """
        with self._lock:
            samples = list(self._samples)
        return sum(
            1 for sample in self._windowed(samples, window) if sample.prediction is not None
        )

    def accuracy(self, window: Optional[int] = None) -> Optional[float]:
        """Observed accuracy over the newest ``window`` samples with predictions.

        Args:
            window: Number of newest samples to consider (default: all;
                must be at least 1 when given).

        Returns:
            Fraction correct, or ``None`` when no retained sample carried a
            prediction.
        """
        with self._lock:
            samples = list(self._samples)
        judged = [
            sample.correct
            for sample in self._windowed(samples, window)
            if sample.correct is not None
        ]
        if not judged:
            return None
        return sum(judged) / len(judged)

    def snapshot(self) -> ArrayDataset:
        """The retained samples as a dataset (inputs stacked, labels array).

        Raises:
            ValueError: the buffer is empty.
        """
        with self._lock:
            samples = list(self._samples)
        if not samples:
            raise ValueError("feedback buffer is empty; nothing to snapshot")
        inputs = np.stack([sample.x for sample in samples])
        labels = np.array([sample.label for sample in samples], dtype=np.int64)
        return ArrayDataset(inputs, labels)

    def clear(self) -> None:
        """Drop all retained samples (``total_added`` keeps counting)."""
        with self._lock:
            self._samples.clear()
