"""Online adaptation: APT fine-tuning jobs that hot-swap served models.

The paper's point is that training happens *on the device that serves* --
APT makes edge personalisation and drift adaptation affordable.  This
package closes that loop over the serving stack:

```
  serve ──► observe drift ──► APT fine-tune ──► re-export ──► hot-swap
    ▲   (feedback + triggers)  (resume from      (integer      (atomic,
    │                           served export)    codes)        versioned)
    └──────────────────────────────────────────────────────────────┘
```

* :class:`~repro.adapt.buffer.FeedbackBuffer` -- labelled samples reported
  through ``InferenceService.record_feedback``.
* :mod:`~repro.adapt.triggers` -- when to adapt:
  :class:`~repro.adapt.triggers.AccuracyDropTrigger` (drift detected) and
  :class:`~repro.adapt.triggers.StalenessTrigger` (age / traffic refresh).
* :class:`~repro.adapt.job.AdaptationJob` /
  :func:`~repro.adapt.job.run_adaptation_job` /
  :class:`~repro.adapt.job.AdaptationWorker` -- resume APT from the served
  export's weights *and* per-layer bitwidths, fine-tune through the shared
  trainer, re-export, and atomically
  :meth:`~repro.serve.repository.ModelRepository.swap` into serving.
* :class:`~repro.adapt.manager.OnlineAdaptationManager` -- the control
  loop composing all of the above over a running service.
* :func:`~repro.adapt.bench.run_adapt_bench` -- swap latency and
  serve-while-training throughput, behind ``repro.cli adapt-bench``.
"""

from repro.adapt.bench import AdaptBenchReport, run_adapt_bench
from repro.adapt.buffer import FeedbackBuffer, FeedbackSample
from repro.adapt.job import (
    AdaptationJob,
    AdaptationResult,
    AdaptationWorker,
    JobHandle,
    run_adaptation_job,
)
from repro.adapt.manager import OnlineAdaptationManager
from repro.adapt.triggers import (
    AccuracyDropTrigger,
    AdaptationTrigger,
    StalenessTrigger,
    TriggerDecision,
)

__all__ = [
    "AdaptBenchReport",
    "AccuracyDropTrigger",
    "AdaptationJob",
    "AdaptationResult",
    "AdaptationTrigger",
    "AdaptationWorker",
    "FeedbackBuffer",
    "FeedbackSample",
    "JobHandle",
    "OnlineAdaptationManager",
    "StalenessTrigger",
    "TriggerDecision",
    "run_adapt_bench",
    "run_adaptation_job",
]
