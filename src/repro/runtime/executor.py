"""Execution layer: IR nodes lowered to kernel steps over an arena.

The executor is the only runtime layer that touches numpy at serving time.
:func:`lower_graph` translates each optimized IR node into exactly one
:class:`Step` (so step indices equal node indices, which is how steps find
their buffer color in the :class:`~repro.runtime.memory.MemoryPlan`), and
:class:`ExecutionPlan` runs the step list over an :class:`ExecutionContext`
arena.

Semantics are byte-identical to the traced module forward: fused affine
chains and elementwise chains replay the recorded ufunc sequence in place
instead of rewriting the arithmetic, and quantised conv / linear steps keep
their integer codes with the affine scale applied at the kernel boundary --
identically whether or not any optimisation pass ran.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernels
from repro.runtime import variants as kernel_variants
from repro.runtime.ir import (
    BINARY_ELEMENTWISE,
    CHAIN,
    ElemOp,
    Graph,
    Node,
    PlanCompileError,
    UNARY_ELEMENTWISE,
    Value,
    matmul_linear_info,
)
from repro.runtime.memory import MemoryPlan, PlanMemoryStats
from repro.runtime.passes import PipelineReport

Ref = Tuple[str, Union[int, np.ndarray]]  # ("slot", index) | ("const", array)

#: Lowered micro-op: (op, refs, ctx); refs may contain ("chain", None).
LoweredElemOp = Tuple[str, Tuple[Ref, ...], Dict[str, object]]

_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
}
_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "tanh": np.tanh,
}


def _resolve(ref: Ref, env: List[Optional[np.ndarray]]) -> np.ndarray:
    kind, value = ref
    return env[value] if kind == "slot" else value  # type: ignore[index]


# Shared with the select_kernels pass, which previews the baked weight to
# describe each call site before lowering happens.
_smallest_int_dtype = kernel_variants.smallest_int_dtype


def _apply_elem(
    op: str,
    arrays: Sequence[np.ndarray],
    ctx: Dict[str, object],
    out: np.ndarray,
) -> np.ndarray:
    """Run one elementwise operation into ``out`` (may alias an input)."""
    if op in _BINARY_UFUNCS:
        a, b = arrays
        return _BINARY_UFUNCS[op](a, b, out=out)
    (x,) = arrays
    if op == "relu":
        return np.maximum(x, 0.0, out=out)
    if op == "clamp":
        return kernels.clamp(x, ctx.get("min"), ctx.get("max"), out=out)
    if op == "pow":
        return np.power(x, ctx["exponent"], out=out)
    if op == "sigmoid":
        return kernels.sigmoid(x, out=out)
    if op in _UNARY_UFUNCS:
        return _UNARY_UFUNCS[op](x, out=out)
    raise PlanCompileError(f"unknown elementwise op {op!r}")  # pragma: no cover


def _native_epilogue_plan(out_channels, out_scale, out_shift, post, sample_shape):
    """Fused-epilogue plan of a native conv/linear step.

    Returns ``(EpilogueSpec, flat shift vector, extern arrays)`` when every
    post op can be baked into the generated kernel -- only constant
    operands qualify; a runtime slot in the epilogue keeps the epilogue in
    numpy (the GEMM can still go native).  ``(None, None, ())`` otherwise,
    or when there is no epilogue at all.
    """
    from repro.runtime import codegen

    nothing = (None, None, ())
    operations = []
    extern_arrays = []
    for op, refs, op_ctx in post:
        operands = []
        for kind, value in refs:
            if kind == "chain":
                operands.append(("chain",))
            elif kind == "const":
                data = np.asarray(value)
                if data.size == 1:
                    item = data.ravel()[0]
                    baked = float(item)
                    if baked != item:
                        return nothing
                    operands.append(("scalar", baked))
                else:
                    if data.dtype not in (np.float64, np.float32):
                        return nothing
                    operands.append(("extern", tuple(data.shape), False))
                    extern_arrays.append(
                        np.ascontiguousarray(data, dtype=np.float64)
                    )
            else:
                return nothing  # runtime operand: epilogue stays in numpy
        operations.append((op, operands, op_ctx))
    spec = codegen.epilogue_spec(
        sample_shape, out_scale is not None, out_shift is not None, operations
    )
    if spec is None or spec.is_empty():
        return nothing
    shift = None
    if out_shift is not None:
        flat = np.ascontiguousarray(out_shift, dtype=np.float64).reshape(-1)
        if flat.size != out_channels:
            return nothing
        shift = flat
    return spec, shift, tuple(extern_arrays)


# --------------------------------------------------------------------------- #
# Execution state
# --------------------------------------------------------------------------- #
class ExecutionContext:
    """Per-execution mutable state of one :class:`ExecutionPlan`.

    Holds the slot environment the steps read and write plus the buffer
    arena: one contiguous byte block laid out by the plan's
    :class:`~repro.runtime.memory.MemoryPlan`, into which scratch-writing
    steps take aligned views keyed by their buffer color.  The plan itself
    stays immutable, so any number of contexts -- one per worker thread --
    can execute the same plan concurrently.  A context is *not* itself
    thread-safe: it belongs to exactly one executing thread at a time.

    Pass ``batch_size`` (worker pools use the scheduler's maximum batch) to
    preallocate the whole arena up front; otherwise the first ``run`` sizes
    it and later, larger batches grow it.
    """

    __slots__ = (
        "plan", "env", "_arena", "_offsets", "_limits", "_reserved_batch", "_views", "_loose"
    )

    def __init__(self, plan: "ExecutionPlan", batch_size: Optional[int] = None) -> None:
        self.plan = plan
        self.env: List[Optional[np.ndarray]] = [None] * plan.num_slots
        self._arena: Optional[np.ndarray] = None
        self._offsets: List[int] = []
        self._limits: List[int] = []
        self._reserved_batch = 0
        self._views: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._loose: Dict[int, np.ndarray] = {}
        if batch_size is not None:
            self.reserve(batch_size)

    def reserve(self, batch_size: int) -> "ExecutionContext":
        """Preallocate the arena for batches up to ``batch_size``."""
        if batch_size <= self._reserved_batch:
            return self
        memory = self.plan.memory
        offsets, total = memory.layout(batch_size)
        self._arena = np.empty(total, dtype=np.uint8)
        self._offsets = offsets
        self._limits = [
            memory.color_bytes(color, batch_size) for color in range(len(offsets))
        ]
        self._reserved_batch = int(batch_size)
        self._views = {}
        return self

    @property
    def arena_nbytes(self) -> int:
        """Bytes currently committed to the arena (0 before first use)."""
        return 0 if self._arena is None else int(self._arena.nbytes)

    def scratch(self, step: "Step", shape: Tuple[int, ...]) -> np.ndarray:
        """The float64 buffer ``step`` writes in this arena."""
        key = (step.index, shape)
        view = self._views.get(key)
        if view is not None:
            return view
        color = self.plan.memory.color_of_node.get(step.index)
        nbytes = 8 * int(np.prod(shape))
        if color is None or self._arena is None or nbytes > self._limits[color]:
            # Not planned into the arena, no batch reserved yet, or the
            # live shape outgrew the planned color (e.g. the batch lives on
            # a non-leading axis the planner could not see): fall back to a
            # private per-step buffer, the pre-planner behaviour.  Planned
            # steps never read a stale arena view, so the fallback is
            # always safe, only unshared.
            buf = self._loose.get(step.index)
            if buf is None or buf.shape != shape:
                buf = np.empty(shape, dtype=np.float64)
                self._loose[step.index] = buf
            return buf
        offset = self._offsets[color]
        view = self._arena[offset : offset + nbytes].view(np.float64).reshape(shape)
        self._views[key] = view
        return view


# --------------------------------------------------------------------------- #
# Steps
# --------------------------------------------------------------------------- #
class Step:
    """One kernel call: reads input slots / baked constants, writes ``out``.

    Steps are immutable after compilation (``index`` is assigned once by the
    owning plan and doubles as the node index in the memory plan); all
    scratch space comes from the borrowed :class:`ExecutionContext`.
    """

    __slots__ = ("out", "index")

    def __init__(self, out: int) -> None:
        self.out = out
        self.index = -1  # assigned by ExecutionPlan

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return type(self).__name__


class _EpilogueMixin:
    """Shared output post-processing for conv / linear / matmul steps.

    The raw kernel result is scaled by ``out_scale`` (the quantised weight
    scale, applied at the kernel boundary), shifted by ``out_shift`` (a
    convolution's own bias), then the affine-fusion micro-ops absorbed from
    the graph replay in place, in recorded order.
    """

    __slots__ = ()

    def _apply_epilogue(self, raw: np.ndarray, env) -> np.ndarray:
        if self.out_scale is not None:
            raw *= self.out_scale
        if self.out_shift is not None:
            raw += self.out_shift
        for op, refs, op_ctx in self.post:
            arrays = [raw if kind == "chain" else _resolve((kind, value), env)
                      for kind, value in refs]
            raw = _apply_elem(op, arrays, op_ctx, raw)
        return raw

    def _epilogue_tag(self) -> str:
        parts = []
        if self.out_scale is not None or self.out_shift is not None:
            parts.append("+affine")
        if self.post:
            parts.append("+" + ">".join(op for op, _, _ in self.post))
        return " " + " ".join(parts) if parts else ""


class ConvStep(Step, _EpilogueMixin):
    """Convolution lowered through its selected variant, with an optional
    fused in-place epilogue.

    ``weight_matrix`` is the canonical baked filter matrix (integer codes
    for quantised plans); ``_weight_exec`` is its execution-time form
    prepared once for the selected variant (e.g. pre-packed to contiguous
    float64).  Every variant writes the same ``(N, C_out, oh*ow)`` scratch
    shape, so the memory plan is variant-independent.
    """

    __slots__ = (
        "x",
        "weight_matrix",
        "kernel_size",
        "stride",
        "padding",
        "out_channels",
        "out_scale",
        "out_shift",
        "post",
        "bits",
        "param_name",
        "variant",
        "provenance",
        "_weight_exec",
        "_native_epi",
        "_native_shift",
        "_native_externs",
    )

    def __init__(
        self,
        out: int,
        x: int,
        weight_matrix: np.ndarray,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        out_scale: Optional[np.ndarray],
        out_shift: Optional[np.ndarray],
        bits: int,
        param_name: str,
        post: Tuple[LoweredElemOp, ...] = (),
        variant: str = "im2col",
        provenance: str = "heuristic",
    ) -> None:
        super().__init__(out)
        self.x = x
        self.weight_matrix = weight_matrix
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.out_channels = int(weight_matrix.shape[0])
        self.out_scale = out_scale
        self.out_shift = out_shift
        self.post = tuple(post)
        self.bits = bits
        self.param_name = param_name
        self.variant = variant
        self.provenance = provenance
        self._weight_exec = kernel_variants.prepare_conv_weight(variant, weight_matrix)
        self._native_epi = self._native_shift = None
        self._native_externs = ()
        if variant == "native":
            self._native_epi, self._native_shift, self._native_externs = (
                _native_epilogue_plan(
                    self.out_channels, out_scale, out_shift, self.post,
                    # Sentinel sample shape: only per-channel / scalar
                    # epilogue operands are bakeable for convs (spatial
                    # dims aren't known until run time).
                    sample_shape=(self.out_channels, 0, 0),
                )
            )

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = env[self.x]
        out_h, out_w = kernels.conv_output_hw(
            x.shape[2], x.shape[3], self.kernel_size, self.stride, self.padding
        )
        shape = (x.shape[0], self.out_channels, out_h * out_w)
        if self._native_epi is not None:
            fused = self._run_native_fused(x, out_h, out_w, shape, ctx)
            if fused is not None:
                env[self.out] = fused
                return
        raw = kernel_variants.run_conv(
            self.variant, x, self._weight_exec, self.kernel_size, self.stride,
            self.padding, out=ctx.scratch(self, shape),
        )
        out = raw.reshape(x.shape[0], self.out_channels, out_h, out_w)
        env[self.out] = self._apply_epilogue(out, env)

    def _run_native_fused(self, x, out_h, out_w, shape, ctx):
        """GEMM + epilogue in one generated kernel; ``None`` = fall back."""
        from repro.runtime import codegen

        weight = self._weight_exec
        if (
            x.ndim != 4
            or x.dtype != np.float64 or not x.flags.c_contiguous
            or weight.dtype != np.float64 or not weight.flags.c_contiguous
        ):
            return None
        geom = codegen.ConvGeom(
            c_in=int(x.shape[1]), h=int(x.shape[2]), w=int(x.shape[3]),
            kh=self.kernel_size[0], kw=self.kernel_size[1],
            sh=self.stride[0], sw=self.stride[1],
            ph=self.padding[0], pw=self.padding[1],
            c_out=self.out_channels,
        )
        kernel = codegen.native_conv_kernel(geom, self._native_epi)
        if kernel is None:
            return None
        raw = ctx.scratch(self, shape)
        if raw.dtype != np.float64 or not raw.flags.c_contiguous:
            return None
        scale = 0.0 if self.out_scale is None else float(self.out_scale)
        if not kernel.run(
            x, weight, raw, scale=scale, shift=self._native_shift,
            externs=self._native_externs,
        ):
            return None
        return raw.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def describe(self) -> str:
        tag = f"int{self.weight_matrix.dtype.itemsize * 8}" if self.bits < 32 else "fp"
        return (
            f"conv2d[{tag}] {self.param_name} stride={self.stride} "
            f"pad={self.padding} bits={self.bits} "
            f"variant={self.variant}({self.provenance}){self._epilogue_tag()}"
        )


class LinearStep(Step, _EpilogueMixin):
    """Dense matmul against a baked ``(in, out)`` weight matrix.

    ``weight`` is the canonical stored matrix; ``_weight_exec`` is the
    selected variant's execution-time form (identical for the reference
    ``matmul`` variant, pre-packed float64 for ``packed``).
    """

    __slots__ = (
        "x", "weight", "out_scale", "out_shift", "post", "bits", "param_name",
        "variant", "provenance", "_weight_exec",
        "_native_epi", "_native_shift", "_native_externs",
    )

    def __init__(
        self,
        out: int,
        x: int,
        weight: np.ndarray,
        out_scale: Optional[np.ndarray],
        out_shift: Optional[np.ndarray],
        bits: int,
        param_name: str,
        post: Tuple[LoweredElemOp, ...] = (),
        variant: str = "matmul",
        provenance: str = "heuristic",
    ) -> None:
        super().__init__(out)
        self.x = x
        self.weight = weight
        self.out_scale = out_scale
        self.out_shift = out_shift
        self.post = tuple(post)
        self.bits = bits
        self.param_name = param_name
        self.variant = variant
        self.provenance = provenance
        self._weight_exec = kernel_variants.prepare_linear_weight(variant, weight)
        self._native_epi = self._native_shift = None
        self._native_externs = ()
        if variant == "native":
            self._native_epi, self._native_shift, self._native_externs = (
                _native_epilogue_plan(
                    int(self._weight_exec.shape[1]), out_scale, out_shift,
                    self.post, sample_shape=(int(self._weight_exec.shape[1]),),
                )
            )

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = env[self.x]
        out = None
        if x.ndim == 2 and np.result_type(x, self._weight_exec) == np.float64:
            out = ctx.scratch(self, (x.shape[0], self._weight_exec.shape[1]))
        if self._native_epi is not None and out is not None:
            fused = self._run_native_fused(x, out)
            if fused is not None:
                env[self.out] = fused
                return
        raw = kernel_variants.run_linear(self.variant, x, self._weight_exec, out=out)
        env[self.out] = self._apply_epilogue(raw, env)

    def _run_native_fused(self, x, out):
        """GEMM + epilogue in one generated kernel; ``None`` = fall back."""
        from repro.runtime import codegen

        weight = self._weight_exec
        if (
            x.dtype != np.float64 or not x.flags.c_contiguous
            or weight.dtype != np.float64 or not weight.flags.c_contiguous
            or out.dtype != np.float64 or not out.flags.c_contiguous
        ):
            return None
        geom = codegen.LinearGeom(
            in_features=int(weight.shape[0]), out_features=int(weight.shape[1])
        )
        kernel = codegen.native_linear_kernel(geom, self._native_epi)
        if kernel is None:
            return None
        scale = 0.0 if self.out_scale is None else float(self.out_scale)
        if not kernel.run(
            x, weight, out, scale=scale, shift=self._native_shift,
            externs=self._native_externs,
        ):
            return None
        return out

    def describe(self) -> str:
        tag = f"int{self.weight.dtype.itemsize * 8}" if self.bits < 32 else "fp"
        return (
            f"linear[{tag}] {self.param_name} bits={self.bits} "
            f"variant={self.variant}({self.provenance}){self._epilogue_tag()}"
        )


class MatmulStep(Step, _EpilogueMixin):
    """General matmul of two runtime values (neither is a baked weight)."""

    __slots__ = ("lhs", "rhs", "out_scale", "out_shift", "post")

    def __init__(self, out: int, lhs: Ref, rhs: Ref, post: Tuple[LoweredElemOp, ...] = ()) -> None:
        super().__init__(out)
        self.lhs = lhs
        self.rhs = rhs
        self.out_scale = None
        self.out_shift = None
        self.post = tuple(post)

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        raw = _resolve(self.lhs, env) @ _resolve(self.rhs, env)
        env[self.out] = self._apply_epilogue(raw, env)

    def describe(self) -> str:
        return f"matmul{self._epilogue_tag()}"


class ElementwiseStep(Step):
    """Broadcasted elementwise operation writing into arena scratch."""

    __slots__ = ("op", "inputs", "ctx")

    def __init__(self, out: int, op: str, inputs: Sequence[Ref], ctx: Dict[str, object]) -> None:
        super().__init__(out)
        self.op = op
        self.inputs = tuple(inputs)
        self.ctx = ctx

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        arrays = [_resolve(ref, env) for ref in self.inputs]
        if len(arrays) == 2:
            shape = np.broadcast_shapes(arrays[0].shape, arrays[1].shape)
        else:
            shape = arrays[0].shape
        env[self.out] = _apply_elem(self.op, arrays, self.ctx, ctx.scratch(self, shape))

    def describe(self) -> str:
        return f"{self.op}({', '.join(kind for kind, _ in self.inputs)})"


class FusedElementwiseStep(Step):
    """A fused chain of elementwise micro-ops over one arena buffer.

    Each micro-op reads the running chain buffer and/or external refs and
    writes the chain buffer in place -- the same ufunc sequence the
    unfused steps would run, minus the per-op buffers and slot traffic.
    """

    __slots__ = ("ops", "variant", "provenance", "_native", "_extern_refs",
                 "_x_shape")

    def __init__(
        self,
        out: int,
        ops: Sequence[LoweredElemOp],
        variant: str = "ufunc",
        provenance: str = "heuristic",
        chain_spec=None,
    ) -> None:
        super().__init__(out)
        self.ops = tuple(ops)
        self.variant = variant
        self.provenance = provenance
        self._native = None
        self._extern_refs = ()
        self._x_shape = ()
        if variant == "native" and chain_spec is not None:
            plan = self._native_plan(chain_spec)
            if plan is not None:
                self._native, self._extern_refs, self._x_shape = plan

    def _native_plan(self, spec):
        """Map the spec's extern slots back onto lowered refs, or ``None``.

        The spec was derived from the same IR node this step was lowered
        from, so the op lists line up positionally; each extern slot must
        resolve to exactly one lowered const/slot operand.
        """
        if len(self.ops) != len(spec.ops):
            return None
        externs = {}
        for (op, refs, _), op_spec in zip(self.ops, spec.ops):
            if op != op_spec.op or len(refs) != len(op_spec.refs):
                return None
            for (kind, value), ref in zip(refs, op_spec.refs):
                if ref.kind != "extern":
                    continue
                if kind == "const":
                    arr = np.ascontiguousarray(value, dtype=np.float64)
                    externs[ref.index] = ("const", arr)
                elif kind == "slot":
                    externs[ref.index] = ("slot", value)
                else:
                    return None
        modes = tuple(spec.extern_modes)
        if sorted(externs) != list(range(len(modes))):
            return None
        plan = tuple(
            (externs[i][0], externs[i][1], modes[i])
            for i in range(len(modes))
        )
        if not any(mode == "full" for _, _, mode in plan):
            return None  # no batched operand to size the output from
        return spec, plan, tuple(spec.x_shape)

    def _run_native(
        self, env: List[Optional[np.ndarray]], ctx: ExecutionContext
    ) -> Optional[np.ndarray]:
        from repro.runtime import codegen

        kernel = codegen.native_elementwise_kernel(self._native)
        if kernel is None:
            return None
        sample = self._x_shape
        arrays = []
        batch = None
        for kind, value, mode in self._extern_refs:
            arr = value if kind == "const" else env[value]
            if (
                arr is None or arr.dtype != np.float64
                or not arr.flags.c_contiguous
            ):
                return None
            if mode == "full":
                if arr.shape[1:] != sample or arr.ndim != len(sample) + 1:
                    return None
                if batch is None:
                    batch = arr.shape[0]
                elif arr.shape[0] != batch:
                    return None
            arrays.append(arr)
        if batch is None:
            return None
        buf = ctx.scratch(self, (batch,) + sample)
        if buf.dtype != np.float64 or not buf.flags.c_contiguous:
            return None
        if not kernel.run(buf, arrays, batch):
            return None
        return buf

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        if self._native is not None:
            out = self._run_native(env, ctx)
            if out is not None:
                env[self.out] = out
                return
        buf: Optional[np.ndarray] = None
        for op, refs, op_ctx in self.ops:
            arrays = [buf if kind == "chain" else _resolve((kind, value), env)
                      for kind, value in refs]
            if buf is None:
                if len(arrays) == 2:
                    shape = np.broadcast_shapes(arrays[0].shape, arrays[1].shape)
                else:
                    shape = arrays[0].shape
                buf = ctx.scratch(self, shape)
            buf = _apply_elem(op, arrays, op_ctx, buf)
        env[self.out] = buf

    def describe(self) -> str:
        chain = "->".join(op for op, _, _ in self.ops)
        return f"fused[{chain}] variant={self.variant}({self.provenance})"


class _PoolStep(Step):
    """Pooling through the selected variant (``auto`` = reference dispatch)."""

    __slots__ = ("x", "kernel_size", "stride", "variant", "provenance")
    op = ""

    def __init__(
        self,
        out: int,
        x: Ref,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int],
        variant: str = "auto",
        provenance: str = "heuristic",
    ) -> None:
        super().__init__(out)
        self.x = x
        self.kernel_size = kernel_size
        self.stride = stride
        self.variant = variant
        self.provenance = provenance

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = kernel_variants.run_pool(
            self.op, self.variant, _resolve(self.x, env), self.kernel_size, self.stride
        )

    def describe(self) -> str:
        return (
            f"{self.op} k={self.kernel_size} stride={self.stride} "
            f"variant={self.variant}({self.provenance})"
        )


class MaxPoolStep(_PoolStep):
    __slots__ = ()
    op = "max_pool2d"


class AvgPoolStep(_PoolStep):
    __slots__ = ()
    op = "avg_pool2d"


class SumStep(Step):
    __slots__ = ("x", "axis", "keepdims")

    def __init__(self, out: int, x: Ref, axis, keepdims: bool) -> None:
        super().__init__(out)
        self.x = x
        self.axis = tuple(axis) if isinstance(axis, (list, tuple)) else axis
        self.keepdims = keepdims

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = _resolve(self.x, env).sum(axis=self.axis, keepdims=self.keepdims)

    def describe(self) -> str:
        return f"sum axis={self.axis}"


class MaxReduceStep(Step):
    __slots__ = ("x", "axis", "keepdims")

    def __init__(self, out: int, x: Ref, axis, keepdims: bool) -> None:
        super().__init__(out)
        self.x = x
        self.axis = tuple(axis) if isinstance(axis, (list, tuple)) else axis
        self.keepdims = keepdims

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = _resolve(self.x, env).max(axis=self.axis, keepdims=self.keepdims)

    def describe(self) -> str:
        return f"max axis={self.axis}"


class ReshapeStep(Step):
    __slots__ = ("x", "target", "batch_polymorphic")

    def __init__(self, out: int, x: Ref, target: Tuple[int, ...], batch_polymorphic: bool) -> None:
        super().__init__(out)
        self.x = x
        self.target = target
        self.batch_polymorphic = batch_polymorphic

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = _resolve(self.x, env)
        shape = (x.shape[0],) + self.target[1:] if self.batch_polymorphic else self.target
        env[self.out] = x.reshape(shape)

    def describe(self) -> str:
        tail = ("N",) + self.target[1:] if self.batch_polymorphic else self.target
        return f"reshape {tail}"


class TransposeStep(Step):
    __slots__ = ("x", "axes")

    def __init__(self, out: int, x: Ref, axes: Tuple[int, ...]) -> None:
        super().__init__(out)
        self.x = x
        self.axes = tuple(axes)

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = _resolve(self.x, env).transpose(self.axes)

    def describe(self) -> str:
        return f"transpose {self.axes}"


# --------------------------------------------------------------------------- #
# The plan
# --------------------------------------------------------------------------- #
class ExecutionPlan:
    """An ordered sequence of kernel steps compiled from one model.

    ``run`` accepts a batch of shape ``(N,) + input_shape`` (or one sample of
    ``input_shape``) and returns the model's output.  Execution is pure
    numpy: no :class:`~repro.tensor.tensor.Tensor` objects, no autograd
    graph, one planned arena of reused buffers per context.

    The plan is an immutable compiled artifact: steps, baked weights,
    topology and the memory plan never change after construction.  All
    mutable execution state lives in an :class:`ExecutionContext`; ``run``
    borrows the calling thread's implicit context unless a worker passes
    its own, so one plan instance serves any number of threads concurrently.
    """

    def __init__(
        self,
        steps: List[Step],
        num_slots: int,
        output_slot: int,
        input_shape: Tuple[int, ...],
        source: str,
        quantized: bool,
        memory: MemoryPlan,
        pipeline: PipelineReport,
        passes: Tuple[str, ...],
    ) -> None:
        self.steps = steps
        for index, step in enumerate(steps):
            step.index = index
        self.num_slots = num_slots
        self.output_slot = output_slot
        self.input_shape = tuple(input_shape)
        self.source = source
        self.quantized = quantized
        self.memory = memory
        self.pipeline = pipeline
        self.passes = tuple(passes)
        self._thread_contexts = threading.local()

    # -- execution state ------------------------------------------------- #
    def create_context(self, batch_size: Optional[int] = None) -> ExecutionContext:
        """A fresh buffer arena for this plan (one per worker thread).

        Args:
            batch_size: Preallocate the arena for batches up to this size
                (worker pools pass the scheduler's maximum batch so the
                whole arena is committed once, ahead of the first request).
        """
        return ExecutionContext(self, batch_size=batch_size)

    def _implicit_context(self) -> ExecutionContext:
        """The calling thread's own lazily-created context."""
        ctx = getattr(self._thread_contexts, "ctx", None)
        if ctx is None:
            ctx = ExecutionContext(self)
            self._thread_contexts.ctx = ctx
        return ctx

    # -- execution ------------------------------------------------------- #
    def run(
        self,
        x: np.ndarray,
        *,
        ctx: Optional[ExecutionContext] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the plan on ``x``.

        Parameters
        ----------
        x:
            One sample of ``input_shape`` or a batch ``(N,) + input_shape``.
        ctx:
            Execution context (buffer arena) to borrow.  Defaults to a
            context owned by the calling thread, so plain ``run`` calls are
            already thread-safe; worker pools pass their own per-worker
            arena explicitly to avoid the thread-local lookup and to control
            buffer lifetime.
        out:
            Optional pre-allocated output buffer with the result's exact
            shape.  When given, the result is written into it (no allocation
            on the hot path) and ``out`` is returned.
        """
        x = np.asarray(x, dtype=np.float64)
        single = x.shape == self.input_shape
        if single:
            x = x[None]
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"plan compiled for per-sample shape {self.input_shape}, "
                f"got input of shape {x.shape}"
            )
        if ctx is None:
            ctx = self._implicit_context()
        elif ctx.plan is not self:
            raise ValueError("execution context belongs to a different plan")
        ctx.reserve(x.shape[0])
        env = ctx.env
        env[0] = x
        for step in self.steps:
            step.run(env, ctx)
        result = env[self.output_slot]
        # Arena buffers are reused by the next call; hand back owned memory.
        # A single sample is sliced *before* the copy so only its own bytes
        # move (no copy of the batch-of-one array followed by a slice).
        source = result[0] if single else result
        if out is not None:
            if out.shape != source.shape:
                raise ValueError(
                    f"out buffer has shape {out.shape}, result has {source.shape}"
                )
            np.copyto(out, source)
            result = out
        else:
            result = np.array(source, copy=True)
        # Drop slot references so the context does not pin the caller's
        # input batch and non-arena intermediates between calls (contexts
        # live as long as their worker; every slot is re-written before it
        # is read on the next run).
        env[:] = [None] * self.num_slots
        return result

    __call__ = run

    # -- introspection --------------------------------------------------- #
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def memory_stats(self) -> PlanMemoryStats:
        """Planned-vs-unplanned scratch accounting (see ``describe_pipeline``)."""
        return self.memory.stats

    def describe(self) -> str:
        """Human-readable step listing (one line per step)."""
        header = f"ExecutionPlan({self.source}, input={self.input_shape}, " \
                 f"{'quantised' if self.quantized else 'float'})"
        lines = [header] + [
            f"  {index:3d}: {step.describe()}" for index, step in enumerate(self.steps)
        ]
        return "\n".join(lines)

    def describe_pipeline(self, batch_size: int = 1) -> str:
        """Pass-by-pass compilation summary: node counts, fusions, arena bytes."""
        header = (
            f"ExecutionPlan({self.source}, input={self.input_shape}, "
            f"{'quantised' if self.quantized else 'float'}) "
            f"passes={list(self.passes)}"
        )
        histogram = Counter(type(step).__name__ for step in self.steps)
        fused_ops = sum(len(step.ops) for step in self.steps
                        if isinstance(step, FusedElementwiseStep))
        absorbed = sum(len(step.post) for step in self.steps
                       if isinstance(step, (ConvStep, LinearStep, MatmulStep)))
        step_kinds = ", ".join(f"{name}x{count}" for name, count in sorted(histogram.items()))
        lines = [header]
        lines.extend("  " + line for line in self.pipeline.describe().splitlines())
        lines.append(f"  steps: {self.num_steps} ({step_kinds})")
        lines.append(
            f"  fused: {absorbed} ops absorbed into kernels, "
            f"{fused_ops} ops in fused elementwise chains"
        )
        chosen = self.kernel_variants()
        if chosen:
            variant_counts = Counter(variant for variant, _ in chosen.values())
            provenance_counts = Counter(prov for _, prov in chosen.values())
            variants_text = ", ".join(
                f"{name}x{count}" for name, count in sorted(variant_counts.items())
            )
            provenance_text = ", ".join(
                f"{count} {name}" for name, count in sorted(provenance_counts.items())
            )
            lines.append(f"  variants: {variants_text} ({provenance_text})")
        lines.append("  " + self.memory.stats.describe(batch_size))
        return "\n".join(lines)

    def kernel_variants(self) -> Dict[str, Tuple[str, str]]:
        """Selected ``(variant, provenance)`` per variant-dispatched step.

        Keys are ``"<index>:<label>"`` (the label is the parameter name for
        conv / linear steps, the op for pooling steps) so repeated layers
        stay distinct.
        """
        chosen: Dict[str, Tuple[str, str]] = {}
        for index, step in enumerate(self.steps):
            if isinstance(step, (ConvStep, LinearStep)):
                chosen[f"{index}:{step.param_name}"] = (step.variant, step.provenance)
            elif isinstance(step, _PoolStep):
                chosen[f"{index}:{step.op}"] = (step.variant, step.provenance)
        return chosen

    def bits_by_layer(self) -> Dict[str, int]:
        """Stored weight bitwidth of every conv / linear step, keyed like
        :func:`~repro.hardware.profile.profile_model` layer names."""
        return {
            step.param_name: step.bits
            for step in self.steps
            if isinstance(step, (ConvStep, LinearStep))
        }

    def weight_bytes(self) -> int:
        """Bytes held by baked conv / linear weights (codes stay integer)."""
        return sum(
            step.weight_matrix.nbytes if isinstance(step, ConvStep) else step.weight.nbytes
            for step in self.steps
            if isinstance(step, (ConvStep, LinearStep))
        )


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
def _weight_codes(export, name: Optional[str]):
    if export is None or name is None:
        return None
    return export.quantized.get(name)


# Shared with the select_kernels pass (identical preview and lowering).
_centred_codes = kernel_variants.centred_codes


def lower_graph(
    graph: Graph,
    export,
    memory: MemoryPlan,
    pipeline: PipelineReport,
    passes: Tuple[str, ...],
    input_shape: Tuple[int, ...],
) -> ExecutionPlan:
    """Lower every IR node to exactly one kernel step.

    Node order is preserved and node index equals step index, so the
    memory plan's per-node buffer colors address steps directly.
    """
    producers = graph.producers()
    slot_of: Dict[int, int] = {graph.input.vid: 0}
    num_slots = 1

    def ref_of(value: Value) -> Ref:
        if value.kind == "const":
            return ("const", value.data)
        return ("slot", slot_of[value.vid])

    def lower_elem(elem_ops: Sequence[ElemOp]) -> Tuple[LoweredElemOp, ...]:
        lowered = []
        for elem in elem_ops:
            refs = tuple(
                ("chain", None) if operand is CHAIN else ref_of(operand)
                for operand in elem.inputs
            )
            lowered.append((elem.op, refs, dict(elem.ctx)))
        return tuple(lowered)

    steps: List[Step] = []
    for node in graph.nodes:
        refs = [ref_of(value) for value in node.inputs]
        out_slot = num_slots
        num_slots += 1
        slot_of[node.output.vid] = out_slot
        op = node.op
        if op == "conv2d":
            steps.append(_lower_conv(node, refs, out_slot, export, lower_elem(node.post)))
        elif op == "matmul":
            steps.append(
                _lower_matmul(node, refs, out_slot, producers, export, lower_elem(node.post))
            )
        elif op == "fused_elementwise":
            elem_variant = node.attrs.get("kernel_variant", "ufunc")
            chain_spec = None
            if elem_variant == "native":
                from repro.runtime import codegen

                chain_spec = codegen.chain_spec_for_node(node)
            steps.append(FusedElementwiseStep(
                out_slot,
                lower_elem(node.elem_ops),
                variant=elem_variant,
                provenance=node.attrs.get(
                    "kernel_variant_provenance", "heuristic"
                ),
                chain_spec=chain_spec,
            ))
        elif op in ("max_pool2d", "avg_pool2d"):
            cls = MaxPoolStep if op == "max_pool2d" else AvgPoolStep
            steps.append(
                cls(
                    out_slot,
                    refs[0],
                    node.attrs["kernel_size"],
                    node.attrs["stride"],
                    variant=node.attrs.get("kernel_variant", "auto"),
                    provenance=node.attrs.get("kernel_variant_provenance", "heuristic"),
                )
            )
        elif op == "sum":
            steps.append(SumStep(out_slot, refs[0], node.attrs["axis"], node.attrs["keepdims"]))
        elif op == "max":
            steps.append(
                MaxReduceStep(out_slot, refs[0], node.attrs["axis"], node.attrs["keepdims"])
            )
        elif op == "reshape":
            polymorphic = bool(node.inputs[0].batch_poly and node.output.batch_poly)
            steps.append(ReshapeStep(out_slot, refs[0], tuple(node.output.shape), polymorphic))
        elif op == "transpose":
            steps.append(TransposeStep(out_slot, refs[0], node.attrs["axes"]))
        elif op in BINARY_ELEMENTWISE or op in UNARY_ELEMENTWISE:
            steps.append(ElementwiseStep(out_slot, op, refs, dict(node.attrs)))
        else:
            raise PlanCompileError(
                f"cannot lower op {op!r} to a static plan (add a Step kind "
                f"to repro.runtime.executor to support it)"
            )

    output_slot = slot_of.get(graph.output.vid)
    if output_slot is None:
        raise PlanCompileError("model output does not depend on the input")
    return ExecutionPlan(
        steps=steps,
        num_slots=num_slots,
        output_slot=output_slot,
        input_shape=tuple(input_shape),
        source=graph.source,
        quantized=export is not None,
        memory=memory,
        pipeline=pipeline,
        passes=passes,
    )


def _lower_conv(node: Node, refs, out_slot: int, export, post) -> ConvStep:
    x_kind, x_value = refs[0]
    if x_kind != "slot":
        raise PlanCompileError("conv2d over a constant input should have been folded")
    weight_value = node.inputs[1]
    if weight_value.kind != "const" or weight_value.origin is None:
        raise PlanCompileError("conv2d weight is not a model parameter")
    name = weight_value.origin[0]
    out_channels = int(weight_value.shape[0])
    bias = node.inputs[2].data if len(node.inputs) == 3 else None

    qt = _weight_codes(export, name)
    if qt is not None:
        weight_matrix = np.ascontiguousarray(_centred_codes(qt).reshape(out_channels, -1))
        out_scale: Optional[np.ndarray] = np.float64(qt.qparams.scale)
        bits = qt.bits
    else:
        weight_matrix = weight_value.data.reshape(out_channels, -1).copy()
        out_scale = None
        bits = 32
    out_shift = bias.reshape(1, -1, 1, 1).copy() if bias is not None else None
    return ConvStep(
        out=out_slot,
        x=x_value,
        weight_matrix=weight_matrix,
        kernel_size=tuple(weight_value.shape[2:]),
        stride=node.attrs["stride"],
        padding=node.attrs["padding"],
        out_scale=out_scale,
        out_shift=out_shift,
        bits=bits,
        param_name=name,
        post=post,
        variant=node.attrs.get("kernel_variant", "im2col"),
        provenance=node.attrs.get("kernel_variant_provenance", "heuristic"),
    )


def _lower_matmul(node: Node, refs, out_slot: int, producers, export, post) -> Step:
    info = matmul_linear_info(node, producers)
    lhs_kind, lhs_value = refs[0]
    if info is not None and lhs_kind == "slot":
        weight_value, pre_transposed = info
        origin = weight_value.origin
        if origin is not None:
            name, origin_transposed = origin
            # Orientation of the effective rhs relative to the raw parameter.
            transposed = origin_transposed != pre_transposed
            qt = _weight_codes(export, name)
            if qt is not None:
                centred = _centred_codes(qt)
                if transposed:
                    centred = centred.T
                return LinearStep(
                    out=out_slot,
                    x=lhs_value,
                    weight=np.ascontiguousarray(centred),
                    out_scale=np.float64(qt.qparams.scale),
                    out_shift=None,
                    bits=qt.bits,
                    param_name=name,
                    post=post,
                    variant=node.attrs.get("kernel_variant", "matmul"),
                    provenance=node.attrs.get("kernel_variant_provenance", "heuristic"),
                )
        weight = weight_value.data.T if pre_transposed else weight_value.data
        return LinearStep(
            out=out_slot,
            x=lhs_value,
            weight=np.ascontiguousarray(weight),
            out_scale=None,
            out_shift=None,
            bits=32,
            param_name=origin[0] if origin is not None else "<matmul>",
            post=post,
            variant=node.attrs.get("kernel_variant", "matmul"),
            provenance=node.attrs.get("kernel_variant_provenance", "heuristic"),
        )
    return MatmulStep(out_slot, refs[0], refs[1], post=post)
