"""Compile a :class:`~repro.nn.module.Module` into a static execution plan.

Training needs a dynamic autograd graph; inference does not.  The compiler
is a small pipeline over four layers, each in its own module:

1. **trace -> IR** (:mod:`repro.runtime.ir`) -- one traced forward pass
   (:func:`repro.tensor.trace_ops`) becomes an explicit :class:`Graph` of
   typed :class:`Value`/:class:`Node` objects;
2. **optimizing passes** (:mod:`repro.runtime.passes`) -- a
   :class:`~repro.runtime.passes.PassManager` runs named, individually
   toggleable rewrites: constant folding, CSE, affine fusion into
   conv/linear kernels, elementwise-chain fusion, dead-node elimination.
   Every pass is byte-exact: optimised and unoptimised plans produce
   bitwise-identical outputs;
3. **memory planning** (:mod:`repro.runtime.memory`) -- liveness analysis
   and slot-reuse coloring lay every scratch buffer out in one preallocated
   per-context arena;
4. **lowering** (:mod:`repro.runtime.executor`) -- each node becomes one
   grad-free kernel step; :func:`compile_quantized_plan` substitutes a
   :class:`~repro.quant.deploy.QuantizedModelExport`'s integer codes for
   conv / linear weights with the affine scale applied at the kernel
   boundary, so there is no dequantise round-trip.

Plans are *snapshots*: weights are copied at compile time, and a plan is
specialised to one per-sample input shape but polymorphic in the batch
dimension.  Executing a plan constructs zero autograd-graph nodes
(asserted in the test-suite via :func:`repro.tensor.graph_nodes_created`).

Plans are also *immutable once compiled*: all mutable execution state (the
slot environment and the arena buffers) lives in an
:class:`~repro.runtime.executor.ExecutionContext`, not on the plan or its
steps.  ``run`` borrows one -- the calling thread's own by default, or an
explicit arena handed in by a worker pool -- so a single compiled plan is
safely shared across any number of threads (each with its own context),
which is what :mod:`repro.serve.workers` relies on.  Compilation, by
contrast, goes through thread-local tracing state in :mod:`repro.tensor`
and must be serialised; :class:`repro.runtime.cache.PlanCache` takes care
of that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.quant.deploy import QuantizedModelExport, load_into_model
from repro.runtime.executor import (  # noqa: F401  (re-exported compiled surface)
    AvgPoolStep,
    ConvStep,
    ElementwiseStep,
    ExecutionContext,
    ExecutionPlan,
    FusedElementwiseStep,
    LinearStep,
    MatmulStep,
    MaxPoolStep,
    MaxReduceStep,
    ReshapeStep,
    Step,
    SumStep,
    TransposeStep,
    lower_graph,
)
from repro.runtime.ir import PlanCompileError, build_graph  # noqa: F401
from repro.runtime.memory import plan_memory
from repro.runtime.passes import PassManager, resolve_passes
from repro.runtime.tuning import coerce_tuner, tuning_scope
from repro.tensor import Tensor, trace_ops

#: Batch size of the probe input used for tracing.  Any batch size works at
#: run time; batch-polymorphic values are detected by their traced leading
#: dimension equalling the probe batch.
_PROBE_BATCH = 2

#: Compilation is serialised process-wide: tracing records operations into
#: thread-local state, but :func:`compile_quantized_plan` temporarily loads
#: export values into the *shared* model object, so two concurrent
#: compilations against one model would race on its parameters.  Execution
#: of compiled plans takes no lock and scales across threads.
_COMPILE_LOCK = threading.RLock()


def compile_lock() -> threading.RLock:
    """The process-wide compilation lock.

    Public for callers that must snapshot shared model state consistently
    with respect to in-progress compilations -- e.g. deep-copying a module
    that a concurrent :func:`compile_quantized_plan` is temporarily loading
    export values into.  Hold it only briefly; every compilation in the
    process serialises behind it.
    """
    return _COMPILE_LOCK


def compile_plan(
    model: Module,
    input_shape: Tuple[int, ...],
    *,
    fold_affine: bool = True,
    validate: bool = True,
    passes: Optional[Sequence[str]] = None,
    optimize: bool = True,
    tuning=None,
) -> ExecutionPlan:
    """Compile ``model`` (eval-mode semantics) into a float execution plan.

    Parameters
    ----------
    model:
        The module to lower.  Its current parameters and buffers are baked
        into the plan (a snapshot; recompile after further training).
    input_shape:
        Per-sample input shape, e.g. ``(3, 32, 32)`` or ``(features,)``.
    fold_affine:
        Fuse per-channel affine chains (batch norm, bias) into the preceding
        conv / linear step.  Disable only for debugging; shorthand for
        dropping ``"fuse_affine"`` from the pass pipeline.
    validate:
        Re-run the compiled plan on the probe input and check it against the
        traced module output.
    passes:
        Explicit pass pipeline (names from
        :func:`repro.runtime.passes.available_passes`); default is the full
        :data:`~repro.runtime.passes.DEFAULT_PASSES` pipeline.  Any subset
        produces byte-identical outputs -- passes change plan shape, never
        plan results.
    optimize:
        ``False`` disables every pass: the plan interprets the raw trace
        (the reference the optimised plans are tested against).
    tuning:
        How the ``select_kernels`` pass picks kernel variants: ``None``
        (ranked heuristic, zero cost), a
        :class:`~repro.runtime.tuning.TuningConfig` (micro-benchmark
        candidates, optionally against a persistent
        :class:`~repro.runtime.tuning.TuningCache`) or an existing
        :class:`~repro.runtime.tuning.Autotuner` (shared budget across
        several compiles).  Tuning changes plan *speed* only; every
        variant is byte-exact against the reference lowering.
    """
    return _compile(model, None, input_shape, validate,
                    resolve_passes(optimize, passes, fold_affine),
                    tuning=tuning)


def compile_quantized_plan(
    model: Module,
    export: QuantizedModelExport,
    input_shape: Tuple[int, ...],
    *,
    fold_affine: bool = True,
    validate: bool = True,
    passes: Optional[Sequence[str]] = None,
    optimize: bool = True,
    tuning=None,
) -> ExecutionPlan:
    """Compile a plan that executes a quantised export directly.

    The export's values are loaded into ``model`` (which supplies the
    architecture) for the duration of the trace and the model's own state
    is restored afterwards; conv / linear weights that the export stores as
    integer codes are kept as centred integer matrices in the plan, with
    their affine scale applied at the kernel boundary as the step's output
    scale.  There is no model-wide dequantise round-trip and no autograd
    involvement at execution time.  The ``passes`` / ``optimize`` /
    ``tuning`` knobs work exactly as in :func:`compile_plan`.
    """
    with _COMPILE_LOCK:
        state = model.state_dict()
        try:
            load_into_model(export, model)
            return _compile(model, export, input_shape, validate,
                            resolve_passes(optimize, passes, fold_affine),
                            tuning=tuning)
        finally:
            model.load_state_dict(state)


def _compile(
    model: Module,
    export: Optional[QuantizedModelExport],
    input_shape: Tuple[int, ...],
    validate: bool,
    passes: Tuple[str, ...],
    tuning=None,
) -> ExecutionPlan:
    with _COMPILE_LOCK:
        return _compile_locked(model, export, input_shape, validate, passes,
                               tuning=tuning)


def _compile_locked(
    model: Module,
    export: Optional[QuantizedModelExport],
    input_shape: Tuple[int, ...],
    validate: bool,
    passes: Tuple[str, ...],
    tuning=None,
) -> ExecutionPlan:
    probe = np.random.default_rng(0).normal(size=(_PROBE_BATCH,) + tuple(input_shape))
    param_names = {id(param): name for name, param in model.named_parameters()}

    was_training = model.training
    model.eval()
    probe_tensor = Tensor(probe)
    try:
        with trace_ops() as records:
            traced_out = model(probe_tensor)
    finally:
        model.train(was_training)

    graph = build_graph(
        records, probe_tensor, traced_out, param_names, source=type(model).__name__
    )
    # The pass pipeline has a fixed Graph -> detail signature, so the tuner
    # (and the export whose integer codes select_kernels previews) travel
    # through a compile-scoped context the pass reads back out.
    with tuning_scope(coerce_tuner(tuning), export):
        pipeline = PassManager(passes).run(graph)
    if graph.output.kind == "const":
        raise PlanCompileError("model output does not depend on the input")
    memory = plan_memory(graph)
    plan = lower_graph(
        graph,
        export=export,
        memory=memory,
        pipeline=pipeline,
        passes=passes,
        input_shape=tuple(input_shape),
    )
    if validate:
        produced = plan.run(probe)
        if not np.allclose(produced, traced_out.data, rtol=1e-5, atol=1e-7):
            worst = float(np.max(np.abs(produced - traced_out.data)))
            raise PlanCompileError(
                f"compiled plan diverges from the traced module (max abs err {worst:.3e})"
            )
    return plan

# --------------------------------------------------------------------------- #
# Pickle-safe compile specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanSpec:
    """A picklable description of one plan compilation.

    Compiled :class:`ExecutionPlan` objects are deliberately *not*
    pickled across process boundaries -- their steps hold baked kernel
    buffers, fused closures and tuner-selected variants that are cheap to
    rebuild but awkward to serialise faithfully.  A ``PlanSpec`` is the
    stable contract instead: the complete set of compile *inputs* (shape
    and pass configuration -- the model and export travel separately, as
    a pickled module and an arena-mapped export).  Compiling the same
    spec against byte-identical model/export state produces byte-identical
    plan outputs in any process, which is what the process serving
    backend's cross-worker determinism rests on.
    """

    input_shape: Tuple[int, ...]
    fold_affine: bool = True
    validate: bool = True
    passes: Optional[Tuple[str, ...]] = None
    optimize: bool = True

    def __post_init__(self) -> None:
        # Normalise to hashable/picklable tuples whatever iterables came in.
        object.__setattr__(self, "input_shape", tuple(self.input_shape))
        if self.passes is not None:
            object.__setattr__(self, "passes", tuple(self.passes))

    def resolved_passes(self) -> Tuple[str, ...]:
        """The pass pipeline this spec resolves to (cache-key component)."""
        return resolve_passes(self.optimize, self.passes, self.fold_affine)

    def compile(
        self,
        model: Module,
        export: Optional[QuantizedModelExport] = None,
        *,
        tuning=None,
    ) -> ExecutionPlan:
        """Compile the spec: float plan without ``export``, quantised with."""
        if export is None:
            return compile_plan(
                model,
                self.input_shape,
                fold_affine=self.fold_affine,
                validate=self.validate,
                passes=self.passes,
                optimize=self.optimize,
                tuning=tuning,
            )
        return compile_quantized_plan(
            model,
            export,
            self.input_shape,
            fold_affine=self.fold_affine,
            validate=self.validate,
            passes=self.passes,
            optimize=self.optimize,
            tuning=tuning,
        )
