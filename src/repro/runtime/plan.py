"""Compile a :class:`~repro.nn.module.Module` into a static execution plan.

Training needs a dynamic autograd graph; inference does not.  The compiler
runs one traced forward pass through a model (via
:func:`repro.tensor.trace_ops`), then translates the recorded operation
sequence into an ordered list of grad-free kernel calls over numbered buffer
slots:

* **constant folding** -- every traced operation whose inputs are all
  constants (parameters, batch-norm statistics, scalar wrappers) is folded
  into a baked array at compile time, so e.g. the ``sqrt(var + eps)`` chain
  of an eval-mode batch norm costs nothing at run time;
* **affine fusion** -- chains of per-channel affine operations following a
  convolution or linear layer (exactly what an eval-mode batch norm and a
  bias add lower to) are folded into the producing step's output scale and
  shift, so a conv+BN pair executes as a single matmul plus one fused
  ``out * s + t``;
* **quantised execution** -- :func:`compile_quantized_plan` consumes a
  :class:`~repro.quant.deploy.QuantizedModelExport` directly: conv / linear
  weights stay as centred integer codes in the smallest dtype that holds
  them, and the affine scale is applied at the kernel boundary (folded into
  the step's output scale), instead of dequantising the whole model back
  into float training buffers;
* **buffer reuse** -- convolution and elementwise steps write into reused
  scratch buffers, so steady-state serving does not reallocate activations.

Plans are *snapshots*: weights are copied at compile time, and a plan is
specialised to one per-sample input shape but polymorphic in the batch
dimension.  Executing a plan constructs zero autograd-graph nodes
(asserted in the test-suite via :func:`repro.tensor.graph_nodes_created`).

Plans are also *immutable once compiled*: all mutable execution state (the
slot environment and the per-step scratch buffers) lives in an
:class:`ExecutionContext` arena, not on the plan or its steps.  ``run``
borrows one -- the calling thread's own by default, or an explicit arena
handed in by a worker pool -- so a single compiled plan is safely shared
across any number of threads (each with its own context), which is what
:mod:`repro.serve.workers` relies on.  Compilation, by contrast, goes
through thread-local tracing state in :mod:`repro.tensor` and must be
serialised; :class:`repro.runtime.cache.PlanCache` takes care of that.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernels
from repro.nn.module import Module
from repro.quant.deploy import QuantizedModelExport, load_into_model
from repro.tensor import Tensor, trace_ops

#: Batch size of the probe input used for tracing.  Any batch size works at
#: run time; reshape steps whose leading dimension equals the traced batch
#: are detected as batch-preserving and re-targeted to the live batch.
_PROBE_BATCH = 2

Ref = Tuple[str, Union[int, np.ndarray]]  # ("slot", index) | ("const", array)

#: Compilation is serialised process-wide: tracing records operations into
#: thread-local state, but :func:`compile_quantized_plan` temporarily loads
#: export values into the *shared* model object, so two concurrent
#: compilations against one model would race on its parameters.  Execution
#: of compiled plans takes no lock and scales across threads.
_COMPILE_LOCK = threading.RLock()


def compile_lock() -> threading.RLock:
    """The process-wide compilation lock.

    Public for callers that must snapshot shared model state consistently
    with respect to in-progress compilations -- e.g. deep-copying a module
    that a concurrent :func:`compile_quantized_plan` is temporarily loading
    export values into.  Hold it only briefly; every compilation in the
    process serialises behind it.
    """
    return _COMPILE_LOCK


class PlanCompileError(RuntimeError):
    """Raised when a model cannot be lowered to a static plan."""


def _resolve(ref: Ref, env: List[Optional[np.ndarray]]) -> np.ndarray:
    kind, value = ref
    return env[value] if kind == "slot" else value  # type: ignore[index]


def _smallest_int_dtype(low: int, high: int) -> np.dtype:
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= low and high <= info.max:
            return np.dtype(dtype)
    raise ValueError(f"no integer dtype holds [{low}, {high}]")  # pragma: no cover


# --------------------------------------------------------------------------- #
# Execution state
# --------------------------------------------------------------------------- #
class ExecutionContext:
    """Per-execution mutable state of one :class:`ExecutionPlan`.

    Holds the slot environment the steps read and write, plus one scratch
    buffer per step (the buffer arena).  The plan itself stays immutable, so
    any number of contexts -- one per worker thread -- can execute the same
    plan concurrently.  A context is *not* itself thread-safe: it belongs to
    exactly one executing thread at a time.
    """

    __slots__ = ("plan", "env", "_scratch")

    def __init__(self, plan: "ExecutionPlan") -> None:
        self.plan = plan
        self.env: List[Optional[np.ndarray]] = [None] * plan.num_slots
        self._scratch: List[Optional[np.ndarray]] = [None] * len(plan.steps)

    def scratch(self, step: "Step", shape: Tuple[int, ...]) -> np.ndarray:
        """The reusable float64 output buffer owned by ``step`` in this arena."""
        buf = self._scratch[step.index]
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._scratch[step.index] = buf
        return buf


# --------------------------------------------------------------------------- #
# Steps
# --------------------------------------------------------------------------- #
class Step:
    """One kernel call: reads input slots / baked constants, writes ``out``.

    Steps are immutable after compilation (``index`` is assigned once by the
    owning plan); all scratch space comes from the borrowed
    :class:`ExecutionContext`.
    """

    __slots__ = ("out", "index")

    def __init__(self, out: int) -> None:
        self.out = out
        self.index = -1  # assigned by ExecutionPlan

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return type(self).__name__


class _AffineOutMixin:
    """Shared output-affine handling for conv / linear steps.

    The step's raw result ``raw`` is post-processed as ``raw * out_scale +
    out_shift`` (either may be ``None``).  Quantised weight scales, biases
    and folded batch-norm affines all land here.
    """

    __slots__ = ()

    def _apply_affine(self, raw: np.ndarray) -> np.ndarray:
        if self.out_scale is not None:
            raw *= self.out_scale
        if self.out_shift is not None:
            raw += self.out_shift
        return raw


class ConvStep(Step, _AffineOutMixin):
    """im2col convolution with an optional fused output affine."""

    __slots__ = (
        "x",
        "weight_matrix",
        "kernel_size",
        "stride",
        "padding",
        "out_channels",
        "out_scale",
        "out_shift",
        "bits",
        "param_name",
    )

    def __init__(
        self,
        out: int,
        x: int,
        weight_matrix: np.ndarray,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int],
        padding: Tuple[int, int],
        out_scale: Optional[np.ndarray],
        out_shift: Optional[np.ndarray],
        bits: int,
        param_name: str,
    ) -> None:
        super().__init__(out)
        self.x = x
        self.weight_matrix = weight_matrix
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.out_channels = int(weight_matrix.shape[0])
        self.out_scale = out_scale
        self.out_shift = out_shift
        self.bits = bits
        self.param_name = param_name

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = env[self.x]
        cols, _, out_h, out_w = kernels.im2col(x, self.kernel_size, self.stride, self.padding)
        shape = (x.shape[0], self.out_channels, out_h * out_w)
        raw = kernels.matmul_cols(self.weight_matrix, cols, out=ctx.scratch(self, shape))
        out = raw.reshape(x.shape[0], self.out_channels, out_h, out_w)
        env[self.out] = self._apply_affine(out)

    def describe(self) -> str:
        tag = f"int{self.weight_matrix.dtype.itemsize * 8}" if self.bits < 32 else "fp"
        fused = " +affine" if self.out_scale is not None or self.out_shift is not None else ""
        return (
            f"conv2d[{tag}] {self.param_name} stride={self.stride} "
            f"pad={self.padding} bits={self.bits}{fused}"
        )


class LinearStep(Step, _AffineOutMixin):
    """Dense matmul against a baked ``(in, out)`` weight matrix."""

    __slots__ = ("x", "weight", "out_scale", "out_shift", "bits", "param_name")

    def __init__(
        self,
        out: int,
        x: int,
        weight: np.ndarray,
        out_scale: Optional[np.ndarray],
        out_shift: Optional[np.ndarray],
        bits: int,
        param_name: str,
    ) -> None:
        super().__init__(out)
        self.x = x
        self.weight = weight
        self.out_scale = out_scale
        self.out_shift = out_shift
        self.bits = bits
        self.param_name = param_name

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = env[self.x]
        if x.ndim == 2 and np.result_type(x, self.weight) == np.float64:
            shape = (x.shape[0], self.weight.shape[1])
            raw = np.matmul(x, self.weight, out=ctx.scratch(self, shape))
        else:
            raw = x @ self.weight
        env[self.out] = self._apply_affine(raw)

    def describe(self) -> str:
        tag = f"int{self.weight.dtype.itemsize * 8}" if self.bits < 32 else "fp"
        fused = " +affine" if self.out_scale is not None or self.out_shift is not None else ""
        return f"linear[{tag}] {self.param_name} bits={self.bits}{fused}"


class MatmulStep(Step):
    """General matmul of two runtime values (neither is a baked weight)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, out: int, lhs: Ref, rhs: Ref) -> None:
        super().__init__(out)
        self.lhs = lhs
        self.rhs = rhs

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = _resolve(self.lhs, env) @ _resolve(self.rhs, env)


_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
}
_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "tanh": np.tanh,
}


class ElementwiseStep(Step):
    """Broadcasted elementwise operation writing into arena scratch."""

    __slots__ = ("op", "inputs", "ctx")

    def __init__(self, out: int, op: str, inputs: Sequence[Ref], ctx: Dict[str, object]) -> None:
        super().__init__(out)
        self.op = op
        self.inputs = tuple(inputs)
        self.ctx = ctx

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        arrays = [_resolve(ref, env) for ref in self.inputs]
        op = self.op
        if op in _BINARY_UFUNCS:
            a, b = arrays
            out = ctx.scratch(self, np.broadcast_shapes(a.shape, b.shape))
            env[self.out] = _BINARY_UFUNCS[op](a, b, out=out)
            return
        (x,) = arrays
        if op == "relu":
            env[self.out] = np.maximum(x, 0.0, out=ctx.scratch(self, x.shape))
        elif op == "clamp":
            low = self.ctx.get("min")
            high = self.ctx.get("max")
            env[self.out] = kernels.clamp(x, low, high, out=ctx.scratch(self, x.shape))
        elif op == "pow":
            env[self.out] = np.power(x, self.ctx["exponent"], out=ctx.scratch(self, x.shape))
        elif op == "sigmoid":
            env[self.out] = kernels.sigmoid(x, out=ctx.scratch(self, x.shape))
        elif op in _UNARY_UFUNCS:
            env[self.out] = _UNARY_UFUNCS[op](x, out=ctx.scratch(self, x.shape))
        else:  # pragma: no cover - translation rejects unknown ops
            raise PlanCompileError(f"unknown elementwise op {op!r}")

    def describe(self) -> str:
        return f"{self.op}({', '.join(k for k, _ in self.inputs)})"


class MaxPoolStep(Step):
    __slots__ = ("x", "kernel_size", "stride")

    def __init__(self, out: int, x: int, kernel_size: Tuple[int, int], stride: Tuple[int, int]) -> None:
        super().__init__(out)
        self.x = x
        self.kernel_size = kernel_size
        self.stride = stride

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = kernels.max_pool2d(env[self.x], self.kernel_size, self.stride)

    def describe(self) -> str:
        return f"max_pool2d k={self.kernel_size} stride={self.stride}"


class AvgPoolStep(Step):
    __slots__ = ("x", "kernel_size", "stride")

    def __init__(self, out: int, x: int, kernel_size: Tuple[int, int], stride: Tuple[int, int]) -> None:
        super().__init__(out)
        self.x = x
        self.kernel_size = kernel_size
        self.stride = stride

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = kernels.avg_pool2d(env[self.x], self.kernel_size, self.stride)

    def describe(self) -> str:
        return f"avg_pool2d k={self.kernel_size} stride={self.stride}"


class SumStep(Step):
    __slots__ = ("x", "axis", "keepdims")

    def __init__(self, out: int, x: int, axis, keepdims: bool) -> None:
        super().__init__(out)
        self.x = x
        self.axis = tuple(axis) if isinstance(axis, (list, tuple)) else axis
        self.keepdims = keepdims

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = env[self.x].sum(axis=self.axis, keepdims=self.keepdims)

    def describe(self) -> str:
        return f"sum axis={self.axis}"


class MaxReduceStep(Step):
    __slots__ = ("x", "axis", "keepdims")

    def __init__(self, out: int, x: int, axis, keepdims: bool) -> None:
        super().__init__(out)
        self.x = x
        self.axis = tuple(axis) if isinstance(axis, (list, tuple)) else axis
        self.keepdims = keepdims

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = env[self.x].max(axis=self.axis, keepdims=self.keepdims)

    def describe(self) -> str:
        return f"max axis={self.axis}"


class ReshapeStep(Step):
    __slots__ = ("x", "target", "batch_polymorphic")

    def __init__(self, out: int, x: int, target: Tuple[int, ...], batch_polymorphic: bool) -> None:
        super().__init__(out)
        self.x = x
        self.target = target
        self.batch_polymorphic = batch_polymorphic

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        x = env[self.x]
        shape = (x.shape[0],) + self.target[1:] if self.batch_polymorphic else self.target
        env[self.out] = x.reshape(shape)

    def describe(self) -> str:
        tail = ("N",) + self.target[1:] if self.batch_polymorphic else self.target
        return f"reshape {tail}"


class TransposeStep(Step):
    __slots__ = ("x", "axes")

    def __init__(self, out: int, x: int, axes: Tuple[int, ...]) -> None:
        super().__init__(out)
        self.x = x
        self.axes = tuple(axes)

    def run(self, env: List[Optional[np.ndarray]], ctx: ExecutionContext) -> None:
        env[self.out] = env[self.x].transpose(self.axes)

    def describe(self) -> str:
        return f"transpose {self.axes}"


# --------------------------------------------------------------------------- #
# The plan
# --------------------------------------------------------------------------- #
class ExecutionPlan:
    """An ordered sequence of kernel steps compiled from one model.

    ``run`` accepts a batch of shape ``(N,) + input_shape`` (or one sample of
    ``input_shape``) and returns the model's output.  Execution is pure
    numpy: no :class:`~repro.tensor.tensor.Tensor` objects, no autograd
    graph, reused arena buffers.

    The plan is an immutable compiled artifact: steps, baked weights and
    topology never change after construction.  All mutable execution state
    lives in an :class:`ExecutionContext`; ``run`` borrows the calling
    thread's implicit context unless a worker passes its own, so one plan
    instance serves any number of threads concurrently.
    """

    def __init__(
        self,
        steps: List[Step],
        num_slots: int,
        output_slot: int,
        input_shape: Tuple[int, ...],
        source: str,
        quantized: bool,
    ) -> None:
        self.steps = steps
        for index, step in enumerate(steps):
            step.index = index
        self.num_slots = num_slots
        self.output_slot = output_slot
        self.input_shape = tuple(input_shape)
        self.source = source
        self.quantized = quantized
        self._thread_contexts = threading.local()

    # -- execution state ------------------------------------------------- #
    def create_context(self) -> ExecutionContext:
        """A fresh buffer arena for this plan (one per worker thread)."""
        return ExecutionContext(self)

    def _implicit_context(self) -> ExecutionContext:
        """The calling thread's own lazily-created context."""
        ctx = getattr(self._thread_contexts, "ctx", None)
        if ctx is None:
            ctx = ExecutionContext(self)
            self._thread_contexts.ctx = ctx
        return ctx

    # -- execution ------------------------------------------------------- #
    def run(
        self,
        x: np.ndarray,
        *,
        ctx: Optional[ExecutionContext] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the plan on ``x``.

        Parameters
        ----------
        x:
            One sample of ``input_shape`` or a batch ``(N,) + input_shape``.
        ctx:
            Execution context (buffer arena) to borrow.  Defaults to a
            context owned by the calling thread, so plain ``run`` calls are
            already thread-safe; worker pools pass their own per-worker
            arena explicitly to avoid the thread-local lookup and to control
            buffer lifetime.
        out:
            Optional pre-allocated output buffer with the result's exact
            shape.  When given, the result is written into it (no allocation
            on the hot path) and ``out`` is returned.
        """
        x = np.asarray(x, dtype=np.float64)
        single = x.shape == self.input_shape
        if single:
            x = x[None]
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"plan compiled for per-sample shape {self.input_shape}, "
                f"got input of shape {x.shape}"
            )
        if ctx is None:
            ctx = self._implicit_context()
        elif ctx.plan is not self:
            raise ValueError("execution context belongs to a different plan")
        env = ctx.env
        env[0] = x
        for step in self.steps:
            step.run(env, ctx)
        result = env[self.output_slot]
        # Arena buffers are reused by the next call; hand back owned memory.
        # A single sample is sliced *before* the copy so only its own bytes
        # move (no copy of the batch-of-one array followed by a slice).
        source = result[0] if single else result
        if out is not None:
            if out.shape != source.shape:
                raise ValueError(
                    f"out buffer has shape {out.shape}, result has {source.shape}"
                )
            np.copyto(out, source)
            result = out
        else:
            result = np.array(source, copy=True)
        # Drop slot references so the context does not pin the caller's
        # input batch and non-scratch intermediates between calls (contexts
        # live as long as their worker; every slot is re-written before it
        # is read on the next run).
        env[:] = [None] * self.num_slots
        return result

    __call__ = run

    # -- introspection --------------------------------------------------- #
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """Human-readable step listing (one line per step)."""
        header = f"ExecutionPlan({self.source}, input={self.input_shape}, " \
                 f"{'quantised' if self.quantized else 'float'})"
        lines = [header] + [
            f"  {index:3d}: {step.describe()}" for index, step in enumerate(self.steps)
        ]
        return "\n".join(lines)

    def bits_by_layer(self) -> Dict[str, int]:
        """Stored weight bitwidth of every conv / linear step, keyed like
        :func:`~repro.hardware.profile.profile_model` layer names."""
        return {
            step.param_name: step.bits
            for step in self.steps
            if isinstance(step, (ConvStep, LinearStep))
        }

    def weight_bytes(self) -> int:
        """Bytes held by baked conv / linear weights (codes stay integer)."""
        return sum(
            step.weight_matrix.nbytes if isinstance(step, ConvStep) else step.weight.nbytes
            for step in self.steps
            if isinstance(step, (ConvStep, LinearStep))
        )


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
def compile_plan(
    model: Module,
    input_shape: Tuple[int, ...],
    *,
    fold_affine: bool = True,
    validate: bool = True,
) -> ExecutionPlan:
    """Compile ``model`` (eval-mode semantics) into a float execution plan.

    Parameters
    ----------
    model:
        The module to lower.  Its current parameters and buffers are baked
        into the plan (a snapshot; recompile after further training).
    input_shape:
        Per-sample input shape, e.g. ``(3, 32, 32)`` or ``(features,)``.
    fold_affine:
        Fuse per-channel affine chains (batch norm, bias) into the preceding
        conv / linear step.  Disable only for debugging.
    validate:
        Re-run the compiled plan on the probe input and check it against the
        traced module output.
    """
    return _compile(model, None, input_shape, fold_affine, validate)


def compile_quantized_plan(
    model: Module,
    export: QuantizedModelExport,
    input_shape: Tuple[int, ...],
    *,
    fold_affine: bool = True,
    validate: bool = True,
) -> ExecutionPlan:
    """Compile a plan that executes a quantised export directly.

    The export's values are loaded into ``model`` (which supplies the
    architecture) for the duration of the trace and the model's own state
    is restored afterwards; conv / linear weights that the export stores as
    integer codes are kept as centred integer matrices in the plan, with
    their affine scale applied at the kernel boundary as the step's output
    scale.  There is no model-wide dequantise round-trip and no autograd
    involvement at execution time.
    """
    with _COMPILE_LOCK:
        state = model.state_dict()
        try:
            load_into_model(export, model)
            return _compile(model, export, input_shape, fold_affine, validate)
        finally:
            model.load_state_dict(state)


def _compile(
    model: Module,
    export: Optional[QuantizedModelExport],
    input_shape: Tuple[int, ...],
    fold_affine: bool,
    validate: bool,
) -> ExecutionPlan:
    with _COMPILE_LOCK:
        return _compile_locked(model, export, input_shape, fold_affine, validate)


def _compile_locked(
    model: Module,
    export: Optional[QuantizedModelExport],
    input_shape: Tuple[int, ...],
    fold_affine: bool,
    validate: bool,
) -> ExecutionPlan:
    probe = np.random.default_rng(0).normal(size=(_PROBE_BATCH,) + tuple(input_shape))
    param_names = {id(param): name for name, param in model.named_parameters()}

    was_training = model.training
    model.eval()
    probe_tensor = Tensor(probe)
    try:
        with trace_ops() as records:
            traced_out = model(probe_tensor)
    finally:
        model.train(was_training)
    if not records:
        raise PlanCompileError("model forward recorded no operations")

    const_value: Dict[int, np.ndarray] = {}
    # Provenance of constants that are (transposes of) parameters, so the
    # quantised compiler can substitute integer codes for linear weights.
    param_origin: Dict[int, Tuple[str, bool]] = {}
    slot_of: Dict[int, int] = {id(probe_tensor): 0}
    steps: List[Step] = []
    num_slots = 1

    def as_ref(tensor: Tensor) -> Ref:
        tid = id(tensor)
        if tid in slot_of:
            return ("slot", slot_of[tid])
        if tid not in const_value:
            # First sight of a leaf: a parameter or an anonymous constant.
            if tid in param_names:
                param_origin[tid] = (param_names[tid], False)
            const_value[tid] = np.array(tensor.data, copy=True)
        return ("const", const_value[tid])

    def new_slot(tensor: Tensor) -> int:
        nonlocal num_slots
        slot = num_slots
        num_slots += 1
        slot_of[id(tensor)] = slot
        return slot

    for record in records:
        refs = [as_ref(parent) for parent in record.parents]
        if all(kind == "const" for kind, _ in refs):
            # Constant folding: the traced output *is* the folded value.
            # Copy it -- reshape/transpose outputs are views of live
            # parameters, and baked constants must be snapshots.
            const_value[id(record.out)] = np.array(record.out.data, copy=True)
            if record.op == "transpose" and id(record.parents[0]) in param_origin:
                name, transposed = param_origin[id(record.parents[0])]
                axes = tuple(record.ctx["axes"])
                if record.parents[0].data.ndim == 2 and axes == (1, 0):
                    param_origin[id(record.out)] = (name, not transposed)
            continue

        op = record.op
        if op == "conv2d":
            steps.append(_make_conv_step(record, refs, new_slot(record.out), param_names, export))
        elif op == "matmul":
            steps.append(_make_matmul_step(record, refs, new_slot(record.out), param_origin, export))
        elif op in ("max_pool2d", "avg_pool2d"):
            cls = MaxPoolStep if op == "max_pool2d" else AvgPoolStep
            steps.append(
                cls(new_slot(record.out), refs[0][1], record.ctx["kernel_size"], record.ctx["stride"])
            )
        elif op == "sum":
            steps.append(
                SumStep(new_slot(record.out), refs[0][1], record.ctx["axis"], record.ctx["keepdims"])
            )
        elif op == "max":
            steps.append(
                MaxReduceStep(
                    new_slot(record.out), refs[0][1], record.ctx["axis"], record.ctx["keepdims"]
                )
            )
        elif op == "reshape":
            in_shape = record.parents[0].data.shape
            out_shape = record.out.data.shape
            polymorphic = (
                len(in_shape) > 0
                and len(out_shape) > 0
                and in_shape[0] == _PROBE_BATCH
                and out_shape[0] == _PROBE_BATCH
            )
            steps.append(ReshapeStep(new_slot(record.out), refs[0][1], out_shape, polymorphic))
        elif op == "transpose":
            steps.append(TransposeStep(new_slot(record.out), refs[0][1], record.ctx["axes"]))
        elif op in _BINARY_UFUNCS or op in _UNARY_UFUNCS or op in ("relu", "clamp", "pow", "sigmoid"):
            steps.append(ElementwiseStep(new_slot(record.out), op, refs, record.ctx))
        else:
            raise PlanCompileError(
                f"cannot lower op {op!r} to a static plan (add a Step kind "
                f"to repro.runtime.plan to support it)"
            )

    output_id = id(traced_out)
    if output_id not in slot_of:
        raise PlanCompileError("model output does not depend on the input")
    output_slot = slot_of[output_id]

    if fold_affine:
        steps, output_slot = _fuse_affine_chains(steps, output_slot)

    plan = ExecutionPlan(
        steps=steps,
        num_slots=num_slots,
        output_slot=output_slot,
        input_shape=tuple(input_shape),
        source=type(model).__name__,
        quantized=export is not None,
    )
    if validate:
        produced = plan.run(probe)
        if not np.allclose(produced, traced_out.data, rtol=1e-5, atol=1e-7):
            worst = float(np.max(np.abs(produced - traced_out.data)))
            raise PlanCompileError(
                f"compiled plan diverges from the traced module (max abs err {worst:.3e})"
            )
    return plan


def _weight_codes(export: Optional[QuantizedModelExport], name: Optional[str]):
    if export is None or name is None:
        return None
    return export.quantized.get(name)


def _centred_codes(qt) -> np.ndarray:
    centred = qt.codes.astype(np.int64) - qt.qparams.zero_point
    dtype = _smallest_int_dtype(int(centred.min(initial=0)), int(centred.max(initial=0)))
    return centred.astype(dtype)


def _make_conv_step(record, refs, out_slot, param_names, export) -> ConvStep:
    x_kind, x_value = refs[0]
    if x_kind != "slot":
        raise PlanCompileError("conv2d over a constant input should have been folded")
    weight_tensor = record.parents[1]
    name = param_names.get(id(weight_tensor))
    if name is None:
        raise PlanCompileError("conv2d weight is not a model parameter")
    out_channels = weight_tensor.data.shape[0]
    bias = record.parents[2].data if len(record.parents) == 3 else None

    qt = _weight_codes(export, name)
    if qt is not None:
        weight_matrix = np.ascontiguousarray(_centred_codes(qt).reshape(out_channels, -1))
        out_scale: Optional[np.ndarray] = np.float64(qt.qparams.scale)
        bits = qt.bits
    else:
        weight_matrix = weight_tensor.data.reshape(out_channels, -1).copy()
        out_scale = None
        bits = 32
    out_shift = bias.reshape(1, -1, 1, 1).copy() if bias is not None else None
    return ConvStep(
        out=out_slot,
        x=x_value,
        weight_matrix=weight_matrix,
        kernel_size=tuple(weight_tensor.data.shape[2:]),
        stride=record.ctx["stride"],
        padding=record.ctx["padding"],
        out_scale=out_scale,
        out_shift=out_shift,
        bits=bits,
        param_name=name,
    )


def _make_matmul_step(record, refs, out_slot, param_origin, export) -> Step:
    (lhs_kind, lhs_value), (rhs_kind, rhs_value) = refs
    if lhs_kind == "slot" and rhs_kind == "const":
        origin = param_origin.get(id(record.parents[1]))
        qt = _weight_codes(export, origin[0]) if origin else None
        if qt is not None:
            name, transposed = origin
            centred = _centred_codes(qt)
            if transposed:
                centred = centred.T
            return LinearStep(
                out=out_slot,
                x=lhs_value,
                weight=np.ascontiguousarray(centred),
                out_scale=np.float64(qt.qparams.scale),
                out_shift=None,
                bits=qt.bits,
                param_name=name,
            )
        return LinearStep(
            out=out_slot,
            x=lhs_value,
            weight=np.ascontiguousarray(rhs_value),
            out_scale=None,
            out_shift=None,
            bits=32,
            param_name=origin[0] if origin else "<matmul>",
        )
    return MatmulStep(out_slot, refs[0], refs[1])


# --------------------------------------------------------------------------- #
# Affine fusion
# --------------------------------------------------------------------------- #
def _per_channel(const: np.ndarray, ndim: int, channels: int) -> Optional[np.ndarray]:
    """Return ``const`` broadcast to the per-channel shape, or ``None``."""
    target = (1, channels) + (1,) * (ndim - 2)
    try:
        return np.broadcast_to(np.asarray(const, dtype=np.float64), target)
    except ValueError:
        return None


def _fuse_affine_chains(steps: List[Step], output_slot: int) -> Tuple[List[Step], int]:
    """Fold per-channel affine elementwise chains into conv / linear steps.

    An eval-mode batch norm lowers to ``sub, div, mul, add`` against baked
    per-channel constants; a bias add lowers to one ``add``.  Whenever such
    an operation is the *sole* consumer of a conv / linear result, it is
    absorbed into that step's output scale and shift.
    """
    slot_consumers: Counter = Counter()
    for step in steps:
        for slot in _input_slots(step):
            slot_consumers[slot] += 1
    slot_consumers[output_slot] += 1

    steps = list(steps)
    changed = True
    while changed:
        changed = False
        for index, step in enumerate(steps):
            if not isinstance(step, (ConvStep, LinearStep)):
                continue
            if slot_consumers[step.out] != 1:
                continue
            consumer_index = _sole_consumer_index(steps, index, step.out)
            if consumer_index is None:
                continue
            consumer = steps[consumer_index]
            folded = _try_fold(step, consumer)
            if not folded:
                continue
            # The consumer's output is now produced by the fused step.
            slot_consumers[step.out] -= 1
            step.out = consumer.out
            del steps[consumer_index]
            changed = True
            break
    for step in steps:
        if isinstance(step, (ConvStep, LinearStep)):
            _bake_scale_into_weights(step)
    return steps, output_slot


def _bake_scale_into_weights(step) -> None:
    """Fold a float step's output scale into its weight matrix.

    ``(W * s) @ x`` equals ``s * (W @ x)`` per output channel, so float
    plans can drop the per-call scale pass entirely.  Integer (quantised)
    weight matrices keep the scale at the kernel boundary by design.
    """
    if step.out_scale is None or step.bits < 32:
        return
    if isinstance(step, ConvStep):
        channels = step.out_channels
        scale = np.broadcast_to(step.out_scale, (1, channels, 1, 1)).reshape(channels, 1)
        step.weight_matrix = step.weight_matrix * scale
    else:
        channels = step.weight.shape[1]
        scale = np.broadcast_to(step.out_scale, (1, channels))
        step.weight = step.weight * scale
    step.out_scale = None


def _input_slots(step: Step) -> List[int]:
    if isinstance(step, (ConvStep, MaxPoolStep, AvgPoolStep, SumStep, MaxReduceStep,
                         ReshapeStep, TransposeStep, LinearStep)):
        return [step.x]
    if isinstance(step, ElementwiseStep):
        return [value for kind, value in step.inputs if kind == "slot"]
    if isinstance(step, MatmulStep):
        return [value for kind, value in (step.lhs, step.rhs) if kind == "slot"]
    raise TypeError(f"unknown step type {type(step).__name__}")  # pragma: no cover


def _sole_consumer_index(steps: List[Step], producer_index: int, slot: int) -> Optional[int]:
    for index in range(producer_index + 1, len(steps)):
        if slot in _input_slots(steps[index]):
            return index
    return None


def _try_fold(step, consumer) -> bool:
    """Fold ``consumer`` (an eligible elementwise op) into ``step``'s affine."""
    if not isinstance(consumer, ElementwiseStep):
        return False
    op = consumer.op
    ndim = 4 if isinstance(step, ConvStep) else 2
    channels = step.out_channels if isinstance(step, ConvStep) else step.weight.shape[1]

    if op == "neg":
        _scale_affine(step, -1.0)
        return True
    if op not in ("add", "sub", "mul", "div"):
        return False
    kinds = [kind for kind, _ in consumer.inputs]
    if kinds.count("const") != 1:
        return False
    const_first = kinds[0] == "const"
    const = consumer.inputs[0][1] if const_first else consumer.inputs[1][1]
    channel_const = _per_channel(const, ndim, channels)
    if channel_const is None:
        return False

    if op == "add":
        step.out_shift = _add(step.out_shift, channel_const)
    elif op == "mul":
        _scale_affine(step, channel_const)
    elif op == "sub":
        if const_first:  # const - y
            _scale_affine(step, -1.0)
            step.out_shift = _add(step.out_shift, channel_const)
        else:  # y - const
            step.out_shift = _add(step.out_shift, -channel_const)
    elif op == "div":
        if const_first:  # const / y: not affine in y
            return False
        _scale_affine(step, 1.0 / channel_const)
    return True


def _add(current: Optional[np.ndarray], delta: np.ndarray) -> np.ndarray:
    return np.array(delta, dtype=np.float64) if current is None else current + delta


def _scale_affine(step, factor) -> None:
    step.out_scale = (
        np.asarray(factor, dtype=np.float64)
        if step.out_scale is None
        else step.out_scale * factor
    )
    if step.out_shift is not None:
        step.out_shift = step.out_shift * factor
