"""Static memory planning for compiled plans.

The executor's hot steps (convolutions, dense matmuls, elementwise chains)
write into scratch buffers.  Before this planner, every step owned one
private buffer in its :class:`~repro.runtime.executor.ExecutionContext`, so
a context's steady-state footprint was the *sum* of all step outputs even
though most of them are dead moments after they are produced.

The planner replaces that with classic compiler memory allocation over the
optimized graph:

1. **liveness analysis** -- each scratch-backed value is live from the node
   that defines it to the last node that reads it (the graph output lives
   to the end; ``reshape``/``transpose`` produce numpy *views*, so they
   extend the lifetime of their input's backing buffer);
2. **slot-reuse coloring** -- a greedy interval-coloring assigns values
   whose live ranges never overlap (endpoints inclusive, so a step never
   writes the buffer it is reading) to the same buffer color;
3. **arena layout** -- each context preallocates one contiguous byte arena
   sized from the colors for its batch size; steps take 64-byte-aligned
   views into it instead of allocating.

:class:`PlanMemoryStats` reports the planned arena bytes against the
per-step scratch baseline, which is how the benchmarks assert the planner
actually shrinks steady-state serving memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.ir import ELEMENTWISE_OPS, VIEW_OPS, Graph, Node, matmul_linear_info

#: Arena view alignment (bytes).  Generous for any SIMD the BLAS uses.
_ALIGN = 64


def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _scratch_sizes(node: Node, probe_batch: int) -> Tuple[int, int]:
    """(per_sample_bytes, fixed_bytes) of the node's scratch buffer.

    Exactly one of the two is non-zero: batch-polymorphic values scale with
    the live batch, everything else is a fixed allocation.
    """
    value = node.output
    if value.batch_poly:
        return value.nbytes() // probe_batch, 0
    return 0, value.nbytes()


def node_uses_arena(node: Node, producers: Dict[int, Node]) -> bool:
    """Whether the step lowered from ``node`` writes into the shared arena.

    Mirrors the executor's lowering: convolutions, elementwise steps and
    fused chains always use scratch; a matmul does when it lowers to the
    dense :class:`~repro.runtime.executor.LinearStep` fast path (2-D
    float64 input against a baked weight).  Pooling, reductions, views and
    general matmuls allocate (or alias) outside the arena.
    """
    if node.op == "conv2d":
        return True
    if node.op in ELEMENTWISE_OPS or node.op == "fused_elementwise":
        return True
    if node.op == "matmul":
        info = matmul_linear_info(node, producers)
        return (
            info is not None
            and len(node.inputs[0].shape) == 2
            and np.dtype(node.output.dtype) == np.float64
        )
    return False


@dataclass(frozen=True)
class PlanMemoryStats:
    """Planned-vs-unplanned scratch accounting of one compiled plan.

    ``scratch_*`` fields describe the per-step baseline (one private buffer
    per scratch-writing step, the pre-planner behaviour); ``arena_*``
    fields describe the colored arena.  Byte totals split into a
    batch-scaled component and a fixed component; use :meth:`scratch_bytes`
    / :meth:`arena_bytes` for the totals at a concrete batch size.

    Batch-scaled components never drop below their traced (probe-batch)
    size: batch-polymorphism is detected by the leading dimension equalling
    the probe batch, so a fixed-shape value that merely *looks* like a
    batch (leading dim == probe batch) still gets its full allocation at
    every runtime batch size.
    """

    num_values: int
    num_buffers: int
    scratch_per_sample: int
    scratch_fixed: int
    arena_per_sample: int
    arena_fixed: int
    probe_batch: int = 1

    def _effective_batch(self, batch_size: int) -> int:
        return max(int(batch_size), self.probe_batch)

    def scratch_bytes(self, batch_size: int = 1) -> int:
        """Per-step scratch baseline at ``batch_size`` (no planning)."""
        return self.scratch_per_sample * self._effective_batch(batch_size) + self.scratch_fixed

    def arena_bytes(self, batch_size: int = 1) -> int:
        """Planned arena footprint at ``batch_size`` (aligned layout)."""
        return self.arena_per_sample * self._effective_batch(batch_size) + self.arena_fixed

    def describe(self, batch_size: int = 1) -> str:
        planned = self.arena_bytes(batch_size)
        baseline = self.scratch_bytes(batch_size)
        saved = 100.0 * (1.0 - planned / baseline) if baseline else 0.0
        return (
            f"memory: {self.num_values} scratch values -> {self.num_buffers} "
            f"buffers; arena {planned / 1024:.1f} KiB vs {baseline / 1024:.1f} "
            f"KiB unplanned at batch {batch_size} ({saved:.0f}% saved)"
        )


@dataclass
class MemoryPlan:
    """Buffer coloring of one graph: which step writes into which slot.

    ``color_of_node[i]`` is the arena color of the step lowered from node
    ``i`` (absent: the step does not use the arena).  ``intervals`` keeps
    the live range ``(def_index, last_use_index)`` of every colored value
    for introspection and the planner's own invariant tests.
    """

    color_of_node: Dict[int, int]
    #: Per color: (per_sample_bytes, fixed_bytes); the color's size at
    #: batch N is ``max(per_sample * max(N, probe_batch), fixed)``.
    color_sizes: List[Tuple[int, int]]
    intervals: Dict[int, Tuple[int, int]]
    stats: PlanMemoryStats
    #: The traced batch size.  Batch-scaled buffers are never laid out
    #: below ``per_sample * probe_batch``: polymorphism detection keys on
    #: the leading dim equalling the probe batch, so a fixed-shape value
    #: misdetected as batch-scaled is still fully covered at any runtime
    #: batch (a true batch value merely over-allocates below the probe).
    probe_batch: int = 1

    @property
    def num_buffers(self) -> int:
        return len(self.color_sizes)

    def color_bytes(self, color: int, batch_size: int) -> int:
        per_sample, fixed = self.color_sizes[color]
        return max(per_sample * max(int(batch_size), self.probe_batch), fixed)

    def layout(self, batch_size: int) -> Tuple[List[int], int]:
        """Aligned byte offsets of every color plus the arena total."""
        offsets: List[int] = []
        cursor = 0
        for color in range(len(self.color_sizes)):
            offsets.append(cursor)
            cursor += _align(self.color_bytes(color, batch_size))
        return offsets, cursor


def plan_memory(graph: Graph) -> MemoryPlan:
    """Liveness analysis + greedy interval coloring over ``graph``."""
    producers = graph.producers()
    nodes = graph.nodes
    horizon = len(nodes)

    # Alias roots: a view's output shares its input's backing buffer, so
    # uses of the view pin the root value.
    root_of: Dict[int, int] = {}

    def resolve_root(vid: int) -> int:
        return root_of.get(vid, vid)

    last_use: Dict[int, int] = {}
    for index, node in enumerate(nodes):
        for value in node.input_values():
            if value.kind == "node":
                last_use[resolve_root(value.vid)] = index
        out = node.output
        if node.op in VIEW_OPS and node.inputs and node.inputs[0].kind == "node":
            root_of[out.vid] = resolve_root(node.inputs[0].vid)
    # The graph output is read after the last step (copied out of the env).
    last_use[resolve_root(graph.output.vid)] = horizon

    color_of_node: Dict[int, int] = {}
    color_sizes: List[Tuple[int, int]] = []
    color_free_at: List[int] = []  # last index at which the color is busy
    intervals: Dict[int, Tuple[int, int]] = {}
    scratch_per_sample = 0
    scratch_fixed = 0
    num_values = 0

    for index, node in enumerate(nodes):
        if not node_uses_arena(node, producers):
            continue
        vid = node.output.vid
        start = index
        end = last_use.get(resolve_root(vid), index)
        per_sample, fixed = _scratch_sizes(node, graph.probe_batch)
        scratch_per_sample += per_sample
        scratch_fixed += fixed
        num_values += 1
        chosen: Optional[int] = None
        for color in range(len(color_sizes)):
            # Strict inequality: a color whose last value is read at step
            # ``start`` must not be overwritten by step ``start``.
            if color_free_at[color] < start:
                chosen = color
                break
        if chosen is None:
            chosen = len(color_sizes)
            color_sizes.append((0, 0))
            color_free_at.append(-1)
        old_ps, old_fixed = color_sizes[chosen]
        color_sizes[chosen] = (max(old_ps, per_sample), max(old_fixed, fixed))
        color_free_at[chosen] = max(color_free_at[chosen], end)
        color_of_node[index] = chosen
        intervals[index] = (start, end)

    arena_per_sample = sum(_align(per_sample) for per_sample, _ in color_sizes)
    # Alignment padding of fixed-size colors lands in the fixed component;
    # for batch-scaled colors it is approximated per-sample (exact layout
    # comes from ``MemoryPlan.layout``, stats are for reporting).
    arena_fixed = sum(_align(fixed) for _, fixed in color_sizes if fixed)
    stats = PlanMemoryStats(
        num_values=num_values,
        num_buffers=len(color_sizes),
        scratch_per_sample=scratch_per_sample,
        scratch_fixed=scratch_fixed,
        arena_per_sample=arena_per_sample,
        arena_fixed=arena_fixed,
        probe_batch=graph.probe_batch,
    )
    return MemoryPlan(
        color_of_node=color_of_node,
        color_sizes=color_sizes,
        intervals=intervals,
        stats=stats,
        probe_batch=graph.probe_batch,
    )
