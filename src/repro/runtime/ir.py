"""Graph IR for the inference runtime.

The compiler front-end traces one forward pass of a model
(:func:`repro.tensor.trace_ops`) and translates the flat record list into an
explicit graph of :class:`Node` objects over SSA :class:`Value` objects.
Every downstream stage operates on this IR:

* :mod:`repro.runtime.passes` rewrites the graph (constant folding, affine
  fusion into conv/linear producers, elementwise-chain fusion, CSE, DCE);
* :mod:`repro.runtime.memory` runs liveness analysis over the final graph
  and colors values into a shared buffer arena;
* :mod:`repro.runtime.executor` lowers each node to one kernel step.

Values carry their traced shape, dtype and probe activation.  The traced
arrays make the IR self-evaluating: a pass that proves a node's inputs
constant can materialise the node's value without re-running any kernel,
because the traced forward already computed it -- and computed it with
exactly the arithmetic the runtime would use, which is what keeps optimised
and unoptimised plans byte-identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Binary elementwise operations the runtime lowers to numpy ufuncs.
BINARY_ELEMENTWISE = ("add", "sub", "mul", "div")
#: Unary elementwise operations (ufuncs plus the kernel-backed activations).
UNARY_ELEMENTWISE = (
    "neg", "exp", "log", "sqrt", "abs", "tanh", "relu", "clamp", "pow", "sigmoid"
)
#: All elementwise operations, eligible for chain fusion.
ELEMENTWISE_OPS = frozenset(BINARY_ELEMENTWISE) | frozenset(UNARY_ELEMENTWISE)

#: Operations whose output is a numpy view of their input: they extend the
#: lifetime of the input's backing buffer (see :mod:`repro.runtime.memory`).
VIEW_OPS = frozenset({"reshape", "transpose"})


class PlanCompileError(RuntimeError):
    """Raised when a model cannot be lowered to a static plan."""


class _Chain:
    """Sentinel operand: the running value of a fused elementwise chain."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<chain>"


#: The chain sentinel used inside :class:`ElemOp` operand tuples.
CHAIN = _Chain()


@dataclass(eq=False)
class Value:
    """One SSA value: a graph input, a baked constant, or a node output.

    Attributes
    ----------
    vid:
        Unique id within the graph.
    kind:
        ``"input"`` (the probe input), ``"const"`` (parameters, buffers and
        folded subtrees -- ``data`` holds a snapshot copy), or ``"node"``
        (produced by a :class:`Node` at run time).
    shape / dtype:
        Static type of the value, read off the traced probe forward.
    data:
        Constant payload (``kind == "const"`` only); always an owned copy,
        never a view of live model parameters.
    traced:
        The probe-forward activation of this value (any kind).  Dropped
        with the graph after lowering; passes use it to fold constants.
    origin:
        ``(param_name, transposed)`` provenance for constants that are a
        model parameter or a 2-D transpose of one, so the quantised
        lowering can substitute integer codes.
    batch_poly:
        The leading dimension is the probe batch: at run time it scales
        with the live batch size.
    """

    vid: int
    kind: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    data: Optional[np.ndarray] = None
    traced: Optional[np.ndarray] = None
    origin: Optional[Tuple[str, bool]] = None
    batch_poly: bool = False

    def nbytes(self) -> int:
        """Static size of the value at the traced (probe) batch."""
        size = int(np.prod(self.shape)) if self.shape else 1
        return size * np.dtype(self.dtype).itemsize


@dataclass
class ElemOp:
    """One fused elementwise micro-operation.

    ``inputs`` holds :class:`Value` operands and/or the :data:`CHAIN`
    sentinel standing for the running chain value (the producer's raw
    output for affine fusion, the previous micro-op's result for chain
    fusion).  Execution replays the micro-ops in recorded order with the
    same ufuncs the standalone steps would have used, which keeps fusion
    byte-identical.
    """

    op: str
    inputs: Tuple[object, ...]
    ctx: Dict[str, object] = field(default_factory=dict)

    def value_inputs(self) -> List[Value]:
        return [operand for operand in self.inputs if isinstance(operand, Value)]


@dataclass
class Node:
    """One traced operation: reads ``inputs``, produces ``output``.

    ``post`` holds elementwise micro-ops absorbed into this node by the
    affine-fusion pass (applied in order to the node's raw result);
    ``elem_ops`` is the micro-op sequence of a ``"fused_elementwise"``
    node created by the chain-fusion pass.
    """

    op: str
    inputs: List[Value]
    output: Value
    attrs: Dict[str, object] = field(default_factory=dict)
    post: List[ElemOp] = field(default_factory=list)
    elem_ops: List[ElemOp] = field(default_factory=list)

    def input_values(self) -> List[Value]:
        """Every value this node reads, including fused micro-op operands."""
        values = list(self.inputs)
        for elem in self.post:
            values.extend(elem.value_inputs())
        for elem in self.elem_ops:
            values.extend(elem.value_inputs())
        return values

    def describe(self) -> str:  # pragma: no cover - debugging aid
        extra = f" +{len(self.post)}post" if self.post else ""
        if self.op == "fused_elementwise":
            return "fused[" + "->".join(e.op for e in self.elem_ops) + "]"
        return f"{self.op}{extra}"


@dataclass
class Graph:
    """An ordered (topological) operation graph traced from one model."""

    input: Value
    nodes: List[Node]
    output: Value
    probe_batch: int
    source: str = ""

    def producers(self) -> Dict[int, Node]:
        """Map each node-produced value id to its producing node."""
        return {node.output.vid: node for node in self.nodes}

    def consumers(self) -> Dict[int, List[Node]]:
        """Map each value id to the nodes that read it (fused operands too)."""
        table: Dict[int, List[Node]] = {}
        for node in self.nodes:
            for value in node.input_values():
                table.setdefault(value.vid, []).append(node)
        return table

    def op_histogram(self) -> Counter:
        """Node count per operation name."""
        return Counter(node.op for node in self.nodes)

    def num_nodes(self) -> int:
        return len(self.nodes)


def build_graph(
    records: Sequence,
    probe_tensor,
    traced_out,
    param_names: Dict[int, str],
    source: str = "",
) -> Graph:
    """Translate one :func:`~repro.tensor.trace_ops` record list into a Graph.

    Every record becomes a :class:`Node`; tensors first seen as operands
    become ``"const"`` values (model parameters get their ``origin``
    stamped, and the payload is always a snapshot copy so later training
    cannot reach a compiled plan).  No folding or optimisation happens
    here -- the builder's output is the unoptimised reference graph.
    """
    if not records:
        raise PlanCompileError("model forward recorded no operations")

    probe = probe_tensor.data
    counter = iter(range(1, 1 << 30))
    values: Dict[int, Value] = {}
    input_value = Value(
        vid=0,
        kind="input",
        shape=tuple(probe.shape),
        dtype=np.dtype(probe.dtype),
        traced=probe,
        batch_poly=True,
    )
    values[id(probe_tensor)] = input_value
    probe_batch = int(probe.shape[0])

    def value_of(tensor) -> Value:
        known = values.get(id(tensor))
        if known is not None:
            return known
        data = np.array(tensor.data, copy=True)
        name = param_names.get(id(tensor))
        const = Value(
            vid=next(counter),
            kind="const",
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype),
            data=data,
            traced=data,
            origin=(name, False) if name is not None else None,
        )
        values[id(tensor)] = const
        return const

    nodes: List[Node] = []
    for record in records:
        inputs = [value_of(parent) for parent in record.parents]
        out_data = record.out.data
        out = Value(
            vid=next(counter),
            kind="node",
            shape=tuple(out_data.shape),
            dtype=np.dtype(out_data.dtype),
            traced=out_data,
            batch_poly=bool(out_data.ndim > 0 and out_data.shape[0] == probe_batch),
        )
        values[id(record.out)] = out
        nodes.append(Node(op=record.op, inputs=inputs, output=out, attrs=dict(record.ctx)))

    output_value = values.get(id(traced_out))
    if output_value is None:
        raise PlanCompileError("model output does not depend on the input")
    return Graph(
        input=input_value,
        nodes=nodes,
        output=output_value,
        probe_batch=probe_batch,
        source=source,
    )


def matmul_linear_info(node: Node, producers: Dict[int, Node]) -> Optional[Tuple[Value, bool]]:
    """Detect a matmul that lowers to a dense linear layer.

    Returns ``(weight_value, pre_transposed)`` when ``node`` multiplies a
    runtime value by a baked weight: either the rhs is itself a constant
    (``pre_transposed=False``), or the rhs is produced by a 2-D transpose
    node over a constant (``pre_transposed=True`` -- the lowering applies
    the transpose to the baked matrix, and the dangling transpose node is
    swept by DCE when enabled).  Returns ``None`` for general matmuls.
    """
    if len(node.inputs) != 2:
        return None
    lhs, rhs = node.inputs
    if lhs.kind == "const":
        return None
    if rhs.kind == "const":
        return rhs, False
    producer = producers.get(rhs.vid)
    if (
        producer is not None
        and producer.op == "transpose"
        and len(producer.inputs) == 1
        and producer.inputs[0].kind == "const"
        and len(producer.inputs[0].shape) == 2
        and tuple(producer.attrs.get("axes", ())) == (1, 0)
        and not producer.post
    ):
        return producer.inputs[0], True
    return None
