"""Optimizing passes over the runtime graph IR.

A *pass* is a named graph-to-graph rewrite.  The :class:`PassManager` runs a
configurable sequence of them and records a :class:`PipelineReport` (node
counts and a one-line detail per pass) that compiled plans expose through
``describe_pipeline()``.

Every pass is **byte-exact**: it may remove, merge or fuse nodes, but the
final executed arithmetic -- the ufunc sequence and its operands -- is
unchanged.  Constant folding reuses the traced probe activations (computed
by the very kernels the runtime replays), and the fusion passes carry the
absorbed operations as ordered :class:`~repro.runtime.ir.ElemOp` micro-ops
that the executor replays in place rather than collapsing them into a
rescaled weight.  Disabling any subset of passes therefore changes plan
*shape* (steps, buffers), never plan *output*; the test-suite asserts
byte-identical logits across every single-pass-disabled configuration.

Available passes (in default order):

``fold_constants``
    Replace every node whose inputs are all constants with a baked constant
    (the batch-norm ``sqrt(var + eps)`` chain, parameter transposes, ...),
    propagating parameter provenance through 2-D transposes so the
    quantised lowering still finds its integer codes.
``cse``
    Common-subexpression elimination: merge pure nodes with identical
    operation, operands and attributes.
``fuse_affine``
    Absorb per-channel affine elementwise chains (eval-mode batch norm,
    bias adds, negation) and unary activation epilogues (ReLU, clamp,
    sigmoid, ...) into the producing conv / matmul node whenever the
    producer's result has exactly one consumer -- the classic
    conv+BN+activation kernel fusion, replayed in place.
``fuse_elementwise``
    Fuse remaining single-consumer elementwise chains of equal shape into
    one ``fused_elementwise`` node executing in a single arena buffer.
``dce``
    Dead-node elimination: drop nodes whose results are never read (e.g.
    the dangling parameter transpose left by the linear-layer lowering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.ir import (
    CHAIN,
    ELEMENTWISE_OPS,
    ElemOp,
    Graph,
    Node,
    UNARY_ELEMENTWISE,
    Value,
)

#: Elementwise operations the affine-fusion pass absorbs into producers:
#: the affine family (eval-mode batch norm, bias adds, negation) plus the
#: unary activations -- a sole-consumer ReLU / clamp / sigmoid after a
#: conv or matmul becomes an in-place kernel epilogue, the classic
#: conv+BN+activation fusion.
AFFINE_OPS = frozenset({"add", "sub", "mul", "div"}) | frozenset(UNARY_ELEMENTWISE)

#: Producers that accept absorbed post-ops (lowered to kernel steps with an
#: in-place epilogue).
_AFFINE_PRODUCERS = frozenset({"conv2d", "matmul"})


# --------------------------------------------------------------------------- #
# Individual passes.  Each mutates the graph and returns a one-line detail.
# --------------------------------------------------------------------------- #
def fold_constants(graph: Graph) -> str:
    """Bake every node whose inputs are all constants into a constant."""
    folded = 0
    kept: List[Node] = []
    for node in graph.nodes:
        foldable = (
            node.inputs
            and not node.post
            and not node.elem_ops
            and all(value.kind == "const" for value in node.inputs)
        )
        if not foldable:
            kept.append(node)
            continue
        out = node.output
        out.kind = "const"
        # Copy: traced outputs of reshape/transpose are views of live
        # parameters, and baked constants must be snapshots.
        out.data = np.array(out.traced, copy=True)
        out.traced = out.data
        out.batch_poly = False
        if node.op == "transpose":
            source = node.inputs[0]
            axes = tuple(node.attrs.get("axes", ()))
            if source.origin is not None and len(source.shape) == 2 and axes == (1, 0):
                name, transposed = source.origin
                out.origin = (name, not transposed)
        folded += 1
    graph.nodes = kept
    return f"folded {folded} constant nodes"


def _freeze(value) -> object:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, np.ndarray):  # pragma: no cover - attrs are scalars/tuples
        return (value.shape, value.tobytes())
    return value


def common_subexpression_elimination(graph: Graph) -> str:
    """Merge pure nodes with identical op, operand ids and attributes."""
    seen: Dict[object, Node] = {}
    replace: Dict[int, Value] = {}
    kept: List[Node] = []
    merged = 0
    for node in graph.nodes:
        node.inputs = [replace.get(value.vid, value) for value in node.inputs]
        for elem in list(node.post) + list(node.elem_ops):
            elem.inputs = tuple(
                replace.get(op.vid, op) if isinstance(op, Value) else op
                for op in elem.inputs
            )
        if node.post or node.elem_ops:
            # Fused nodes are not deduplicated (their micro-op identity is
            # not worth canonicalising; CSE runs before fusion by default).
            kept.append(node)
            continue
        key = (node.op, tuple(value.vid for value in node.inputs), _freeze(node.attrs))
        prior = seen.get(key)
        if prior is not None:
            replace[node.output.vid] = prior.output
            merged += 1
            continue
        seen[key] = node
        kept.append(node)
    graph.nodes = kept
    graph.output = replace.get(graph.output.vid, graph.output)
    return f"merged {merged} duplicate nodes"


def fuse_affine(graph: Graph) -> str:
    """Absorb sole-consumer affine ops and activations into conv/matmul nodes."""
    fused = 0
    changed = True
    while changed:
        changed = False
        consumers = graph.consumers()
        def_pos = {node.output.vid: index for index, node in enumerate(graph.nodes)}
        for index, node in enumerate(graph.nodes):
            if node.op not in _AFFINE_PRODUCERS:
                continue
            out = node.output
            if out.vid == graph.output.vid:
                continue
            readers = consumers.get(out.vid, [])
            if len(readers) != 1:
                continue
            consumer = readers[0]
            if consumer.op not in AFFINE_OPS or consumer.post or consumer.elem_ops:
                continue
            if consumer.output.shape != out.shape:
                continue
            # The absorbed op executes at the producer's position: any
            # runtime operand must already be defined there.
            operands_ready = all(
                value.kind != "node" or def_pos.get(value.vid, 1 << 30) < index
                for value in consumer.inputs
                if value.vid != out.vid
            )
            if not operands_ready:
                continue
            node.post.append(
                ElemOp(
                    op=consumer.op,
                    inputs=tuple(
                        CHAIN if value.vid == out.vid else value
                        for value in consumer.inputs
                    ),
                    ctx=dict(consumer.attrs),
                )
            )
            node.output = consumer.output
            graph.nodes.remove(consumer)
            fused += 1
            changed = True
            break
    return f"absorbed {fused} affine ops into producers"


def fuse_elementwise(graph: Graph) -> str:
    """Fuse single-consumer elementwise chains into one node per chain.

    A chain is a maximal run ``e1 -> e2 -> ... -> ek`` of elementwise nodes
    where every intermediate result has exactly one consumer (the next
    link), is not the graph output, and every link produces the same shape
    -- so the whole chain executes in one arena buffer, each micro-op
    writing in place over the previous result.
    """
    consumers = graph.consumers()
    in_chain: set = set()
    chains: List[List[Node]] = []
    for node in graph.nodes:
        if id(node) in in_chain or node.op not in ELEMENTWISE_OPS:
            continue
        if node.post or node.elem_ops:
            continue
        chain = [node]
        current = node
        while True:
            if current.output.vid == graph.output.vid:
                break
            readers = consumers.get(current.output.vid, [])
            if len(readers) != 1:
                break
            nxt = readers[0]
            if (
                id(nxt) in in_chain
                or nxt.op not in ELEMENTWISE_OPS
                or nxt.post
                or nxt.elem_ops
                or nxt.output.shape != node.output.shape
            ):
                break
            chain.append(nxt)
            current = nxt
        if len(chain) >= 2:
            in_chain.update(id(member) for member in chain)
            chains.append(chain)

    for chain in chains:
        elem_ops: List[ElemOp] = []
        external: List[Value] = []
        previous_vid: Optional[int] = None
        for member in chain:
            elem_ops.append(
                ElemOp(
                    op=member.op,
                    inputs=tuple(
                        CHAIN if (previous_vid is not None and value.vid == previous_vid)
                        else value
                        for value in member.inputs
                    ),
                    ctx=dict(member.attrs),
                )
            )
            external.extend(
                value
                for value in member.inputs
                if not (previous_vid is not None and value.vid == previous_vid)
            )
            previous_vid = member.output.vid
        fused_node = Node(
            op="fused_elementwise",
            inputs=external,
            output=chain[-1].output,
            elem_ops=elem_ops,
        )
        # The fused node executes where the chain ended, so every external
        # operand of every link is already defined.
        position = graph.nodes.index(chain[-1])
        graph.nodes[position] = fused_node
        for member in chain[:-1]:
            graph.nodes.remove(member)
    total_ops = sum(len(chain) for chain in chains)
    return f"fused {len(chains)} chains ({total_ops} elementwise ops)"


def dead_node_elimination(graph: Graph) -> str:
    """Drop nodes whose results are never read (backwards reachability)."""
    live = {graph.output.vid}
    kept_reversed: List[Node] = []
    removed = 0
    for node in reversed(graph.nodes):
        if node.output.vid in live:
            kept_reversed.append(node)
            for value in node.input_values():
                live.add(value.vid)
        else:
            removed += 1
    graph.nodes = kept_reversed[::-1]
    return f"removed {removed} dead nodes"


# --------------------------------------------------------------------------- #
# Pass manager
# --------------------------------------------------------------------------- #
PASS_REGISTRY: Dict[str, Callable[[Graph], str]] = {
    "fold_constants": fold_constants,
    "cse": common_subexpression_elimination,
    "fuse_affine": fuse_affine,
    "fuse_elementwise": fuse_elementwise,
    "dce": dead_node_elimination,
}

#: Default pipeline: fold first (so fusion sees baked per-channel
#: constants), dedupe before fusing, sweep dead nodes last.
DEFAULT_PASSES: Tuple[str, ...] = (
    "fold_constants",
    "cse",
    "fuse_affine",
    "fuse_elementwise",
    "dce",
)


def available_passes() -> Tuple[str, ...]:
    """Names accepted by :class:`PassManager` / ``compile_plan(passes=...)``."""
    return tuple(PASS_REGISTRY)


def resolve_passes(
    optimize: bool = True,
    passes: Optional[Sequence[str]] = None,
    fold_affine: bool = True,
) -> Tuple[str, ...]:
    """Normalise the compile knobs into a concrete pass tuple.

    ``optimize=False`` disables the whole pipeline (the unoptimised
    reference interpreter).  An explicit ``passes`` sequence wins over the
    default; ``fold_affine=False`` (the historical debugging knob) drops
    ``fuse_affine`` from whichever pipeline was selected.  The resolved
    tuple is part of the :class:`~repro.runtime.cache.PlanCache` key.
    """
    if not optimize:
        return ()
    selected = DEFAULT_PASSES if passes is None else tuple(passes)
    unknown = [name for name in selected if name not in PASS_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown pass(es) {unknown!r}; available: {sorted(PASS_REGISTRY)}"
        )
    if not fold_affine:
        selected = tuple(name for name in selected if name != "fuse_affine")
    return selected


@dataclass(frozen=True)
class PassRecord:
    """Outcome of one pass: node counts around it plus a one-line detail."""

    name: str
    nodes_before: int
    nodes_after: int
    detail: str


@dataclass
class PipelineReport:
    """Pass-by-pass account of one compilation, attached to the plan."""

    passes: List[PassRecord]
    initial_nodes: int
    final_nodes: int

    def describe(self) -> str:
        lines = [f"trace: {self.initial_nodes} nodes"]
        for record in self.passes:
            lines.append(
                f"pass {record.name}: {record.nodes_before} -> "
                f"{record.nodes_after} nodes ({record.detail})"
            )
        return "\n".join(lines)


class PassManager:
    """Runs a named, individually-toggleable pass sequence over a graph."""

    def __init__(self, passes: Sequence[str] = DEFAULT_PASSES) -> None:
        unknown = [name for name in passes if name not in PASS_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown pass(es) {unknown!r}; available: {sorted(PASS_REGISTRY)}"
            )
        self.passes: Tuple[str, ...] = tuple(passes)

    def run(self, graph: Graph) -> PipelineReport:
        """Run every configured pass in order, mutating ``graph``."""
        records: List[PassRecord] = []
        initial = graph.num_nodes()
        for name in self.passes:
            before = graph.num_nodes()
            detail = PASS_REGISTRY[name](graph)
            records.append(
                PassRecord(
                    name=name,
                    nodes_before=before,
                    nodes_after=graph.num_nodes(),
                    detail=detail,
                )
            )
        return PipelineReport(
            passes=records, initial_nodes=initial, final_nodes=graph.num_nodes()
        )
