"""Optimizing passes over the runtime graph IR.

A *pass* is a named graph-to-graph rewrite.  The :class:`PassManager` runs a
configurable sequence of them and records a :class:`PipelineReport` (node
counts and a one-line detail per pass) that compiled plans expose through
``describe_pipeline()``.

Every pass is **byte-exact**: it may remove, merge or fuse nodes, but the
final executed arithmetic -- the ufunc sequence and its operands -- is
unchanged.  Constant folding reuses the traced probe activations (computed
by the very kernels the runtime replays), and the fusion passes carry the
absorbed operations as ordered :class:`~repro.runtime.ir.ElemOp` micro-ops
that the executor replays in place rather than collapsing them into a
rescaled weight.  Disabling any subset of passes therefore changes plan
*shape* (steps, buffers), never plan *output*; the test-suite asserts
byte-identical logits across every single-pass-disabled configuration.

Available passes (in default order):

``fold_constants``
    Replace every node whose inputs are all constants with a baked constant
    (the batch-norm ``sqrt(var + eps)`` chain, parameter transposes, ...),
    propagating parameter provenance through 2-D transposes so the
    quantised lowering still finds its integer codes.
``cse``
    Common-subexpression elimination: merge pure nodes with identical
    operation, operands and attributes.
``fuse_affine``
    Absorb per-channel affine elementwise chains (eval-mode batch norm,
    bias adds, negation) and unary activation epilogues (ReLU, clamp,
    sigmoid, ...) into the producing conv / matmul node whenever the
    producer's result has exactly one consumer -- the classic
    conv+BN+activation kernel fusion, replayed in place.
``fuse_elementwise``
    Fuse remaining single-consumer elementwise chains of equal shape into
    one ``fused_elementwise`` node executing in a single arena buffer.
``dce``
    Dead-node elimination: drop nodes whose results are never read (e.g.
    the dangling parameter transpose left by the linear-layer lowering).
``select_kernels``
    Annotate every conv / linear / pool node with the kernel variant the
    executor should lower it to (``attrs["kernel_variant"]``), chosen from
    the byte-exact implementations in :mod:`repro.runtime.variants` --
    autotuned when a :mod:`~repro.runtime.tuning` tuner is in scope,
    ranked heuristic otherwise.  Runs after the fusion passes (so the
    final kernel call sites are known) and before memory planning (which
    is unaffected: every variant writes the same scratch shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import variants as kernel_variants
from repro.runtime.ir import (
    CHAIN,
    ELEMENTWISE_OPS,
    ElemOp,
    Graph,
    Node,
    UNARY_ELEMENTWISE,
    Value,
    matmul_linear_info,
)
from repro.runtime.tuning import active_tuning
from repro.runtime.variants import KernelDesc

#: Elementwise operations the affine-fusion pass absorbs into producers:
#: the affine family (eval-mode batch norm, bias adds, negation) plus the
#: unary activations -- a sole-consumer ReLU / clamp / sigmoid after a
#: conv or matmul becomes an in-place kernel epilogue, the classic
#: conv+BN+activation fusion.
AFFINE_OPS = frozenset({"add", "sub", "mul", "div"}) | frozenset(UNARY_ELEMENTWISE)

#: Producers that accept absorbed post-ops (lowered to kernel steps with an
#: in-place epilogue).
_AFFINE_PRODUCERS = frozenset({"conv2d", "matmul"})


# --------------------------------------------------------------------------- #
# Individual passes.  Each mutates the graph and returns a one-line detail.
# --------------------------------------------------------------------------- #
def fold_constants(graph: Graph) -> str:
    """Bake every node whose inputs are all constants into a constant."""
    folded = 0
    kept: List[Node] = []
    for node in graph.nodes:
        foldable = (
            node.inputs
            and not node.post
            and not node.elem_ops
            and all(value.kind == "const" for value in node.inputs)
        )
        if not foldable:
            kept.append(node)
            continue
        out = node.output
        out.kind = "const"
        # Copy: traced outputs of reshape/transpose are views of live
        # parameters, and baked constants must be snapshots.
        out.data = np.array(out.traced, copy=True)
        out.traced = out.data
        out.batch_poly = False
        if node.op == "transpose":
            source = node.inputs[0]
            axes = tuple(node.attrs.get("axes", ()))
            if source.origin is not None and len(source.shape) == 2 and axes == (1, 0):
                name, transposed = source.origin
                out.origin = (name, not transposed)
        folded += 1
    graph.nodes = kept
    return f"folded {folded} constant nodes"


def _freeze(value) -> object:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    if isinstance(value, np.ndarray):  # pragma: no cover - attrs are scalars/tuples
        return (value.shape, value.tobytes())
    return value


def common_subexpression_elimination(graph: Graph) -> str:
    """Merge pure nodes with identical op, operand ids and attributes."""
    seen: Dict[object, Node] = {}
    replace: Dict[int, Value] = {}
    kept: List[Node] = []
    merged = 0
    for node in graph.nodes:
        node.inputs = [replace.get(value.vid, value) for value in node.inputs]
        for elem in list(node.post) + list(node.elem_ops):
            elem.inputs = tuple(
                replace.get(op.vid, op) if isinstance(op, Value) else op
                for op in elem.inputs
            )
        if node.post or node.elem_ops:
            # Fused nodes are not deduplicated (their micro-op identity is
            # not worth canonicalising; CSE runs before fusion by default).
            kept.append(node)
            continue
        key = (node.op, tuple(value.vid for value in node.inputs), _freeze(node.attrs))
        prior = seen.get(key)
        if prior is not None:
            replace[node.output.vid] = prior.output
            merged += 1
            continue
        seen[key] = node
        kept.append(node)
    graph.nodes = kept
    graph.output = replace.get(graph.output.vid, graph.output)
    return f"merged {merged} duplicate nodes"


def fuse_affine(graph: Graph) -> str:
    """Absorb sole-consumer affine ops and activations into conv/matmul nodes."""
    fused = 0
    changed = True
    while changed:
        changed = False
        consumers = graph.consumers()
        def_pos = {node.output.vid: index for index, node in enumerate(graph.nodes)}
        for index, node in enumerate(graph.nodes):
            if node.op not in _AFFINE_PRODUCERS:
                continue
            out = node.output
            if out.vid == graph.output.vid:
                continue
            readers = consumers.get(out.vid, [])
            if len(readers) != 1:
                continue
            consumer = readers[0]
            if consumer.op not in AFFINE_OPS or consumer.post or consumer.elem_ops:
                continue
            if consumer.output.shape != out.shape:
                continue
            # The absorbed op executes at the producer's position: any
            # runtime operand must already be defined there.
            operands_ready = all(
                value.kind != "node" or def_pos.get(value.vid, 1 << 30) < index
                for value in consumer.inputs
                if value.vid != out.vid
            )
            if not operands_ready:
                continue
            node.post.append(
                ElemOp(
                    op=consumer.op,
                    inputs=tuple(
                        CHAIN if value.vid == out.vid else value
                        for value in consumer.inputs
                    ),
                    ctx=dict(consumer.attrs),
                )
            )
            node.output = consumer.output
            graph.nodes.remove(consumer)
            fused += 1
            changed = True
            break
    return f"absorbed {fused} affine ops into producers"


def fuse_elementwise(graph: Graph) -> str:
    """Fuse single-consumer elementwise chains into one node per chain.

    A chain is a maximal run ``e1 -> e2 -> ... -> ek`` of elementwise nodes
    where every intermediate result has exactly one consumer (the next
    link), is not the graph output, and every link produces the same shape
    -- so the whole chain executes in one arena buffer, each micro-op
    writing in place over the previous result.
    """
    consumers = graph.consumers()
    in_chain: set = set()
    chains: List[List[Node]] = []
    for node in graph.nodes:
        if id(node) in in_chain or node.op not in ELEMENTWISE_OPS:
            continue
        if node.post or node.elem_ops:
            continue
        chain = [node]
        current = node
        while True:
            if current.output.vid == graph.output.vid:
                break
            readers = consumers.get(current.output.vid, [])
            if len(readers) != 1:
                break
            nxt = readers[0]
            if (
                id(nxt) in in_chain
                or nxt.op not in ELEMENTWISE_OPS
                or nxt.post
                or nxt.elem_ops
                or nxt.output.shape != node.output.shape
            ):
                break
            chain.append(nxt)
            current = nxt
        if len(chain) >= 2:
            in_chain.update(id(member) for member in chain)
            chains.append(chain)

    for chain in chains:
        elem_ops: List[ElemOp] = []
        external: List[Value] = []
        previous_vid: Optional[int] = None
        for member in chain:
            elem_ops.append(
                ElemOp(
                    op=member.op,
                    inputs=tuple(
                        CHAIN if (previous_vid is not None and value.vid == previous_vid)
                        else value
                        for value in member.inputs
                    ),
                    ctx=dict(member.attrs),
                )
            )
            external.extend(
                value
                for value in member.inputs
                if not (previous_vid is not None and value.vid == previous_vid)
            )
            previous_vid = member.output.vid
        fused_node = Node(
            op="fused_elementwise",
            inputs=external,
            output=chain[-1].output,
            elem_ops=elem_ops,
        )
        # The fused node executes where the chain ended, so every external
        # operand of every link is already defined.
        position = graph.nodes.index(chain[-1])
        graph.nodes[position] = fused_node
        for member in chain[:-1]:
            graph.nodes.remove(member)
    total_ops = sum(len(chain) for chain in chains)
    return f"fused {len(chains)} chains ({total_ops} elementwise ops)"


def dead_node_elimination(graph: Graph) -> str:
    """Drop nodes whose results are never read (backwards reachability)."""
    live = {graph.output.vid}
    kept_reversed: List[Node] = []
    removed = 0
    for node in reversed(graph.nodes):
        if node.output.vid in live:
            kept_reversed.append(node)
            for value in node.input_values():
                live.add(value.vid)
        else:
            removed += 1
    graph.nodes = kept_reversed[::-1]
    return f"removed {removed} dead nodes"


# --------------------------------------------------------------------------- #
# Kernel selection
# --------------------------------------------------------------------------- #
def _quantized_weight(export, name: Optional[str]):
    if export is None or name is None:
        return None
    return export.quantized.get(name)


def _conv_site(node: Node, export):
    """(desc, baked weight matrix) of a conv node, or ``None``."""
    if len(node.inputs) < 2 or node.inputs[0].kind == "const":
        return None
    weight_value = node.inputs[1]
    if weight_value.kind != "const":
        return None
    out_channels = int(weight_value.shape[0])
    name = weight_value.origin[0] if weight_value.origin is not None else None
    qt = _quantized_weight(export, name)
    if qt is not None:
        matrix = kernel_variants.centred_codes(qt).reshape(out_channels, -1)
        bits = qt.bits
    else:
        matrix = weight_value.data.reshape(out_channels, -1)
        bits = 32
    desc = KernelDesc(
        op="conv2d",
        x_shape=tuple(node.inputs[0].shape[1:]),
        kernel_size=tuple(weight_value.shape[2:]),
        stride=tuple(node.attrs["stride"]),
        padding=tuple(node.attrs["padding"]),
        out_channels=out_channels,
        weight_dtype=str(matrix.dtype),
        bits=bits,
    )
    return desc, matrix


def _linear_site(node: Node, producers: Dict[int, Node], export):
    """(desc, baked (in, out) weight) of a linear-lowered matmul, or ``None``."""
    info = matmul_linear_info(node, producers)
    if info is None or node.inputs[0].kind == "const":
        return None
    weight_value, pre_transposed = info
    qt = None
    if weight_value.origin is not None:
        name, origin_transposed = weight_value.origin
        qt = _quantized_weight(export, name)
    if qt is not None:
        weight = kernel_variants.centred_codes(qt)
        if origin_transposed != pre_transposed:
            weight = weight.T
        bits = qt.bits
    else:
        weight = weight_value.data.T if pre_transposed else weight_value.data
        bits = 32
    desc = KernelDesc(
        op="linear",
        x_shape=tuple(node.inputs[0].shape[1:]),
        out_channels=int(weight.shape[1]),
        weight_dtype=str(weight.dtype),
        bits=bits,
    )
    return desc, weight


def _pool_site(node: Node):
    """Descriptor of a pooling node, or ``None``."""
    if node.inputs[0].kind == "const" or len(node.inputs[0].shape) != 4:
        return None
    return KernelDesc(
        op=node.op,
        x_shape=tuple(node.inputs[0].shape[1:]),
        kernel_size=tuple(node.attrs["kernel_size"]),
        stride=tuple(node.attrs["stride"]),
    )


_RACE_BATCH = 16
"""Batch size candidate races are measured at.

Plans are traced at a tiny probe batch, but variants are ranked by how they
serve: per-call overheads (Python dispatch, ctypes marshalling in the native
kernels) that dominate at batch 2 amortise away at realistic batches, and a
winner picked at the probe batch can lose where it matters.  Races therefore
tile the traced activations up to this batch before timing.
"""


def _race_input(x: np.ndarray) -> np.ndarray:
    """The traced probe activations, tiled up to :data:`_RACE_BATCH`."""
    if x.shape[0] >= _RACE_BATCH:
        return x
    reps = -(-_RACE_BATCH // x.shape[0])
    return np.concatenate([x] * reps, axis=0)[:_RACE_BATCH]


def _conv_runner_factory(node: Node, desc: KernelDesc, matrix: np.ndarray):
    x = _race_input(node.inputs[0].traced)
    out_h, out_w = _conv_output_hw(desc)
    scratch = np.empty(
        (x.shape[0], desc.out_channels, out_h * out_w), dtype=np.float64
    )

    def make_runner(name: str):
        weight_exec = kernel_variants.prepare_conv_weight(name, matrix)
        return lambda: kernel_variants.run_conv(
            name, x, weight_exec, desc.kernel_size, desc.stride, desc.padding,
            out=scratch,
        )

    return make_runner


def _conv_output_hw(desc: KernelDesc):
    from repro.kernels import conv_output_hw

    return conv_output_hw(
        desc.x_shape[1], desc.x_shape[2], desc.kernel_size, desc.stride, desc.padding
    )


def _linear_runner_factory(node: Node, desc: KernelDesc, weight: np.ndarray):
    x = _race_input(node.inputs[0].traced)
    scratch = np.empty((x.shape[0], weight.shape[1]), dtype=np.float64) \
        if x.ndim == 2 else None

    def make_runner(name: str):
        weight_exec = kernel_variants.prepare_linear_weight(name, weight)
        return lambda: kernel_variants.run_linear(name, x, weight_exec, out=scratch)

    return make_runner


def _elem_site(node: Node):
    """(desc, native chain spec) of a fused-elementwise node, or ``None``.

    Only materialises when the codegen backend is enabled: with it off the
    ufunc chain is the sole variant, so there is nothing to select (and no
    reason to grow the tuning cache with single-candidate signatures).
    """
    from repro.runtime import codegen

    if not codegen.enabled():
        return None
    spec = codegen.chain_spec_for_node(node)
    if spec is None:
        return None
    kernel_variants.register_chain_spec(spec)
    desc = KernelDesc(
        op="fused_elementwise",
        x_shape=tuple(spec.x_shape),
        detail=spec.detail(),
    )
    return desc, spec


def _elem_runner_factory(node: Node, desc: KernelDesc, spec):
    from repro.runtime import codegen
    from repro.runtime.executor import _apply_elem
    from repro.runtime.ir import CHAIN

    batch = max(int(node.output.shape[0]), _RACE_BATCH)
    buf = np.empty((batch,) + tuple(spec.x_shape), dtype=np.float64)

    replay_ops = []
    extern_arrays = []
    for elem in node.elem_ops:
        operands = []
        for operand in elem.inputs:
            if operand is CHAIN:
                operands.append(None)
                continue
            if operand.kind == "const":
                data = np.asarray(operand.data)
                operands.append(data)
                if data.size == 1:
                    continue  # baked into the source as a scalar
            else:
                data = operand.traced
                if data.ndim == len(spec.x_shape) + 1:
                    data = _race_input(data)  # batched extern: match the race batch
                operands.append(data)
            extern_arrays.append(np.ascontiguousarray(data, dtype=np.float64))
        replay_ops.append((elem.op, operands, dict(elem.ctx)))

    def make_runner(name: str):
        if name == "native":
            kernel = codegen.native_elementwise_kernel(spec)
            if kernel is None:  # admission passed, so only races end up here
                return lambda: None
            return lambda: kernel.run(buf, extern_arrays, batch)

        def reference():
            chain = None
            for op, operands, ctx in replay_ops:
                arrays = [chain if a is None else a for a in operands]
                chain = _apply_elem(op, arrays, ctx, buf if chain is None else chain)
            return chain

        return reference

    return make_runner


def _pool_runner_factory(node: Node, desc: KernelDesc):
    x = _race_input(node.inputs[0].traced)

    def make_runner(name: str):
        return lambda: kernel_variants.run_pool(
            desc.op, name, x, desc.kernel_size, desc.stride
        )

    return make_runner


def select_kernels(graph: Graph) -> str:
    """Annotate conv / linear / pool nodes with their chosen kernel variant.

    Every candidate is byte-exact against the reference lowering (the
    admission rule of :mod:`repro.runtime.variants`), so this pass -- like
    every other -- changes plan *speed*, never plan *output*.  With a
    tuner in scope (see :func:`repro.runtime.tuning.tuning_scope`) choices
    are micro-benchmarked on the traced probe activations (tiled up to
    :data:`_RACE_BATCH` so per-call overheads are weighed as they amortise
    in serving, not at the tiny trace batch) and persisted;
    without one, the ranked heuristic costs only a predicate sweep.
    """
    tuner, export = active_tuning()
    producers = graph.producers()
    outcome_counts: Dict[str, int] = {"tuned": 0, "cached": 0, "heuristic": 0}
    annotated = 0
    for node in graph.nodes:
        site = None
        if node.op == "conv2d":
            conv = _conv_site(node, export)
            if conv is not None:
                desc, matrix = conv
                site = (desc, lambda: _conv_runner_factory(node, desc, matrix))
        elif node.op == "matmul":
            lin = _linear_site(node, producers, export)
            if lin is not None:
                desc, weight = lin
                site = (desc, lambda: _linear_runner_factory(node, desc, weight))
        elif node.op in ("max_pool2d", "avg_pool2d"):
            desc = _pool_site(node)
            if desc is not None:
                site = (desc, lambda: _pool_runner_factory(node, desc))
        elif node.op == "fused_elementwise":
            elem = _elem_site(node)
            if elem is not None:
                desc, spec = elem
                site = (desc, lambda: _elem_runner_factory(node, desc, spec))
        if site is None:
            continue
        desc, factory = site
        candidates = [v.name for v in kernel_variants.applicable_variants(desc)]
        if tuner is None or len(candidates) == 1:
            name = kernel_variants.heuristic_choice(desc)
            provenance = "heuristic"
        else:
            name, provenance = tuner.select(desc, candidates, factory())
        node.attrs["kernel_variant"] = name
        node.attrs["kernel_variant_provenance"] = provenance
        outcome_counts[provenance] += 1
        annotated += 1
    if tuner is not None and tuner.config.cache is not None:
        tuner.config.cache.save()
    detail = ", ".join(
        f"{count} {kind}" for kind, count in outcome_counts.items() if count
    )
    return f"selected variants for {annotated} nodes ({detail or 'none'})"


# --------------------------------------------------------------------------- #
# Pass manager
# --------------------------------------------------------------------------- #
PASS_REGISTRY: Dict[str, Callable[[Graph], str]] = {
    "fold_constants": fold_constants,
    "cse": common_subexpression_elimination,
    "fuse_affine": fuse_affine,
    "fuse_elementwise": fuse_elementwise,
    "dce": dead_node_elimination,
    "select_kernels": select_kernels,
}

#: Default pipeline: fold first (so fusion sees baked per-channel
#: constants), dedupe before fusing, sweep dead nodes last, then pick a
#: kernel variant for every surviving call site.
DEFAULT_PASSES: Tuple[str, ...] = (
    "fold_constants",
    "cse",
    "fuse_affine",
    "fuse_elementwise",
    "dce",
    "select_kernels",
)


def available_passes() -> Tuple[str, ...]:
    """Names accepted by :class:`PassManager` / ``compile_plan(passes=...)``."""
    return tuple(PASS_REGISTRY)


def resolve_passes(
    optimize: bool = True,
    passes: Optional[Sequence[str]] = None,
    fold_affine: bool = True,
) -> Tuple[str, ...]:
    """Normalise the compile knobs into a concrete pass tuple.

    ``optimize=False`` disables the whole pipeline (the unoptimised
    reference interpreter).  An explicit ``passes`` sequence wins over the
    default; ``fold_affine=False`` (the historical debugging knob) drops
    ``fuse_affine`` from whichever pipeline was selected.  The resolved
    tuple is part of the :class:`~repro.runtime.cache.PlanCache` key.
    """
    if not optimize:
        return ()
    selected = DEFAULT_PASSES if passes is None else tuple(passes)
    unknown = [name for name in selected if name not in PASS_REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown pass(es) {unknown!r}; available: {sorted(PASS_REGISTRY)}"
        )
    if not fold_affine:
        selected = tuple(name for name in selected if name != "fuse_affine")
    return selected


@dataclass(frozen=True)
class PassRecord:
    """Outcome of one pass: node counts around it plus a one-line detail."""

    name: str
    nodes_before: int
    nodes_after: int
    detail: str


@dataclass
class PipelineReport:
    """Pass-by-pass account of one compilation, attached to the plan."""

    passes: List[PassRecord]
    initial_nodes: int
    final_nodes: int

    def describe(self) -> str:
        lines = [f"trace: {self.initial_nodes} nodes"]
        for record in self.passes:
            lines.append(
                f"pass {record.name}: {record.nodes_before} -> "
                f"{record.nodes_after} nodes ({record.detail})"
            )
        return "\n".join(lines)


class PassManager:
    """Runs a named, individually-toggleable pass sequence over a graph."""

    def __init__(self, passes: Sequence[str] = DEFAULT_PASSES) -> None:
        unknown = [name for name in passes if name not in PASS_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown pass(es) {unknown!r}; available: {sorted(PASS_REGISTRY)}"
            )
        self.passes: Tuple[str, ...] = tuple(passes)

    def run(self, graph: Graph) -> PipelineReport:
        """Run every configured pass in order, mutating ``graph``."""
        records: List[PassRecord] = []
        initial = graph.num_nodes()
        for name in self.passes:
            before = graph.num_nodes()
            detail = PASS_REGISTRY[name](graph)
            records.append(
                PassRecord(
                    name=name,
                    nodes_before=before,
                    nodes_after=graph.num_nodes(),
                    detail=detail,
                )
            )
        return PipelineReport(
            passes=records, initial_nodes=initial, final_nodes=graph.num_nodes()
        )
