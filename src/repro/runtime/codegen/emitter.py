"""Shape-specialized C source emitter for the native codegen backend.

Emits one self-contained C translation unit per (step family, geometry,
fused-epilogue) signature -- every loop bound is baked as a ``#define``, so
the compiler sees compile-time-constant trip counts.  Three families:

* **conv2d** -- im2col gather (exactly the reference
  :func:`repro.kernels.conv.im2col` ordering) into a scratch matrix, one
  GEMM per sample, then the fused affine/activation epilogue in a single
  pass over the output;
* **linear** -- one GEMM for the whole batch plus the same epilogue loop;
* **elementwise** -- a :class:`repro.runtime.executor.FusedElementwiseStep`
  ufunc chain collapsed into a single C loop.

**Bitwise identity is the contract, not a goal.**  The GEMMs are *not*
open-coded: the generated kernels call back into numpy's own vendored
OpenBLAS ``cblas_dgemm`` through a function pointer
(:mod:`repro.runtime.codegen.blas`), so the float additions happen in the
same order, in the same library, as ``np.matmul``.  The elementwise ops are
restricted to a whitelist whose C forms were checked against the numpy
ufuncs corner-by-corner (``relu`` keeps numpy's ``maximum`` tie/NaN
behaviour, ``clamp`` keeps ``np.clip``'s ``-0.0`` and NaN propagation,
scalars are baked as C99 hex-float literals, and ``-ffp-contract=off``
forbids FMA contraction).  Ops without an exactly-matching C form
(``exp``/``tanh``/``sigmoid``/``pow`` -- libm is not ulp-identical) are
simply not admitted; the spec builders return ``None`` and numpy serves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ChainSpec",
    "ConvGeom",
    "ElemOpSpec",
    "ElemRef",
    "EpilogueSpec",
    "LinearGeom",
    "c_double",
    "elementwise_spec",
    "emit_conv",
    "emit_elementwise",
    "emit_linear",
    "epilogue_spec",
]

#: Elementwise ops with a C form proven bitwise-identical to the numpy
#: ufunc.  ``exp``/``log``/``tanh``/``sigmoid``/``pow`` are excluded:
#: libm's transcendentals are correct but not bit-identical to numpy's.
NATIVE_ELEM_OPS = ("add", "sub", "mul", "div", "neg", "abs", "sqrt",
                   "relu", "clamp")
_BINARY = ("add", "sub", "mul", "div")


def c_double(value: float) -> str:
    """Render a float as a C99 hex literal -- exact, no decimal rounding."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"cannot bake {value!r} as a C literal")
    return f"({value.hex()})"


@dataclass(frozen=True)
class ElemRef:
    """One operand of an elementwise op.

    ``kind`` is ``"chain"`` (the running value), ``"extern"`` (a runtime
    array, ``index`` into the extern pointer table) or ``"scalar"`` (a
    constant baked into the source as a hex-float literal).
    """

    kind: str
    index: int = -1
    value: float = 0.0

    def detail(self, modes: Tuple[str, ...]) -> str:
        if self.kind == "chain":
            return "c"
        if self.kind == "extern":
            return f"e{self.index}{modes[self.index][0]}"
        return f"k{float(self.value).hex()}"


@dataclass(frozen=True)
class ElemOpSpec:
    """One whitelisted elementwise op with resolved operands."""

    op: str
    refs: Tuple[ElemRef, ...]
    lo: Optional[float] = None
    hi: Optional[float] = None

    def detail(self, modes: Tuple[str, ...]) -> str:
        args = ",".join(ref.detail(modes) for ref in self.refs)
        if self.op == "clamp":
            lo = "_" if self.lo is None else float(self.lo).hex()
            hi = "_" if self.hi is None else float(self.hi).hex()
            return f"clamp[{lo},{hi}]({args})"
        return f"{self.op}({args})"


@dataclass(frozen=True)
class ChainSpec:
    """A fused-elementwise chain admissible for native compilation.

    ``x_shape`` is the per-sample shape of the chain buffer;
    ``extern_modes`` records, per extern slot, how the C kernel indexes it:
    ``full`` (batched array, element ``i``), ``sample`` (per-sample array,
    ``i % sample``) or ``channel`` (per-channel array,
    ``(i / block) % channels``).
    """

    x_shape: Tuple[int, ...]
    ops: Tuple[ElemOpSpec, ...]
    extern_modes: Tuple[str, ...]

    def detail(self) -> str:
        return ";".join(op.detail(self.extern_modes) for op in self.ops)


@dataclass(frozen=True)
class EpilogueSpec:
    """Fused conv/linear epilogue: ``*= scale``, ``+= shift[ch]``, post ops."""

    has_scale: bool
    has_shift: bool
    ops: Tuple[ElemOpSpec, ...] = ()
    extern_modes: Tuple[str, ...] = ()

    def detail(self) -> str:
        parts: List[str] = []
        if self.has_scale:
            parts.append("s")
        if self.has_shift:
            parts.append("b")
        parts.extend(op.detail(self.extern_modes) for op in self.ops)
        return ";".join(parts)

    def is_empty(self) -> bool:
        return not (self.has_scale or self.has_shift or self.ops)


@dataclass(frozen=True)
class ConvGeom:
    """Baked conv2d geometry (per-sample input, kernel, stride, padding)."""

    c_in: int
    h: int
    w: int
    kh: int
    kw: int
    sh: int
    sw: int
    ph: int
    pw: int
    c_out: int

    @property
    def oh(self) -> int:
        return (self.h + 2 * self.ph - self.kh) // self.sh + 1

    @property
    def ow(self) -> int:
        return (self.w + 2 * self.pw - self.kw) // self.sw + 1

    @property
    def patches(self) -> int:
        return self.oh * self.ow

    @property
    def k_rows(self) -> int:
        return self.c_in * self.kh * self.kw


@dataclass(frozen=True)
class LinearGeom:
    """Baked linear geometry: ``(batch, in) @ (in, out)``."""

    in_features: int
    out_features: int


def _extern_mode(
    shape: Tuple[int, ...], batched: bool, x_shape: Tuple[int, ...]
) -> Optional[str]:
    """Classify how an extern array is indexed against the chain buffer."""
    if batched:
        return "full" if tuple(shape[1:]) == tuple(x_shape) else None
    if tuple(shape) == tuple(x_shape) or tuple(shape) == (1,) + tuple(x_shape):
        return "sample"
    if len(x_shape) == 3:
        channels = x_shape[0]
        if tuple(shape) in ((channels, 1, 1), (1, channels, 1, 1)):
            return "channel"
    if len(x_shape) == 1 and tuple(shape) == (x_shape[0],):
        return "sample"
    return None


def _build_ops(
    operations: Sequence[Tuple[str, Sequence[tuple], dict]],
    x_shape: Tuple[int, ...],
    allow_chain_first: bool,
) -> Optional[Tuple[Tuple[ElemOpSpec, ...], Tuple[str, ...]]]:
    """Shared spec-builder core; ``None`` whenever anything is inadmissible.

    Each operand is ``("chain",)``, ``("scalar", float)`` or
    ``("extern", shape, batched)``; extern slots are assigned in traversal
    order, which is the order the caller must pass the arrays at runtime.
    """
    specs: List[ElemOpSpec] = []
    modes: List[str] = []
    for position, (op, operands, ctx) in enumerate(operations):
        if op not in NATIVE_ELEM_OPS:
            return None
        refs: List[ElemRef] = []
        for operand in operands:
            kind = operand[0]
            if kind == "chain":
                if position == 0 and not allow_chain_first:
                    return None
                refs.append(ElemRef("chain"))
            elif kind == "scalar":
                value = float(operand[1])
                if math.isnan(value) or math.isinf(value):
                    return None
                refs.append(ElemRef("scalar", value=value))
            elif kind == "extern":
                mode = _extern_mode(operand[1], operand[2], x_shape)
                if mode is None:
                    return None
                refs.append(ElemRef("extern", index=len(modes)))
                modes.append(mode)
            else:
                return None
        expected = 2 if op in _BINARY else 1
        if len(refs) != expected:
            return None
        lo = hi = None
        if op == "clamp":
            lo = ctx.get("min")
            hi = ctx.get("max")
            lo = None if lo is None or math.isinf(lo) else float(lo)
            hi = None if hi is None or math.isinf(hi) else float(hi)
            if (lo is not None and math.isnan(lo)) or (
                hi is not None and math.isnan(hi)
            ):
                return None
            if lo is not None and hi is not None and lo > hi:
                return None  # np.clip lets the upper bound win; we don't
        specs.append(ElemOpSpec(op, tuple(refs), lo=lo, hi=hi))
    if not specs:
        return None
    return tuple(specs), tuple(modes)


def elementwise_spec(
    x_shape: Sequence[int],
    operations: Sequence[Tuple[str, Sequence[tuple], dict]],
) -> Optional[ChainSpec]:
    """Build the native spec for a fused-elementwise chain, or ``None``."""
    shape = tuple(int(dim) for dim in x_shape)
    if not shape or any(dim <= 0 for dim in shape):
        return None
    built = _build_ops(operations, shape, allow_chain_first=False)
    if built is None:
        return None
    ops, modes = built
    return ChainSpec(x_shape=shape, ops=ops, extern_modes=modes)


def epilogue_spec(
    sample_shape: Sequence[int],
    has_scale: bool,
    has_shift: bool,
    operations: Sequence[Tuple[str, Sequence[tuple], dict]],
) -> Optional[EpilogueSpec]:
    """Build the fused-epilogue spec for a conv/linear step, or ``None``."""
    shape = tuple(int(dim) for dim in sample_shape)
    if not operations:
        return EpilogueSpec(has_scale=has_scale, has_shift=has_shift)
    built = _build_ops(operations, shape, allow_chain_first=True)
    if built is None:
        return None
    ops, modes = built
    return EpilogueSpec(
        has_scale=has_scale, has_shift=has_shift, ops=ops, extern_modes=modes
    )


# --------------------------------------------------------------------------
# C rendering
# --------------------------------------------------------------------------

_PRELUDE = """\
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

typedef int64_t i64;
typedef void (*dgemm_fn)(int, int, int, i64, i64, i64, double,
                         const double*, i64, const double*, i64,
                         double, double*, i64);
typedef void (*dgemv_fn)(int, int, i64, i64, double, const double*, i64,
                         const double*, i64, double, double*, i64);
#define ROW_MAJOR 101
#define NO_TRANS 111
#define TRANS 112
"""


def _ref_expr(ref: ElemRef, modes: Tuple[str, ...]) -> str:
    # The loops below maintain ``i`` (flat), ``s`` (sample-local) and ``c``
    # (channel) indices directly, so no per-element div/mod is emitted --
    # integer division in the hot loop costs more than the arithmetic it
    # indexes and defeats vectorisation.
    if ref.kind == "chain":
        return "v"
    if ref.kind == "scalar":
        return c_double(ref.value)
    mode = modes[ref.index]
    if mode == "full":
        return f"e{ref.index}[i]"
    if mode == "sample":
        return f"e{ref.index}[s]"
    return f"e{ref.index}[c]"


def _op_lines(spec: ElemOpSpec, modes: Tuple[str, ...]) -> List[str]:
    refs = [_ref_expr(ref, modes) for ref in spec.refs]
    if spec.op == "add":
        return [f"v = ({refs[0]}) + ({refs[1]});"]
    if spec.op == "sub":
        return [f"v = ({refs[0]}) - ({refs[1]});"]
    if spec.op == "mul":
        return [f"v = ({refs[0]}) * ({refs[1]});"]
    if spec.op == "div":
        return [f"v = ({refs[0]}) / ({refs[1]});"]
    if spec.op == "neg":
        return [f"v = -({refs[0]});"]
    if spec.op == "abs":
        return [f"v = fabs({refs[0]});"]
    if spec.op == "sqrt":
        return [f"v = sqrt({refs[0]});"]
    if spec.op == "relu":
        # np.maximum(x, 0.0): propagates NaN, returns the *second* operand
        # (+0.0) on the -0.0 tie.
        return [
            f"{{ double t = {refs[0]};"
            " v = (t > 0.0) ? t : ((t == t) ? 0.0 : t); }"
        ]
    if spec.op == "clamp":
        # np.clip: lower bound first, keeps -0.0 inside the range,
        # propagates NaN (both comparisons false).
        body = "t"
        if spec.hi is not None:
            body = f"(t > {c_double(spec.hi)}) ? {c_double(spec.hi)} : t"
        if spec.lo is not None:
            body = f"(t < {c_double(spec.lo)}) ? {c_double(spec.lo)} : ({body})"
        return [f"{{ double t = {refs[0]}; v = {body}; }}"]
    raise ValueError(f"unsupported native elementwise op {spec.op!r}")


def _extern_decls(count: int) -> List[str]:
    return [
        f"    const double* e{index} = externs[{index}];"
        for index in range(count)
    ]


def _fused_loop(body: List[str], target: str) -> List[str]:
    """Nested batch/channel/inner loops around one fused element ``body``.

    ``i`` walks the flat buffer, ``s`` the sample and ``c`` the channel, all
    by increment -- the straight-line inner loop indexes every operand
    contiguously (or loop-invariantly), which is what lets the compiler
    vectorise it and what keeps the kernel ahead of a chain of separate
    numpy ufunc passes at large batch sizes.
    """
    lines = [
        "    {",
        "    i64 i = 0;",
        "    for (i64 n = 0; n < batch; ++n) {",
        "        i64 s = 0;",
        "        for (i64 c = 0; c < CH_COUNT; ++c) {",
        "            for (i64 k = 0; k < CH_BLOCK; ++k, ++i, ++s) {",
    ]
    lines.extend(f"                {stmt}" for stmt in body)
    lines.extend([
        f"                {target}[i] = v;",
        "            }",
        "        }",
        "    }",
        "    }",
    ])
    return lines


def _epilogue_loop(epilogue: Optional[EpilogueSpec]) -> List[str]:
    """The single fused pass over the step output (``out``/``scale``/``shift``)."""
    if epilogue is None or epilogue.is_empty():
        return []
    body = ["double v = out[i];"]
    if epilogue.has_scale:
        body.append("v *= scale;")
    if epilogue.has_shift:
        body.append("v += shift[c];")
    for op in epilogue.ops:
        body.extend(_op_lines(op, epilogue.extern_modes))
    return _fused_loop(body, "out")


def emit_conv(geom: ConvGeom, epilogue: Optional[EpilogueSpec]) -> str:
    """C source for one conv2d signature with its fused epilogue."""
    extern_count = len(epilogue.extern_modes) if epilogue is not None else 0
    fast_1x1 = (
        geom.kh == 1 and geom.kw == 1
        and geom.sh == 1 and geom.sw == 1
        and geom.ph == 0 and geom.pw == 0
    )
    defines = [
        f"#define C_IN {geom.c_in}",
        f"#define H_IN {geom.h}",
        f"#define W_IN {geom.w}",
        f"#define KH {geom.kh}",
        f"#define KW {geom.kw}",
        f"#define SH {geom.sh}",
        f"#define SW {geom.sw}",
        f"#define PH {geom.ph}",
        f"#define PW {geom.pw}",
        f"#define C_OUT {geom.c_out}",
        f"#define OH {geom.oh}",
        f"#define OW {geom.ow}",
        "#define PATCHES (OH * OW)",
        "#define K_ROWS (C_IN * KH * KW)",
        "#define SAMPLE (C_OUT * PATCHES)",
        "#define CH_BLOCK PATCHES",
        "#define CH_COUNT C_OUT",
    ]
    epi_detail = epilogue.detail() if epilogue is not None else ""
    lines = [
        f"/* repro native conv2d | epilogue: {epi_detail!r} */",
        _PRELUDE,
        *defines,
        "",
        "int repro_kernel(const double* x, const double* w, double* out,",
        "                 i64 batch, void* dgemm_ptr, void* dgemv_ptr,",
        "                 double scale, const double* shift,",
        "                 const double** externs) {",
        "    dgemm_fn dgemm = (dgemm_fn)dgemm_ptr;",
        "    (void)externs; (void)scale; (void)shift; (void)dgemv_ptr;",
        *_extern_decls(extern_count),
    ]
    if fast_1x1:
        lines.extend([
            "    for (i64 n = 0; n < batch; ++n) {",
            "        const double* xs = x + n * (i64)C_IN * H_IN * W_IN;",
            "        double* os = out + n * (i64)SAMPLE;",
            "        dgemm(ROW_MAJOR, NO_TRANS, NO_TRANS, C_OUT, PATCHES,",
            "              K_ROWS, 1.0, w, K_ROWS, xs, PATCHES, 0.0, os,",
            "              PATCHES);",
            "    }",
        ])
    else:
        lines.extend([
            "    double* cols = (double*)malloc(sizeof(double) *",
            "                                   (size_t)K_ROWS * PATCHES);",
            "    if (!cols) return 1;",
            "    for (i64 n = 0; n < batch; ++n) {",
            "        const double* xs = x + n * (i64)C_IN * H_IN * W_IN;",
            "        double* os = out + n * (i64)SAMPLE;",
            "        for (i64 c = 0; c < C_IN; ++c) {",
            "        for (i64 kh = 0; kh < KH; ++kh) {",
            "        for (i64 kw = 0; kw < KW; ++kw) {",
            "            double* row = cols + ((c * KH + kh) * KW + kw)"
            " * (i64)PATCHES;",
            "            for (i64 oh = 0; oh < OH; ++oh) {",
            "                i64 ih = oh * SH + kh - PH;",
            "                if (ih < 0 || ih >= H_IN) {",
            "                    for (i64 ow = 0; ow < OW; ++ow)",
            "                        row[oh * OW + ow] = 0.0;",
            "                    continue;",
            "                }",
            "                const double* xrow = xs + (c * (i64)H_IN + ih)"
            " * W_IN;",
            "                for (i64 ow = 0; ow < OW; ++ow) {",
            "                    i64 iw = ow * SW + kw - PW;",
            "                    row[oh * OW + ow] =",
            "                        (iw < 0 || iw >= W_IN) ? 0.0 : xrow[iw];",
            "                }",
            "            }",
            "        }}}",
            "        dgemm(ROW_MAJOR, NO_TRANS, NO_TRANS, C_OUT, PATCHES,",
            "              K_ROWS, 1.0, w, K_ROWS, cols, PATCHES, 0.0, os,",
            "              PATCHES);",
            "    }",
            "    free(cols);",
        ])
    lines.extend(_epilogue_loop(epilogue))
    lines.extend(["    return 0;", "}", ""])
    return "\n".join(lines)


def emit_linear(geom: LinearGeom, epilogue: Optional[EpilogueSpec]) -> str:
    """C source for one linear signature: one batch GEMM + fused epilogue."""
    extern_count = len(epilogue.extern_modes) if epilogue is not None else 0
    epi_detail = epilogue.detail() if epilogue is not None else ""
    lines = [
        f"/* repro native linear | epilogue: {epi_detail!r} */",
        _PRELUDE,
        f"#define IN_F {geom.in_features}",
        f"#define OUT_F {geom.out_features}",
        "#define SAMPLE OUT_F",
        "#define CH_BLOCK 1",
        "#define CH_COUNT OUT_F",
        "",
        "int repro_kernel(const double* x, const double* w, double* out,",
        "                 i64 batch, void* dgemm_ptr, void* dgemv_ptr,",
        "                 double scale, const double* shift,",
        "                 const double** externs) {",
        "    dgemm_fn dgemm = (dgemm_fn)dgemm_ptr;",
        "    dgemv_fn dgemv = (dgemv_fn)dgemv_ptr;",
        "    (void)externs; (void)scale; (void)shift;",
        *_extern_decls(extern_count),
        "    /* numpy routes (1, k) @ (k, n) through gemv, not gemm;",
        "       match its dispatch so every batch size stays bitwise. */",
        "    if (batch == 1) {",
        "        dgemv(ROW_MAJOR, TRANS, IN_F, OUT_F, 1.0, w, OUT_F,",
        "              x, 1, 0.0, out, 1);",
        "    } else {",
        "        dgemm(ROW_MAJOR, NO_TRANS, NO_TRANS, batch, OUT_F, IN_F,",
        "              1.0, x, IN_F, w, OUT_F, 0.0, out, OUT_F);",
        "    }",
        *_epilogue_loop(epilogue),
        "    return 0;",
        "}",
        "",
    ]
    return "\n".join(lines)


def emit_elementwise(spec: ChainSpec) -> str:
    """C source for one fused-elementwise chain: a single flat loop."""
    sample = 1
    for dim in spec.x_shape:
        sample *= dim
    channels = spec.x_shape[0] if len(spec.x_shape) == 3 else 1
    block = sample // channels if channels else sample
    lines = [
        f"/* repro native elementwise | chain: {spec.detail()!r} */",
        _PRELUDE,
        f"#define SAMPLE {sample}",
        f"#define CH_COUNT {channels}",
        f"#define CH_BLOCK {block}",
        "",
        "int repro_kernel(double* buf, const double** externs, i64 batch) {",
        "    (void)externs;",
        *_extern_decls(len(spec.extern_modes)),
    ]
    body = ["double v = 0.0;"]
    for op in spec.ops:
        body.extend(_op_lines(op, spec.extern_modes))
    lines.extend(_fused_loop(body, "buf"))
    lines.extend([
        "    return 0;",
        "}",
        "",
    ])
    return "\n".join(lines)
