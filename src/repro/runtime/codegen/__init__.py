"""Native codegen backend: emitted, compiled and cached C kernels.

The ROADMAP item-2 stretch goal made concrete: for the three hottest step
families -- im2col-GEMM conv2d with its fused affine/activation epilogue,
linear matmul + epilogue, and fused-elementwise ufunc chains -- this
package emits shape-specialized C (:mod:`.emitter`), compiles it once per
machine into an on-disk artifact cache (:mod:`.build`), loads it through
``ctypes`` and verifies it **byte-for-byte** against the numpy reference
path before anything may execute it (:mod:`.kernels`).  GEMMs call back
into numpy's own vendored OpenBLAS (:mod:`.blas`), which is what makes
bitwise identity attainable at all.

The backend is **off by default** and entirely opt-in: set
``REPRO_CODEGEN=1`` or call :func:`configure`.  When enabled, native
kernels surface as ordinary ``"native"`` variants in
:mod:`repro.runtime.variants` -- the existing admission rule and
:class:`~repro.runtime.tuning.Autotuner` then select them per signature
with zero new policy code.  Degradation is graceful at every layer: no C
compiler, no BLAS bridge, a failed build or a failed bitwise probe all
mean the variant is simply absent and numpy serves.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

import numpy as _np

from repro.runtime.codegen import blas as _blas
from repro.runtime.codegen import build as _build
from repro.runtime.codegen import emitter as _emitter
from repro.runtime.codegen import kernels as _kernels
from repro.runtime.codegen.build import (
    build_counts,
    cache_dir,
    clear_cache,
    compiler_command,
)
from repro.runtime.codegen.emitter import (
    ChainSpec,
    ConvGeom,
    ElemOpSpec,
    ElemRef,
    EpilogueSpec,
    LinearGeom,
    elementwise_spec,
    epilogue_spec,
)
from repro.runtime.codegen.kernels import (
    dispatch_count,
    native_conv_kernel,
    native_elementwise_kernel,
    native_linear_kernel,
    native_ready,
)

__all__ = [
    "ChainSpec",
    "ConvGeom",
    "ElemOpSpec",
    "ElemRef",
    "EpilogueSpec",
    "LinearGeom",
    "bind_metrics",
    "build_counts",
    "cache_dir",
    "chain_spec_for_node",
    "clear_cache",
    "compiler_command",
    "configure",
    "dispatch_count",
    "elementwise_spec",
    "enabled",
    "epilogue_spec",
    "fingerprint",
    "native_conv_kernel",
    "native_elementwise_kernel",
    "native_linear_kernel",
    "native_ready",
    "reset",
    "status",
    "verify_backend",
]

_ENABLE_LOCK = threading.Lock()
_ENABLED: Dict[str, Optional[bool]] = {"value": None}
_TRUTHY = ("1", "true", "on", "yes")


def enabled() -> bool:
    """Whether the backend may emit/compile/dispatch native kernels.

    Explicit :func:`configure` wins; otherwise the ``REPRO_CODEGEN``
    environment variable decides (default: off).
    """
    with _ENABLE_LOCK:
        explicit = _ENABLED["value"]
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_CODEGEN", "").strip().lower() in _TRUTHY


def configure(
    enable: Optional[bool] = None, cache_dir_path: Optional[str] = None
) -> None:
    """Switch the backend on/off and/or pin the artifact directory.

    ``enable=None`` keeps the current enablement (environment-driven when
    never set explicitly).  Loaded-kernel memos are dropped so the new
    configuration takes effect immediately; on-disk artifacts are kept
    (that cache is the point).
    """
    if enable is not None:
        with _ENABLE_LOCK:
            _ENABLED["value"] = bool(enable)
    if cache_dir_path is not None:
        _build.configure_build(cache_dir_path)
    _kernels.reset_kernels()


def reset() -> None:
    """Return the backend to its pristine state (tests)."""
    with _ENABLE_LOCK:
        _ENABLED["value"] = None
    _build.configure_build(None)
    _build.reset_build_state()
    _kernels.reset_kernels()


def fingerprint() -> str:
    """Plan-cache key component: native variants change plan identity."""
    return "cg:on" if enabled() else "cg:off"


def bind_metrics(metrics) -> None:
    """Mirror the backend counters into an obs registry."""
    _build.bind_build_metrics(metrics)
    _kernels.bind_dispatch_metric(metrics)


def chain_spec_for_node(node):
    """The native :class:`ChainSpec` of a ``fused_elementwise`` IR node.

    Normalises the node's micro-ops into the spec builder's operand form:
    the chain sentinel stays a chain ref, size-1 constants are baked as
    scalars (only when the bake is value-exact), larger constants and
    runtime values become externs classified by shape.  ``None`` whenever
    any op or operand has no bitwise-exact C form -- the caller then simply
    doesn't offer a native variant.
    """
    from repro.runtime.ir import CHAIN

    output_shape = tuple(node.output.shape)
    if len(output_shape) < 2 or not getattr(node.output, "batch_poly", False):
        return None
    operations = []
    for elem in node.elem_ops:
        operands = []
        for operand in elem.inputs:
            if operand is CHAIN:
                operands.append(("chain",))
                continue
            if operand.kind == "const":
                data = operand.data
                if data is None:
                    return None
                data = _np.asarray(data)
                if data.size == 1:
                    item = data.ravel()[0]
                    value = float(item)
                    if value != item:  # bake would change the value
                        return None
                    operands.append(("scalar", value))
                else:
                    if data.dtype not in (_np.float64, _np.float32):
                        return None
                    operands.append(("extern", tuple(data.shape), False))
            else:
                operands.append((
                    "extern",
                    tuple(operand.shape),
                    bool(getattr(operand, "batch_poly", False)),
                ))
        operations.append((elem.op, operands, dict(elem.ctx)))
    return elementwise_spec(output_shape[1:], operations)


def status() -> Dict[str, object]:
    """Everything observable about the backend, as plain data (CLI)."""
    directory = cache_dir()
    artifacts = 0
    try:
        artifacts = sum(
            1 for name in os.listdir(directory) if name.endswith(".so")
        )
    except OSError:
        pass
    return {
        "enabled": enabled(),
        "compiler": compiler_command(),
        "blas": _blas.dgemm_handle().describe(),
        "cache_dir": directory,
        "artifacts": artifacts,
        "builds": build_counts(),
        "dispatches": dispatch_count(),
    }


def verify_backend() -> Dict[str, object]:
    """Build + bitwise-verify one small kernel per family (CLI ``--verify``).

    Temporarily enables the backend for the probe builds so the command is
    useful on hosts where ``REPRO_CODEGEN`` is unset.  Returns per-family
    admission results plus the build counters' delta.
    """
    before = build_counts()
    with _ENABLE_LOCK:
        previous = _ENABLED["value"]
        _ENABLED["value"] = True
    try:
        conv = native_conv_kernel(
            ConvGeom(c_in=3, h=8, w=8, kh=3, kw=3, sh=1, sw=1, ph=1, pw=1,
                     c_out=4),
            epilogue_spec((4, 0, 0), True, True, [
                ("relu", [("chain",)], {}),
            ]),
        )
        linear = native_linear_kernel(
            LinearGeom(in_features=16, out_features=8),
            epilogue_spec((8,), False, False, []),
        )
        chain = elementwise_spec(
            (4, 8, 8),
            [
                ("add", [("extern", (2, 4, 8, 8), True), ("scalar", 0.5)], {}),
                ("clamp", [("chain",)], {"min": 0.0, "max": 6.0}),
            ],
        )
        elem = (
            native_elementwise_kernel(chain) if chain is not None else None
        )
    finally:
        with _ENABLE_LOCK:
            _ENABLED["value"] = previous
    after = build_counts()
    return {
        "conv2d": conv is not None,
        "linear": linear is not None,
        "elementwise": elem is not None,
        "builds_before": before,
        "builds_after": after,
        "built": after.get("built", 0) - before.get("built", 0),
        "cached": after.get("cached", 0) - before.get("cached", 0),
        "failed": after.get("failed", 0) - before.get("failed", 0),
        "compiler": compiler_command(),
        "blas": _blas.dgemm_handle().describe(),
        "cache_dir": cache_dir(),
    }
