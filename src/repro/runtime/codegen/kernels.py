"""Build, verify, memoise and dispatch native kernels.

The only way a native kernel reaches execution is through
:func:`native_conv_kernel` / :func:`native_linear_kernel` /
:func:`native_elementwise_kernel`, and each of those enforces the variant
registry's admission rule *empirically*: after emitting and compiling the
artifact, it runs a seeded random probe through both the native kernel and
the exact numpy reference path (the same :mod:`repro.kernels` +
``executor._apply_elem`` calls the plan would make) and compares the
output **byte for byte**, at two batch sizes.  Floating-point results are
determined by operation order, not operand values, so a signature that
matches on the probe matches on every input of that shape; a signature
that doesn't (e.g. single-column GEMMs, where numpy takes a different
BLAS path) is memoised as absent and numpy serves it.

Everything is cached at the right layer: the ``.so`` on disk (shared
across processes, keyed by source hash), the loaded+verified wrapper in a
process-wide memo (keyed by the frozen geometry/spec dataclasses), and
the dgemm handle once per process.  Every successful native call bumps
``codegen_dispatch_total``.
"""

from __future__ import annotations

import ctypes
import hashlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.codegen import build as _build
from repro.runtime.codegen import emitter as _emitter
from repro.runtime.codegen.blas import dgemm_handle
from repro.runtime.codegen.emitter import (
    ChainSpec,
    ConvGeom,
    EpilogueSpec,
    LinearGeom,
)

__all__ = [
    "NativeChain",
    "NativeConv",
    "NativeLinear",
    "dispatch_count",
    "native_conv_kernel",
    "native_elementwise_kernel",
    "native_linear_kernel",
    "native_ready",
    "reset_kernels",
]

_LOCK = threading.Lock()
_KERNELS: Dict[tuple, Optional[object]] = {}
_DISPATCH = {"count": 0}
_METRIC = [None]

_EMPTY_EXTERNS = (ctypes.c_void_p * 1)()

_GEMM_ARGTYPES = [
    ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64,
    ctypes.c_void_p, ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p,
    ctypes.POINTER(ctypes.c_void_p),
]
_ELEM_ARGTYPES = [
    ctypes.c_void_p, ctypes.POINTER(ctypes.c_void_p), ctypes.c_int64,
]


def dispatch_count() -> int:
    """Total successful native-kernel invocations this process."""
    return _DISPATCH["count"]


def _dispatched() -> None:
    _DISPATCH["count"] += 1
    family = _METRIC[0]
    if family is not None:
        family.inc()


def bind_dispatch_metric(metrics) -> None:
    """Mirror the dispatch counter into ``codegen_dispatch_total``."""
    family = metrics.counter(
        "codegen_dispatch_total",
        "Steps served by a generated native kernel.",
    )
    handle = family._default()
    if _DISPATCH["count"]:
        handle._force(_DISPATCH["count"])
    _METRIC[0] = handle


def reset_kernels() -> None:
    """Drop every loaded-kernel memo (tests / reconfiguration)."""
    with _LOCK:
        _KERNELS.clear()


def native_ready(need_blas: bool = True) -> bool:
    """Cheap gate: backend enabled, compiler present, BLAS bridge alive."""
    from repro.runtime.codegen import enabled

    if not enabled():
        return False
    if _build.compiler_command() is None:
        return False
    if need_blas and not dgemm_handle().ok:
        return False
    return True


def _externs_array(externs: Sequence[np.ndarray]):
    if not externs:
        return _EMPTY_EXTERNS
    return (ctypes.c_void_p * len(externs))(
        *[int(array.ctypes.data) for array in externs]
    )


class _GemmKernel:
    """Shared call discipline of the two GEMM-backed artifact families."""

    __slots__ = ("geom", "epilogue", "_fn", "_dgemm", "_dgemv")

    def __init__(self, fn, geom, epilogue: Optional[EpilogueSpec]):
        self.geom = geom
        self.epilogue = epilogue
        self._fn = fn
        handle = dgemm_handle()
        self._dgemm = handle.address
        self._dgemv = handle.gemv_address

    def run(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        out: np.ndarray,
        scale: float = 0.0,
        shift: Optional[np.ndarray] = None,
        externs: Sequence[np.ndarray] = (),
    ) -> bool:
        status = self._fn(
            int(x.ctypes.data), int(weight.ctypes.data), int(out.ctypes.data),
            int(x.shape[0]), self._dgemm, self._dgemv, float(scale),
            None if shift is None else int(shift.ctypes.data),
            _externs_array(externs),
        )
        if status != 0:
            return False
        _dispatched()
        return True


class NativeConv(_GemmKernel):
    """Loaded conv2d artifact: raw NCHW input -> (N, C_out, OH, OW) output."""

    __slots__ = ()


class NativeLinear(_GemmKernel):
    """Loaded linear artifact: (N, in) @ baked (in, out) -> (N, out)."""

    __slots__ = ()


class NativeChain:
    """Loaded fused-elementwise artifact: one flat loop over the buffer."""

    __slots__ = ("spec", "_fn")

    def __init__(self, fn, spec: ChainSpec):
        self.spec = spec
        self._fn = fn

    def run(
        self, buf: np.ndarray, externs: Sequence[np.ndarray], batch: int
    ) -> bool:
        status = self._fn(
            int(buf.ctypes.data), _externs_array(externs), int(batch)
        )
        if status != 0:
            return False
        _dispatched()
        return True


# --------------------------------------------------------------------------
# Verification: the admission rule, enforced empirically per signature
# --------------------------------------------------------------------------

def _rng(tag: str) -> np.random.Generator:
    digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _probe_array(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    array = rng.standard_normal(shape)
    flat = array.reshape(-1)
    if flat.size >= 4:
        flat[:: max(1, flat.size // 7)] = 0.0
        flat[1:: max(1, flat.size // 5)] *= -1.0
        flat[2] = -0.0
    return array


def _extern_probes(
    rng: np.random.Generator,
    modes: Tuple[str, ...],
    batch: int,
    x_shape: Tuple[int, ...],
    channels: int,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """(native flat arrays, numpy broadcast-shaped views) per extern slot."""
    native: List[np.ndarray] = []
    replay: List[np.ndarray] = []
    for mode in modes:
        if mode == "full":
            array = _probe_array(rng, (batch,) + x_shape)
        elif mode == "sample":
            array = _probe_array(rng, x_shape)
        else:  # channel
            array = _probe_array(rng, (channels,))
        native.append(np.ascontiguousarray(array))
        if mode == "channel" and len(x_shape) == 3:
            replay.append(native[-1].reshape(channels, 1, 1))
        else:
            replay.append(native[-1])
    return native, replay


def _replay_epilogue(
    raw: np.ndarray,
    scale: Optional[float],
    shift: Optional[np.ndarray],
    epilogue: Optional[EpilogueSpec],
    replay_externs: Sequence[np.ndarray],
) -> np.ndarray:
    """The executor's exact epilogue semantics (same ufuncs, same order)."""
    from repro.runtime.executor import _apply_elem

    if epilogue is None:
        return raw
    if epilogue.has_scale:
        raw *= np.float64(scale)
    if epilogue.has_shift:
        raw += shift
    for op in epilogue.ops:
        arrays = []
        for ref in op.refs:
            if ref.kind == "chain":
                arrays.append(raw)
            elif ref.kind == "scalar":
                arrays.append(np.float64(ref.value))
            else:
                arrays.append(replay_externs[ref.index])
        ctx = {"min": op.lo, "max": op.hi} if op.op == "clamp" else {}
        raw = _apply_elem(op.op, arrays, ctx, raw)
    return raw


def _verify_conv(
    kernel: NativeConv, geom: ConvGeom, epilogue: Optional[EpilogueSpec]
) -> bool:
    from repro import kernels as ref_kernels

    tag = f"conv|{geom}|{epilogue.detail() if epilogue else ''}"
    rng = _rng(tag)
    modes = epilogue.extern_modes if epilogue is not None else ()
    for batch in (1, 3):
        x = _probe_array(rng, (batch, geom.c_in, geom.h, geom.w))
        weight = np.ascontiguousarray(
            _probe_array(rng, (geom.c_out, geom.k_rows))
        )
        cols, _, oh, ow = ref_kernels.im2col(
            x, (geom.kh, geom.kw), (geom.sh, geom.sw), (geom.ph, geom.pw)
        )
        reference = np.empty((batch, geom.c_out, geom.patches))
        ref_kernels.matmul_cols(weight, cols, out=reference)
        reference = reference.reshape(batch, geom.c_out, oh, ow)
        scale = 1.0 / 3.0 if epilogue is not None and epilogue.has_scale else None
        shift = None
        if epilogue is not None and epilogue.has_shift:
            shift = np.ascontiguousarray(_probe_array(rng, (geom.c_out,)))
        native_ext, replay_ext = _extern_probes(
            rng, modes, batch, (geom.c_out, geom.oh, geom.ow), geom.c_out
        )
        reference = _replay_epilogue(
            reference, scale,
            None if shift is None else shift.reshape(1, geom.c_out, 1, 1),
            epilogue, replay_ext,
        )
        actual = np.empty((batch, geom.c_out, oh, ow))
        ok = kernel.run(
            x, weight, actual,
            scale=0.0 if scale is None else scale,
            shift=shift, externs=native_ext,
        )
        if not ok or actual.tobytes() != reference.tobytes():
            return False
    return True


def _verify_linear(
    kernel: NativeLinear, geom: LinearGeom, epilogue: Optional[EpilogueSpec]
) -> bool:
    tag = f"linear|{geom}|{epilogue.detail() if epilogue else ''}"
    rng = _rng(tag)
    modes = epilogue.extern_modes if epilogue is not None else ()
    # Batch 1 exercises the gemv branch; 2 and 5 the gemm one.
    for batch in (1, 2, 5):
        x = np.ascontiguousarray(
            _probe_array(rng, (batch, geom.in_features))
        )
        weight = np.ascontiguousarray(
            _probe_array(rng, (geom.in_features, geom.out_features))
        )
        reference = np.empty((batch, geom.out_features))
        np.matmul(x, weight, out=reference)
        scale = 1.0 / 3.0 if epilogue is not None and epilogue.has_scale else None
        shift = None
        if epilogue is not None and epilogue.has_shift:
            shift = np.ascontiguousarray(
                _probe_array(rng, (geom.out_features,))
            )
        native_ext, replay_ext = _extern_probes(
            rng, modes, batch, (geom.out_features,), geom.out_features
        )
        reference = _replay_epilogue(
            reference, scale, shift, epilogue, replay_ext
        )
        actual = np.empty((batch, geom.out_features))
        ok = kernel.run(
            x, weight, actual,
            scale=0.0 if scale is None else scale,
            shift=shift, externs=native_ext,
        )
        if not ok or actual.tobytes() != reference.tobytes():
            return False
    return True


def _verify_elementwise(kernel: NativeChain, spec: ChainSpec) -> bool:
    from repro.runtime.executor import _apply_elem

    rng = _rng(f"elem|{spec.x_shape}|{spec.detail()}")
    for batch in (1, 3):
        native_ext, replay_ext = _extern_probes(
            rng, spec.extern_modes, batch, spec.x_shape,
            spec.x_shape[0] if len(spec.x_shape) == 3 else 1,
        )
        buf: Optional[np.ndarray] = None
        for op in spec.ops:
            arrays = []
            for ref in op.refs:
                if ref.kind == "chain":
                    arrays.append(buf)
                elif ref.kind == "scalar":
                    arrays.append(np.float64(ref.value))
                else:
                    arrays.append(replay_ext[ref.index])
            if buf is None:
                if len(arrays) == 2:
                    shape = np.broadcast_shapes(
                        np.shape(arrays[0]), np.shape(arrays[1])
                    )
                else:
                    shape = np.shape(arrays[0])
                if tuple(shape) != (batch,) + spec.x_shape:
                    return False
                buf = np.empty(shape)
            ctx = {"min": op.lo, "max": op.hi} if op.op == "clamp" else {}
            buf = _apply_elem(op.op, arrays, ctx, buf)
        actual = np.empty((batch,) + spec.x_shape)
        if not kernel.run(actual, native_ext, batch):
            return False
        if buf is None or actual.tobytes() != buf.tobytes():
            return False
    return True


# --------------------------------------------------------------------------
# Build + verify + memoise
# --------------------------------------------------------------------------

def _load_fn(so_path: str, argtypes) -> Optional[object]:
    try:
        library = ctypes.CDLL(so_path)
        fn = library.repro_kernel
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int
    fn.argtypes = argtypes
    return fn


def _materialise(key: tuple, emit, load_and_verify):
    """Shared memo discipline: emit/build/verify once, cache the outcome."""
    with _LOCK:
        if key in _KERNELS:
            return _KERNELS[key]
    source = emit()
    so_path = _build.build_shared_object(source, tag=key[0])
    kernel = None
    if so_path is not None:
        kernel = load_and_verify(so_path)
    with _LOCK:
        _KERNELS[key] = kernel
    return kernel


def native_conv_kernel(
    geom: ConvGeom, epilogue: Optional[EpilogueSpec] = None
) -> Optional[NativeConv]:
    """The verified native conv2d kernel for this signature, or ``None``."""
    if not native_ready():
        return None
    if geom.patches <= 1 or geom.c_out <= 1 or geom.k_rows <= 1:
        return None  # single-row/column GEMMs take a different numpy path

    key = ("conv", geom, epilogue)

    def _load(so_path: str) -> Optional[NativeConv]:
        fn = _load_fn(so_path, _GEMM_ARGTYPES)
        if fn is None:
            return None
        kernel = NativeConv(fn, geom, epilogue)
        return kernel if _verify_conv(kernel, geom, epilogue) else None

    return _materialise(
        key, lambda: _emitter.emit_conv(geom, epilogue), _load
    )


def native_linear_kernel(
    geom: LinearGeom, epilogue: Optional[EpilogueSpec] = None
) -> Optional[NativeLinear]:
    """The verified native linear kernel for this signature, or ``None``."""
    if not native_ready():
        return None
    if dgemm_handle().gemv_address == 0:
        return None  # no bitwise batch-1 path without the gemv bridge
    if geom.out_features <= 1 or geom.in_features <= 1:
        return None

    key = ("linear", geom, epilogue)

    def _load(so_path: str) -> Optional[NativeLinear]:
        fn = _load_fn(so_path, _GEMM_ARGTYPES)
        if fn is None:
            return None
        kernel = NativeLinear(fn, geom, epilogue)
        return kernel if _verify_linear(kernel, geom, epilogue) else None

    return _materialise(
        key, lambda: _emitter.emit_linear(geom, epilogue), _load
    )


def native_elementwise_kernel(spec: ChainSpec) -> Optional[NativeChain]:
    """The verified native fused-elementwise kernel, or ``None``."""
    if not native_ready(need_blas=False):
        return None

    key = ("elem", spec)

    def _load(so_path: str) -> Optional[NativeChain]:
        fn = _load_fn(so_path, _ELEM_ARGTYPES)
        if fn is None:
            return None
        kernel = NativeChain(fn, spec)
        return kernel if _verify_elementwise(kernel, spec) else None

    return _materialise(key, lambda: _emitter.emit_elementwise(spec), _load)
