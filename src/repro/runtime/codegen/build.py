"""Compile-and-cache layer of the native codegen backend.

Turns emitted C source (:mod:`repro.runtime.codegen.emitter`) into loaded
shared objects, with every expensive step memoised:

* **compiler discovery** -- honours ``$CC``, falls back to ``cc`` / ``gcc``
  / ``clang`` on ``$PATH``; a missing or broken compiler marks the whole
  backend unavailable (never an error -- numpy simply keeps serving);
* **on-disk build cache** -- artifacts are keyed by
  ``sha256(source + compiler + flags)``, so identical kernels are compiled
  **at most once per machine**, not once per process: a shard worker that
  compiles the same plan as its parent finds the parent's ``.so`` and just
  ``dlopen``\\ s it.  The cache directory defaults to a ``codegen/``
  directory next to the active tuning cache (the two caches travel
  together), overridable via :func:`configure` or ``$REPRO_CODEGEN_CACHE``;
* **process-wide build lock** -- concurrent compilations of one artifact
  serialise in-process, and the ``.so`` is moved into place with an atomic
  ``os.replace`` so concurrent *processes* can race harmlessly (both build,
  last rename wins, both results are identical by construction).

Every build outcome is counted (``built`` / ``cached`` / ``failed`` /
``disabled``) and mirrored into a :class:`~repro.obs.registry.MetricRegistry`
as ``codegen_builds_total{status}`` on :func:`bind_metrics`.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Dict, Optional

__all__ = [
    "build_shared_object",
    "cache_dir",
    "clear_cache",
    "compiler_command",
    "configure_build",
    "build_counts",
    "reset_build_state",
]

#: Compilation flags.  ``-std=c99`` keeps GCC's floating-point contraction
#: off (no surprise FMAs) and ``-ffp-contract=off`` makes that explicit for
#: clang.  ``-O3`` never enables value-changing FP optimisations (that
#: would take ``-ffast-math``) but it does if-convert and vectorise the
#: branchy epilogue ternaries -- at ``-O2`` the relu compare becomes a
#: data-dependent branch that mispredicts on every other element of fresh
#: GEMM output.  The admission probe re-verifies bitwise identity per
#: signature regardless of flag level.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99", "-ffp-contract=off")

_LOCK = threading.Lock()
_STATE: Dict[str, Optional[str]] = {"cache_dir": None}
#: Memoised compiler probe: ``{"key": env-CC-value, "cc": command-or-None}``.
_COMPILER: Dict[str, Optional[str]] = {}
_COUNTS: Dict[str, int] = {"built": 0, "cached": 0, "failed": 0, "disabled": 0}
_METRIC_FAMILY = None


def _count(status: str) -> None:
    with _LOCK:
        _COUNTS[status] = _COUNTS.get(status, 0) + 1
        family = _METRIC_FAMILY
    if family is not None:
        family.labels(status=status).inc()


def build_counts() -> Dict[str, int]:
    """Snapshot of build outcomes since process start (or last reset)."""
    with _LOCK:
        return dict(_COUNTS)


def bind_build_metrics(metrics) -> None:
    """Mirror the build counters into ``codegen_builds_total{status}``."""
    global _METRIC_FAMILY
    family = metrics.counter(
        "codegen_builds_total",
        "Native-kernel build attempts by outcome.",
        labels=("status",),
    )
    with _LOCK:
        for status, count in _COUNTS.items():
            if count:
                family.labels(status=status)._force(count)
        _METRIC_FAMILY = family


def configure_build(cache_dir_path: Optional[str]) -> None:
    """Pin the on-disk artifact directory (``None`` returns to auto)."""
    with _LOCK:
        _STATE["cache_dir"] = (
            None if cache_dir_path is None else os.path.abspath(cache_dir_path)
        )


def reset_build_state() -> None:
    """Forget the compiler probe and counters (tests / ``configure``)."""
    global _METRIC_FAMILY
    with _LOCK:
        _COMPILER.clear()
        for key in _COUNTS:
            _COUNTS[key] = 0
        _METRIC_FAMILY = None


def cache_dir() -> str:
    """Resolve the artifact directory.

    Priority: explicit :func:`configure_build` > ``$REPRO_CODEGEN_CACHE`` >
    a ``codegen/`` directory next to the active tuning cache > a per-user
    default.  The first resolution that does not come from an active tuning
    scope is *sticky* for the life of the process, so selection-time and
    lowering-time builds of one compile land in one directory.
    """
    with _LOCK:
        pinned = _STATE["cache_dir"]
    if pinned is not None:
        return pinned
    env = os.environ.get("REPRO_CODEGEN_CACHE")
    if env:
        return os.path.abspath(env)
    from repro.runtime.tuning import active_tuning

    tuner, _ = active_tuning()
    if tuner is not None and tuner.config.cache is not None:
        base = os.path.dirname(os.path.abspath(tuner.config.cache.path))
        return os.path.join(base, "codegen")
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "codegen"
    )


def compiler_command() -> Optional[str]:
    """The C compiler to invoke, or ``None`` when the host has none.

    ``$CC`` wins when set (even if broken -- a broken ``$CC`` means "no
    compiler", it does not silently fall back, so ``CC=/bin/false`` is a
    faithful no-compiler simulation).  The probe is memoised per ``$CC``
    value, so tests that monkeypatch the environment re-probe.
    """
    env_cc = os.environ.get("CC", "")
    with _LOCK:
        if _COMPILER.get("key") == env_cc and "cc" in _COMPILER:
            return _COMPILER["cc"]
    if env_cc:
        resolved = shutil.which(env_cc)
    else:
        resolved = next(
            (found for name in ("cc", "gcc", "clang")
             if (found := shutil.which(name))),
            None,
        )
    with _LOCK:
        _COMPILER["key"] = env_cc
        _COMPILER["cc"] = resolved
    return resolved


def source_key(source: str) -> str:
    """Content key of one artifact: source text + compiler + flags."""
    compiler = compiler_command() or "<none>"
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00" + compiler.encode("utf-8"))
    digest.update(b"\x00" + " ".join(CFLAGS).encode("utf-8"))
    return digest.hexdigest()[:20]


def build_shared_object(source: str, tag: str) -> Optional[str]:
    """Compile ``source`` to a cached ``.so``; returns its path or ``None``.

    A cached artifact is returned without invoking the compiler at all
    (counted ``cached``); otherwise the source is written next to the
    artifact for inspection, compiled under the process-wide lock, and
    moved into place atomically.  Any failure -- no compiler, non-zero
    exit, timeout -- is counted ``failed`` and reported as ``None``.
    """
    compiler = compiler_command()
    key = source_key(source)
    directory = cache_dir()
    so_path = os.path.join(directory, f"{tag}-{key}.so")
    if os.path.exists(so_path):
        _count("cached")
        return so_path
    if compiler is None:
        _count("failed")
        return None
    # _count takes _LOCK itself, so the outcome is recorded after the
    # critical section (a non-reentrant lock must never nest).
    with _LOCK:
        if os.path.exists(so_path):
            status = "cached"
        else:
            status = "built"
            try:
                os.makedirs(directory, exist_ok=True)
                c_path = os.path.join(directory, f"{tag}-{key}.c")
                with open(c_path, "w", encoding="utf-8") as handle:
                    handle.write(source)
                fd, tmp_so = tempfile.mkstemp(
                    prefix=f"{tag}-{key}.", suffix=".so.tmp", dir=directory
                )
                os.close(fd)
                result = subprocess.run(
                    [compiler, *CFLAGS, "-o", tmp_so, c_path, "-lm"],
                    capture_output=True,
                    timeout=120,
                )
                if result.returncode != 0:
                    os.unlink(tmp_so)
                    status = "failed"
                else:
                    os.replace(tmp_so, so_path)
            except (OSError, subprocess.SubprocessError):
                status = "failed"
    _count(status)
    return so_path if status != "failed" else None


def clear_cache() -> int:
    """Delete every cached artifact (``.c`` / ``.so``); returns the count."""
    directory = cache_dir()
    removed = 0
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return 0
    for name in names:
        if name.endswith((".so", ".c", ".so.tmp")):
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                continue
    return removed
