"""Bridge to numpy's own vendored BLAS, for bitwise-identical native GEMMs.

A naive C matmul loop can never be admitted by the variant registry's
bitwise rule: float addition is not associative, and any summation order
other than the one ``np.matmul`` uses drifts in the last ulp.  The fix is
to not reimplement the GEMM at all -- this module ``dlopen``\\ s the exact
OpenBLAS shared library that numpy itself links (the ``numpy.libs``
wheel-vendored copy), resolves its ILP64 ``cblas_dgemm`` symbol, and hands
the raw function pointer to the generated C kernels.  Same library, same
code path, same instruction stream => the native conv/linear kernels
produce the same bits as ``np.matmul``.

Discovery is defensive at every step (no ``numpy.libs`` directory, no
known symbol name, a probe mismatch) and memoised: on any failure the
handle reports unavailable and the GEMM-backed kernel families simply do
not register, leaving the elementwise family (which needs no BLAS) and the
numpy reference variants intact.
"""

from __future__ import annotations

import ctypes
import glob
import os
import threading
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["DgemmHandle", "dgemm_handle"]

#: Symbol candidates, most-specific first: scipy-openblas wheels export the
#: suffixed ILP64 name; older vendored copies use the plain cblas one.
_SYMBOLS = ("scipy_cblas_dgemm64_", "cblas_dgemm64_", "cblas_dgemm")

_ROW_MAJOR = 101
_NO_TRANS = 111
_TRANS = 112

_ARGTYPES = [
    ctypes.c_int, ctypes.c_int, ctypes.c_int,          # order, transA, transB
    ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,    # m, n, k
    ctypes.c_double, ctypes.c_void_p, ctypes.c_int64,  # alpha, A, lda
    ctypes.c_void_p, ctypes.c_int64,                   # B, ldb
    ctypes.c_double, ctypes.c_void_p, ctypes.c_int64,  # beta, C, ldc
]

_GEMV_ARGTYPES = [
    ctypes.c_int, ctypes.c_int,                        # order, trans
    ctypes.c_int64, ctypes.c_int64,                    # m, n
    ctypes.c_double, ctypes.c_void_p, ctypes.c_int64,  # alpha, A, lda
    ctypes.c_void_p, ctypes.c_int64,                   # x, incx
    ctypes.c_double, ctypes.c_void_p, ctypes.c_int64,  # beta, y, incy
]

_LOCK = threading.Lock()
_CACHED: Optional["DgemmHandle"] = None


@dataclass(frozen=True)
class DgemmHandle:
    """Resolved ``cblas_dgemm`` / ``cblas_dgemv`` pointers plus provenance.

    ``np.matmul`` routes ``(1, k) @ (k, n)`` through a gemv-shaped path,
    not dgemm, so the generated linear kernels need both entry points to
    stay bitwise-identical at every batch size; ``gemv_address`` is 0 when
    only dgemm resolved (the linear family then stays unregistered).
    """

    address: int
    library: str
    symbol: str
    ok: bool
    reason: str
    gemv_address: int = 0

    def describe(self) -> str:
        if self.ok:
            return f"{self.symbol} @ {os.path.basename(self.library)}"
        return f"unavailable ({self.reason})"


def _candidate_libraries() -> Tuple[str, ...]:
    numpy_dir = os.path.dirname(os.path.abspath(np.__file__))
    patterns = (
        os.path.join(numpy_dir, ".libs", "libscipy_openblas*"),
        os.path.join(os.path.dirname(numpy_dir), "numpy.libs",
                     "libscipy_openblas*"),
        os.path.join(numpy_dir, ".libs", "libopenblas*"),
        os.path.join(os.path.dirname(numpy_dir), "numpy.libs",
                     "libopenblas*"),
    )
    found = []
    for pattern in patterns:
        found.extend(sorted(glob.glob(pattern)))
    return tuple(found)


def _probe(fn) -> bool:
    """One seeded GEMM compared byte-for-byte against ``np.matmul``."""
    rng = np.random.default_rng(20260807)
    a = rng.standard_normal((7, 13))
    b = rng.standard_normal((13, 11))
    expected = np.matmul(a, b)
    actual = np.empty_like(expected)
    fn(
        _ROW_MAJOR, _NO_TRANS, _NO_TRANS,
        7, 11, 13,
        1.0, a.ctypes.data, 13,
        b.ctypes.data, 11,
        0.0, actual.ctypes.data, 11,
    )
    return actual.tobytes() == expected.tobytes()


def _probe_gemv(fn) -> bool:
    """One seeded row-vector product vs numpy's batch-1 matmul path."""
    rng = np.random.default_rng(20260808)
    a = rng.standard_normal((1, 13))
    b = rng.standard_normal((13, 11))
    expected = np.matmul(a, b)
    actual = np.empty_like(expected)
    fn(
        _ROW_MAJOR, _TRANS,
        13, 11,
        1.0, b.ctypes.data, 11,
        a.ctypes.data, 1,
        0.0, actual.ctypes.data, 1,
    )
    return actual.tobytes() == expected.tobytes()


def _resolve_gemv(handle, dgemm_symbol: str) -> int:
    """The matching gemv entry point's address, or 0."""
    symbol = dgemm_symbol.replace("dgemm", "dgemv")
    fn = getattr(handle, symbol, None)
    if fn is None:
        return 0
    fn.argtypes = _GEMV_ARGTYPES
    fn.restype = None
    try:
        if not _probe_gemv(fn):
            return 0
    except Exception:
        return 0
    return ctypes.cast(fn, ctypes.c_void_p).value or 0


def _resolve() -> DgemmHandle:
    libraries = _candidate_libraries()
    if not libraries:
        return DgemmHandle(0, "", "", False, "no vendored BLAS library found")
    last_reason = "no cblas_dgemm symbol found"
    for library in libraries:
        try:
            handle = ctypes.CDLL(library)
        except OSError as exc:
            last_reason = f"dlopen failed: {exc}"
            continue
        for symbol in _SYMBOLS:
            fn = getattr(handle, symbol, None)
            if fn is None:
                continue
            fn.argtypes = _ARGTYPES
            fn.restype = None
            try:
                if not _probe(fn):
                    last_reason = f"{symbol} probe not bitwise vs np.matmul"
                    continue
            except Exception as exc:  # ABI mismatch can fault in odd ways
                last_reason = f"{symbol} probe raised: {exc}"
                continue
            address = ctypes.cast(fn, ctypes.c_void_p).value or 0
            return DgemmHandle(
                address, library, symbol, True, "",
                gemv_address=_resolve_gemv(handle, symbol),
            )
    return DgemmHandle(0, "", "", False, last_reason)


def dgemm_handle() -> DgemmHandle:
    """The memoised process-wide dgemm handle (resolved at most once)."""
    global _CACHED
    with _LOCK:
        if _CACHED is None:
            _CACHED = _resolve()
        return _CACHED
