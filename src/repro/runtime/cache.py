"""Content-addressed, bounded cache of compiled quantised execution plans.

Compiling a plan costs a traced forward pass plus lowering, and -- because
tracing runs through the shared model object and thread-local instrumentation
state -- it is serialised process-wide by the compile lock in
:mod:`repro.runtime.plan`.  Serving stacks that hold many (model, bitwidth)
variants therefore want to compile each variant exactly once and share the
resulting (immutable, thread-safe) plan everywhere.

:class:`PlanCache` provides that: entries are keyed by the **content hash**
of the :class:`~repro.quant.deploy.QuantizedModelExport`
(:meth:`~repro.quant.deploy.QuantizedModelExport.content_hash`) together
with an :func:`architecture fingerprint <architecture_fingerprint>` of the
model (module tree + layer geometry -- the export hash covers values, not
topology), the per-sample input shape and the **resolved optimisation-pass
pipeline** (two compilations of one export under different pass
configurations are different plans and cache separately).  Two exports
holding identical codes for the same architecture share one plan no matter
how they were produced (built in process, reloaded from ``.npz``,
deduplicated across model repositories).  Under concurrent lookups of the
same key, exactly one thread compiles while the others wait for its result.

The cache is optionally **bounded**: pass ``capacity`` to evict the
least-recently-used plan once the bound is exceeded, so long-running
adaptive serving (which keeps minting new exports) cannot grow the cache
without limit.  Eviction only drops the cache's reference -- plans are
immutable, so holders of an evicted plan keep executing it unaffected; a
later lookup of the same key simply recompiles.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Sequence, Tuple

from repro.nn.module import Module
from repro.obs.registry import MetricRegistry
from repro.quant.deploy import QuantizedModelExport
from repro.runtime.passes import resolve_passes
from repro.runtime.plan import ExecutionPlan, compile_quantized_plan
from repro.runtime.tuning import tuning_fingerprint

PlanKey = Tuple[str, str, Tuple[int, ...], Tuple[str, ...], str, str]

#: Geometry attributes that change how a module lowers without changing its
#: parameter values (two convs with identical weights but different strides
#: compile to different plans).
_GEOMETRY_ATTRS = ("kernel_size", "stride", "padding", "in_channels", "out_channels",
                   "in_features", "out_features")


def architecture_fingerprint(model: Module) -> str:
    """Hash of the model's *structure*: module tree, types, layer geometry.

    The export content hash covers parameter values; this covers topology,
    so two architectures that happen to share parameter names and values
    (e.g. the same conv stack at different strides) never share a plan.
    """
    digest = hashlib.sha256()
    for name, module in model.named_modules():
        digest.update(f"{name}:{type(module).__name__}".encode("utf-8"))
        for attr in _GEOMETRY_ATTRS:
            value = getattr(module, attr, None)
            if value is not None:
                digest.update(f":{attr}={value}".encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()


class PlanCache:
    """Compile-once LRU cache of quantised plans, safe for concurrent lookups.

    The cache guarantees *exactly one* compilation per distinct key even
    when many threads request it simultaneously: the first requester marks
    the key in flight and compiles (under the global compile lock); the
    rest block on an event and pick up the shared plan.  A failed
    compilation clears the in-flight marker so a later request can retry.

    With a ``capacity``, inserting beyond the bound evicts the
    least-recently-used entry (every hit refreshes recency).  In-flight
    compilations are never evicted, and plans already handed out stay
    valid -- they are immutable; eviction only forgets the reference.
    """

    def __init__(
        self, capacity: Optional[int] = None, *, metrics: Optional[MetricRegistry] = None
    ) -> None:
        """Args:
            capacity: Maximum cached plans; ``None`` (default) is unbounded.
            metrics: Registry to mirror the hit / miss / eviction /
                invalidation counters into (also via :meth:`bind_metrics`).

        Raises:
            ValueError: ``capacity`` is not ``None`` and less than 1.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be at least 1 or None, got {capacity}")
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._inflight: dict = {}
        #: Keys invalidated while their compile was in flight: the landing
        #: plan is handed to its requester but NOT cached, so a stale entry
        #: cannot reappear after the invalidation.
        self._doomed: set = set()
        self.capacity = capacity
        self.hits = 0
        self.compiles = 0
        self.invalidations = 0
        self.evictions = 0
        self._metric_counters: Optional[dict] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: MetricRegistry) -> None:
        """Mirror the cache's counters into a metrics registry.

        The plain-int attributes (``hits``, ``compiles``, ...) remain the
        source of truth; the registry counters ``plan_cache_hits_total``,
        ``plan_cache_misses_total`` (a miss is a compile),
        ``plan_cache_evictions_total`` and
        ``plan_cache_invalidations_total`` are synchronised to the current
        totals on bind and track every subsequent event.  Re-binding
        switches registries (last bind wins).
        """
        counters = {
            "hits": metrics.counter(
                "plan_cache_hits_total", "Plan-cache lookups served from cache."
            ),
            "compiles": metrics.counter(
                "plan_cache_misses_total", "Plan-cache misses (fresh compilations)."
            ),
            "evictions": metrics.counter(
                "plan_cache_evictions_total", "Plans evicted by the LRU capacity bound."
            ),
            "invalidations": metrics.counter(
                "plan_cache_invalidations_total", "Plans dropped by explicit invalidation."
            ),
        }
        with self._lock:
            for attribute, counter in counters.items():
                counter._default()._force(getattr(self, attribute))
            self._metric_counters = counters

    def _count(self, event: str) -> None:
        """Bump one mirrored registry counter (caller holds the lock and
        has already bumped the plain-int attribute)."""
        if self._metric_counters is not None:
            self._metric_counters[event].inc()

    @staticmethod
    def key_for(
        model: Module,
        export: QuantizedModelExport,
        input_shape: Tuple[int, ...],
        fold_affine: bool = True,
        *,
        passes: Optional[Sequence[str]] = None,
        optimize: bool = True,
        tuning=None,
    ) -> PlanKey:
        """The cache key of one (architecture, export, shape, passes, tuning)
        combo.  The tuning component is the *setup's* fingerprint
        (``"heuristic"``, or the tuning cache's path-derived identity):
        heuristic and autotuned compilations of one export select different
        kernel variants and must cache separately.  The codegen component
        does the same for the native backend: a plan compiled with native
        kernels admissible is not the plan compiled without them.
        """
        from repro.runtime import codegen

        return (
            architecture_fingerprint(model),
            export.content_hash(),
            tuple(input_shape),
            resolve_passes(optimize, passes, fold_affine),
            codegen.fingerprint(),
            tuning_fingerprint(tuning),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The cached plan for ``key``, or ``None`` (does not wait on in-flight)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
            return plan

    def get_or_compile(
        self,
        model: Module,
        export: QuantizedModelExport,
        input_shape: Tuple[int, ...],
        *,
        fold_affine: bool = True,
        passes: Optional[Sequence[str]] = None,
        optimize: bool = True,
        validate: bool = True,
        tuning=None,
    ) -> ExecutionPlan:
        """The plan for ``export`` at ``input_shape``, compiling at most once.

        ``model`` supplies the architecture -- it is part of the cache key
        (structure fingerprint), compiles the plan on a miss, and is
        restored to its own state after tracing (see
        :func:`~repro.runtime.plan.compile_quantized_plan`).  The resolved
        ``passes`` / ``optimize`` / ``fold_affine`` configuration and the
        tuning setup's fingerprint are part of the key.
        """
        key = self.key_for(
            model, export, input_shape, fold_affine, passes=passes,
            optimize=optimize, tuning=tuning,
        )
        while True:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plans.move_to_end(key)
                    self.hits += 1
                    self._count("hits")
                    return plan
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self.compiles += 1
                    self._count("compiles")
                    break
            # Another thread is compiling this key; wait and re-check.
            event.wait()
        try:
            plan = compile_quantized_plan(
                model,
                export,
                input_shape,
                fold_affine=fold_affine,
                passes=passes,
                optimize=optimize,
                validate=validate,
                tuning=tuning,
            )
            with self._lock:
                if key in self._doomed:
                    # Invalidated while compiling (the export was swapped
                    # out): hand the plan to this requester but do not
                    # cache the now-stale entry.
                    self._doomed.discard(key)
                else:
                    self._plans[key] = plan
                    self._plans.move_to_end(key)
                    self._evict_over_capacity()
            return plan
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                self._doomed.discard(key)
            event.set()

    def _evict_over_capacity(self) -> None:
        """Drop LRU entries beyond ``capacity`` (caller holds the lock)."""
        if self.capacity is None:
            return
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1
            self._count("evictions")

    def invalidate(self, key: PlanKey) -> bool:
        """Drop one cached plan (e.g. after its export was hot-swapped out).

        Returns ``True`` when an entry was actually removed or a compile of
        the key was in flight (its result will be handed to the requester
        but not cached), ``False`` when the key was absent.  Plans already
        handed out keep working -- they are immutable -- so in-flight
        batches drain on the old plan while new lookups miss and recompile.

        The guarantee is ordering-based: a compile that *began before* the
        invalidation can never re-insert its result afterwards.  A request
        for the same key arriving *after* the invalidation (including a
        waiter of the doomed compile retrying) is a fresh request and is
        compiled and cached normally -- callers replacing an export should
        simply stop requesting the old key, as the repository does.
        """
        with self._lock:
            removed = self._plans.pop(key, None) is not None
            if not removed and key in self._inflight:
                # A compile of this key is racing the invalidation; doom
                # its result so the stale plan cannot land after we return.
                self._doomed.add(key)
                removed = True
            if removed:
                self.invalidations += 1
                self._count("invalidations")
            return removed

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
