"""Kernel variant registry: multiple byte-exact implementations per op.

The executor historically lowered every conv / linear / pool node to one
generic implementation (im2col gather + dense GEMM, auto-dispatched
pooling) regardless of shape, dtype or layout.  This module registers the
alternatives the :func:`~repro.runtime.passes.select_kernels` pass chooses
between:

``conv2d``
    * ``im2col`` -- the reference gather + GEMM lowering;
    * ``im2col_packed`` -- same gather, but the filter matrix is pre-packed
      to contiguous ``float64`` at compile time (quantised plans stop
      casting their integer codes on every call);
    * ``im2col_slices`` -- build the column matrix with ``kh*kw`` strided
      slice copies into a C-contiguous buffer instead of one fancy-index
      gather (which produces a batch-innermost layout the GEMM then has
      to repack); the column *values* are exact copies, so the GEMM is
      handed identical operands and the result is unchanged -- but both
      the gather and the GEMM run substantially faster;
    * ``gemm_1x1`` -- a 1x1 / stride-1 / pad-0 convolution is a plain GEMM
      over the channel dimension: skip the im2col gather copy entirely;
    * ``blocked`` -- batch-chunked im2col for large per-sample column
      matrices: the columns are gathered and multiplied a few samples at
      a time so the working set stays bounded instead of materialising
      one huge ``(N, C*kh*kw, out_h*out_w)`` array.
``linear``
    * ``matmul`` -- the reference dense matmul;
    * ``packed`` -- pre-packed contiguous ``float64`` weight (again, the
      win is for quantised integer-code matrices).
``max_pool2d`` / ``avg_pool2d``
    * ``auto`` -- the reference kernel's own dispatch;
    * ``tiled`` -- force the non-overlapping strided-slice reduction;
    * ``gather`` -- force the general im2col gather path.
``conv2d`` / ``linear`` / ``fused_elementwise`` (opt-in)
    * ``native`` -- a shape-specialized C kernel emitted, compiled and
      bitwise-verified by :mod:`repro.runtime.codegen`.  Only registered
      as *applicable* when the backend is enabled, a compiler exists, the
      artifact builds, and its output matched the reference byte-for-byte
      on a seeded probe -- the same admission rule as every other variant,
      enforced empirically per signature.  Ranked below the reference so
      the zero-cost heuristic never picks it: only a tuner measurement
      (or a persisted tuned record) selects native kernels.

**Byte-exactness is the admission rule**: a variant's ``applies``
predicate may only accept geometries where its output is bitwise-identical
to the reference implementation (the PR-5 pass discipline).  That is why
``avg_pool2d.gather`` excludes geometries the tiled path covers (tiled
sum-then-scale differs in the last ulp from ``mean`` for non-power-of-two
kernel areas) while ``max_pool2d.gather`` accepts everything (max is exact
under any evaluation order), and why the packed variants are admissible at
all (integer codes convert to ``float64`` exactly, and the GEMM then runs
over identical operand values).  The test-suite sweeps every registered
variant against the reference kernels, bit for bit.

Selection is recorded on the IR node (``attrs["kernel_variant"]``) by the
``select_kernels`` pass -- driven by the :mod:`~repro.runtime.tuning`
autotuner when one is active, by the zero-cost heuristic ranking otherwise
-- and the executor's lowering dispatches on it.  A plan compiled without
the pass lowers every node to the reference variant, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import kernels

__all__ = [
    "KernelDesc",
    "KernelVariant",
    "available_variants",
    "heuristic_choice",
    "reference_variant",
    "register_variant",
    "variants_for",
]

#: Ops that have registered variants (everything else lowers one way).
VARIED_OPS = (
    "conv2d", "linear", "max_pool2d", "avg_pool2d", "fused_elementwise"
)

#: Live column-matrix target for the blocked conv (bytes per gathered
#: batch chunk); the full-batch column matrix is never materialised.
_BLOCK_TARGET_BYTES = 256 * 1024

#: Minimum per-sample column-matrix size (bytes) before blocking can pay:
#: below this the whole matrix already fits the cache and blocking only
#: adds loop overhead.
_BLOCK_MIN_BYTES = 1 << 20


@dataclass(frozen=True)
class KernelDesc:
    """Static description of one lowered kernel call site.

    This is what variant applicability predicates and the autotuner's
    cache key see: the op, the per-sample input/output geometry, and the
    baked weight's storage dtype and logical bitwidth.  Two nodes in two
    different models with the same descriptor are the same tuning problem
    -- which is exactly why tuned winners persist and transfer.
    """

    op: str
    x_shape: Tuple[int, ...]  # per-sample input shape, e.g. (C, H, W)
    kernel_size: Tuple[int, int] = (0, 0)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    out_channels: int = 0
    weight_dtype: str = ""
    bits: int = 32
    #: Op-specific refinement of the signature (the fused-elementwise
    #: chain encoding); empty for ops that don't need one, which keeps
    #: every pre-existing cache signature byte-identical.
    detail: str = ""

    def signature(self) -> str:
        """Stable string key for the persistent tuning cache."""
        parts = [
            self.op,
            "x=" + "x".join(str(dim) for dim in self.x_shape),
        ]
        if self.op == "conv2d" or self.op.endswith("pool2d"):
            parts.append(f"k={self.kernel_size[0]}x{self.kernel_size[1]}")
            parts.append(f"s={self.stride[0]}x{self.stride[1]}")
        if self.op == "conv2d":
            parts.append(f"p={self.padding[0]}x{self.padding[1]}")
        if self.op in ("conv2d", "linear"):
            parts.append(f"co={self.out_channels}")
            parts.append(f"w={self.weight_dtype}")
            parts.append(f"b={self.bits}")
        if self.detail:
            parts.append(f"d={self.detail}")
        return "|".join(parts)


@dataclass(frozen=True)
class KernelVariant:
    """One registered implementation of an op.

    ``applies`` admits only geometries where the variant is
    bitwise-identical to the reference; ``rank`` orders the zero-cost
    heuristic (higher wins among applicable variants; the reference is
    rank 0).
    """

    op: str
    name: str
    applies: Callable[[KernelDesc], bool]
    rank: int
    description: str


_REGISTRY: Dict[str, "List[KernelVariant]"] = {op: [] for op in VARIED_OPS}


def register_variant(variant: KernelVariant) -> KernelVariant:
    """Add a variant to the registry (first registration per op = reference).

    Raises:
        ValueError: the op is unknown or the name is already taken.
    """
    if variant.op not in _REGISTRY:
        raise ValueError(
            f"unknown op {variant.op!r}; variants exist for {sorted(_REGISTRY)}"
        )
    if any(existing.name == variant.name for existing in _REGISTRY[variant.op]):
        raise ValueError(f"variant {variant.op}.{variant.name} already registered")
    _REGISTRY[variant.op].append(variant)
    return variant


def variants_for(op: str) -> Tuple[KernelVariant, ...]:
    """Every registered variant of ``op`` (reference first), or ()."""
    return tuple(_REGISTRY.get(op, ()))


def reference_variant(op: str) -> str:
    """Name of the reference (first-registered) variant of ``op``."""
    return _REGISTRY[op][0].name


def available_variants() -> Dict[str, Tuple[str, ...]]:
    """Registered variant names per op (documentation / CLI surface)."""
    return {op: tuple(v.name for v in entries) for op, entries in _REGISTRY.items()}


def applicable_variants(desc: KernelDesc) -> Tuple[KernelVariant, ...]:
    """The variants admissible at ``desc`` (always includes one)."""
    return tuple(v for v in variants_for(desc.op) if v.applies(desc))


def heuristic_choice(desc: KernelDesc) -> str:
    """Zero-cost selection: the highest-ranked applicable variant."""
    candidates = applicable_variants(desc)
    if not candidates:
        return reference_variant(desc.op)
    return max(candidates, key=lambda v: v.rank).name


# --------------------------------------------------------------------------- #
# Quantised-weight helpers (shared with the executor's lowering)
# --------------------------------------------------------------------------- #
def smallest_int_dtype(low: int, high: int) -> np.dtype:
    """The narrowest numpy integer dtype holding ``[low, high]``."""
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= low and high <= info.max:
            return np.dtype(dtype)
    raise ValueError(f"no integer dtype holds [{low}, {high}]")  # pragma: no cover


def centred_codes(qt) -> np.ndarray:
    """Zero-point-centred integer codes of a quantised tensor, narrowed."""
    centred = qt.codes.astype(np.int64) - qt.qparams.zero_point
    dtype = smallest_int_dtype(int(centred.min(initial=0)), int(centred.max(initial=0)))
    return centred.astype(dtype)


# --------------------------------------------------------------------------- #
# Convolution variants
# --------------------------------------------------------------------------- #
def _conv_cols_bytes(desc: KernelDesc) -> int:
    """Per-sample size of the full im2col column matrix, in bytes."""
    channels = desc.x_shape[0]
    out_h, out_w = kernels.conv_output_hw(
        desc.x_shape[1], desc.x_shape[2], desc.kernel_size, desc.stride, desc.padding
    )
    k_rows = channels * desc.kernel_size[0] * desc.kernel_size[1]
    return 8 * k_rows * out_h * out_w


def prepare_conv_weight(variant: str, weight_matrix: np.ndarray) -> np.ndarray:
    """The execution-time form of a conv filter matrix under ``variant``.

    The reference ``im2col`` variant keeps the baked matrix as stored
    (integer codes for quantised plans); every other variant pre-packs it
    (see :func:`repro.kernels.pack_weight_matrix`).
    """
    if variant == "im2col":
        return weight_matrix
    return kernels.pack_weight_matrix(weight_matrix)


def run_conv(
    variant: str,
    x: np.ndarray,
    weight_exec: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one convolution variant; returns ``(N, C_out, out_h*out_w)``.

    ``weight_exec`` must come from :func:`prepare_conv_weight` for the same
    variant.  ``out`` (when given) receives the result for variants that
    can write in place; the returned array is authoritative either way.
    """
    if variant in ("im2col", "im2col_packed"):
        cols, _, _, _ = kernels.im2col(x, kernel_size, stride, padding)
        return kernels.matmul_cols(weight_exec, cols, out=out)
    if variant == "gemm_1x1":
        batch, channels = x.shape[:2]
        flat = x.reshape(batch, channels, x.shape[2] * x.shape[3])
        if out is not None and out.dtype == np.result_type(weight_exec, flat):
            return np.matmul(weight_exec, flat, out=out)
        return np.matmul(weight_exec, flat)  # pragma: no cover - non-f64 input
    if variant == "im2col_slices":
        return _run_conv_slices(x, weight_exec, kernel_size, stride, padding, out)
    if variant == "blocked":
        return _run_conv_blocked(x, weight_exec, kernel_size, stride, padding, out)
    if variant == "native":
        return _run_conv_native(x, weight_exec, kernel_size, stride, padding, out)
    raise ValueError(f"unknown conv2d variant {variant!r}")


def _run_conv_native(
    x: np.ndarray,
    weight_exec: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray],
) -> np.ndarray:
    """The generated C gather+GEMM; falls back to the bitwise-identical
    reference path whenever the artifact or the operands are ineligible."""
    from repro.runtime import codegen

    if (
        out is not None
        and x.ndim == 4
        and x.dtype == np.float64 and x.flags.c_contiguous
        and weight_exec.dtype == np.float64 and weight_exec.flags.c_contiguous
        and out.dtype == np.float64 and out.flags.c_contiguous
    ):
        geom = codegen.ConvGeom(
            c_in=int(x.shape[1]), h=int(x.shape[2]), w=int(x.shape[3]),
            kh=kernel_size[0], kw=kernel_size[1],
            sh=stride[0], sw=stride[1], ph=padding[0], pw=padding[1],
            c_out=int(weight_exec.shape[0]),
        )
        kernel = codegen.native_conv_kernel(geom)
        if kernel is not None and kernel.run(x, weight_exec, out):
            return out
    cols, _, _, _ = kernels.im2col(x, kernel_size, stride, padding)
    return kernels.matmul_cols(weight_exec, cols, out=out)


def _run_conv_slices(
    x: np.ndarray,
    weight_exec: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Slice-copied im2col: contiguous columns without the index gather.

    The reference gathers columns with one fancy-index read, which walks a
    ``C*kh*kw x out_h*out_w`` index table per sample and leaves the batch
    axis innermost -- a layout the GEMM must repack before it can run.
    Here the same column matrix is assembled with ``kh*kw`` strided slice
    copies straight into a C-contiguous buffer.  Every element is an exact
    copy of the same input value the reference gathers, and the GEMM then
    receives operands of identical values, shape and dtype, so the result
    is bitwise identical -- the variant only changes how the bytes got
    there (and how fast).
    """
    padded = kernels.pad_nchw(x, padding[0], padding[1])
    batch, channels, height, width = x.shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    out_h, out_w = kernels.conv_output_hw(height, width, kernel_size, stride, padding)
    cols = np.empty(
        (batch, channels * kernel_h * kernel_w, out_h * out_w), dtype=padded.dtype
    )
    view = cols.reshape(batch, channels, kernel_h, kernel_w, out_h, out_w)
    for di in range(kernel_h):
        for dj in range(kernel_w):
            view[:, :, di, dj] = padded[
                :, :,
                di : di + (out_h - 1) * stride_h + 1 : stride_h,
                dj : dj + (out_w - 1) * stride_w + 1 : stride_w,
            ]
    return kernels.matmul_cols(weight_exec, cols, out=out)


def _run_conv_blocked(
    x: np.ndarray,
    weight_exec: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out: Optional[np.ndarray],
) -> np.ndarray:
    """Batch-chunked im2col: gather + GEMM a few samples at a time.

    The reference materialises the whole batch's column matrix at once;
    this variant pads once, then gathers and multiplies one batch chunk at
    a time, bounding the live column matrix to roughly
    :data:`_BLOCK_TARGET_BYTES`.  Chunking over the *batch* dimension is
    what keeps it admissible: ``np.matmul`` broadcasts the weight over the
    batch and runs one independent, identically-shaped GEMM per sample, so
    each sample's result is computed by exactly the same code path as the
    reference -- bitwise identical by construction.  (Blocking over output
    *columns* would not be: BLAS kernels accumulate differently for
    different matrix widths, which shows up in the last ulp.)
    """
    padded = kernels.pad_nchw(x, padding[0], padding[1])
    batch, channels, height, width = x.shape
    k, i, j, out_h, out_w = kernels.im2col_indices(
        channels, height, width, kernel_size, stride, padding
    )
    k_rows = channels * kernel_size[0] * kernel_size[1]
    positions = out_h * out_w
    per_sample = 8 * k_rows * positions
    chunk = max(1, _BLOCK_TARGET_BYTES // per_sample)
    if out is None or out.dtype != np.result_type(weight_exec, padded):
        out = np.empty(  # pragma: no cover - non-f64 input
            (batch, weight_exec.shape[0], positions), dtype=np.float64
        )
    for start in range(0, batch, chunk):
        stop = min(start + chunk, batch)
        cols = padded[start:stop, k, i, j]
        np.matmul(weight_exec, cols, out=out[start:stop])
    return out


register_variant(KernelVariant(
    op="conv2d",
    name="im2col",
    applies=lambda desc: True,
    rank=0,
    description="reference im2col gather + dense GEMM",
))
register_variant(KernelVariant(
    op="conv2d",
    name="im2col_packed",
    # Packing only changes anything when the stored matrix is integer
    # codes (quantised plans); float weights are already packed.
    applies=lambda desc: desc.bits < 32,
    rank=10,
    description="im2col over a pre-packed float64 filter matrix",
))
register_variant(KernelVariant(
    op="conv2d",
    name="im2col_slices",
    # For a 1x1 / stride-1 / pad-0 conv the "slices" are one full copy
    # that gemm_1x1 skips outright, so the variant stands aside there.
    applies=lambda desc: not (
        desc.kernel_size == (1, 1)
        and desc.stride == (1, 1)
        and desc.padding == (0, 0)
    ),
    rank=25,
    description="slice-copied contiguous columns (no fancy-index gather)",
))
register_variant(KernelVariant(
    op="conv2d",
    name="gemm_1x1",
    applies=lambda desc: (
        desc.kernel_size == (1, 1)
        and desc.stride == (1, 1)
        and desc.padding == (0, 0)
    ),
    rank=30,
    description="1x1 convolution as a plain channel GEMM (no gather)",
))
register_variant(KernelVariant(
    op="conv2d",
    name="blocked",
    applies=lambda desc: _conv_cols_bytes(desc) >= _BLOCK_MIN_BYTES,
    rank=20,
    description="batch-chunked im2col (bounded column working set)",
))


# --------------------------------------------------------------------------- #
# Linear variants
# --------------------------------------------------------------------------- #
def prepare_linear_weight(variant: str, weight: np.ndarray) -> np.ndarray:
    """The execution-time form of a dense weight under ``variant``."""
    if variant == "matmul":
        return weight
    return kernels.pack_weight_matrix(weight)


def run_linear(
    variant: str,
    x: np.ndarray,
    weight_exec: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run one dense-matmul variant against a baked ``(in, out)`` weight."""
    if variant not in ("matmul", "packed", "native"):
        raise ValueError(f"unknown linear variant {variant!r}")
    if variant == "native":
        result = _run_linear_native(x, weight_exec, out)
        if result is not None:
            return result
    if (
        x.ndim == 2
        and np.result_type(x, weight_exec) == np.float64
        and out is not None
    ):
        return np.matmul(x, weight_exec, out=out)
    return x @ weight_exec


def _run_linear_native(
    x: np.ndarray, weight_exec: np.ndarray, out: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """The generated C GEMM, or ``None`` to fall back to the reference."""
    from repro.runtime import codegen

    if (
        out is None
        or x.ndim != 2
        or x.dtype != np.float64 or not x.flags.c_contiguous
        or weight_exec.dtype != np.float64
        or not weight_exec.flags.c_contiguous
        or out.dtype != np.float64 or not out.flags.c_contiguous
    ):
        return None
    geom = codegen.LinearGeom(
        in_features=int(weight_exec.shape[0]),
        out_features=int(weight_exec.shape[1]),
    )
    kernel = codegen.native_linear_kernel(geom)
    if kernel is None or not kernel.run(x, weight_exec, out):
        return None
    return out


register_variant(KernelVariant(
    op="linear",
    name="matmul",
    applies=lambda desc: True,
    rank=0,
    description="reference dense matmul against the stored weight",
))
register_variant(KernelVariant(
    op="linear",
    name="packed",
    applies=lambda desc: desc.bits < 32,
    rank=10,
    description="dense matmul over a pre-packed float64 weight",
))


# --------------------------------------------------------------------------- #
# Pooling variants
# --------------------------------------------------------------------------- #
def _pool_tiled_ok(desc: KernelDesc) -> bool:
    return kernels.pool_tiled_applicable(
        desc.x_shape[1:], desc.kernel_size, desc.stride
    )


def run_pool(
    op: str,
    variant: str,
    x: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Run one pooling variant (``op`` is ``max_pool2d`` or ``avg_pool2d``)."""
    table = _POOL_IMPLS.get((op, variant))
    if table is None:
        raise ValueError(f"unknown pooling variant {op}.{variant!r}")
    return table(x, kernel_size, stride)


_POOL_IMPLS = {
    ("max_pool2d", "auto"): kernels.max_pool2d,
    ("max_pool2d", "tiled"): kernels.max_pool2d_tiled,
    ("max_pool2d", "gather"): kernels.max_pool2d_gather,
    ("avg_pool2d", "auto"): kernels.avg_pool2d,
    ("avg_pool2d", "tiled"): kernels.avg_pool2d_tiled,
    ("avg_pool2d", "gather"): kernels.avg_pool2d_gather,
}

register_variant(KernelVariant(
    op="max_pool2d",
    name="auto",
    applies=lambda desc: True,
    rank=0,
    description="reference kernel with its own tiled/gather dispatch",
))
register_variant(KernelVariant(
    op="max_pool2d",
    name="tiled",
    applies=_pool_tiled_ok,
    rank=10,
    description="non-overlapping strided-slice max reduction",
))
register_variant(KernelVariant(
    op="max_pool2d",
    # Max is exact under any evaluation order, so the gather path is
    # admissible everywhere -- a real two-way tuning choice on
    # non-overlapping geometries.
    name="gather",
    applies=lambda desc: True,
    rank=1,
    description="im2col gather max (general geometry)",
))
register_variant(KernelVariant(
    op="avg_pool2d",
    name="auto",
    applies=lambda desc: True,
    rank=0,
    description="reference kernel with its own tiled/gather dispatch",
))
register_variant(KernelVariant(
    op="avg_pool2d",
    name="tiled",
    applies=_pool_tiled_ok,
    rank=10,
    description="non-overlapping strided-slice sum-and-scale",
))
register_variant(KernelVariant(
    op="avg_pool2d",
    # Sum-then-scale vs mean differ in the last ulp for non-power-of-two
    # kernel areas, so the gather variant only admits geometries the
    # tiled fast path (which the reference dispatch would take) rejects.
    name="gather",
    applies=lambda desc: not _pool_tiled_ok(desc),
    rank=1,
    description="im2col gather mean (overlapping / ragged geometry)",
))


# --------------------------------------------------------------------------- #
# Fused-elementwise variants + native codegen admission
# --------------------------------------------------------------------------- #
# The fused-elementwise op joins the registry so chains become tunable call
# sites like convs are.  Its descriptor carries the chain encoding in
# ``detail``; the matching ChainSpec (which ``detail`` deliberately cannot
# be parsed back into) is registered here by the select_kernels pass.
_CHAIN_SPECS: Dict[Tuple[Tuple[int, ...], str], object] = {}


def register_chain_spec(spec) -> None:
    """Record a fused chain's native spec under its descriptor identity."""
    _CHAIN_SPECS[(tuple(spec.x_shape), spec.detail())] = spec


def chain_spec_for(desc: KernelDesc):
    """The registered ChainSpec matching ``desc``, or ``None``."""
    return _CHAIN_SPECS.get((tuple(desc.x_shape), desc.detail))


def _conv_geom(desc: KernelDesc):
    from repro.runtime import codegen

    if len(desc.x_shape) != 3:
        return None
    return codegen.ConvGeom(
        c_in=int(desc.x_shape[0]), h=int(desc.x_shape[1]),
        w=int(desc.x_shape[2]),
        kh=desc.kernel_size[0], kw=desc.kernel_size[1],
        sh=desc.stride[0], sw=desc.stride[1],
        ph=desc.padding[0], pw=desc.padding[1],
        c_out=desc.out_channels,
    )


def _native_conv_applies(desc: KernelDesc) -> bool:
    # Build + bitwise-verify happens here, in the admission predicate, so
    # the autotuner's measurement budget is never charged for compilation.
    from repro.runtime import codegen

    if not codegen.enabled():
        return False
    geom = _conv_geom(desc)
    if geom is None:
        return False
    return codegen.native_conv_kernel(geom) is not None


def _native_linear_applies(desc: KernelDesc) -> bool:
    from repro.runtime import codegen

    if not codegen.enabled() or len(desc.x_shape) != 1:
        return False
    geom = codegen.LinearGeom(
        in_features=int(desc.x_shape[0]), out_features=desc.out_channels
    )
    return codegen.native_linear_kernel(geom) is not None


def _native_elementwise_applies(desc: KernelDesc) -> bool:
    from repro.runtime import codegen

    if not codegen.enabled() or not desc.detail:
        return False
    spec = chain_spec_for(desc)
    if spec is None:
        return False
    return codegen.native_elementwise_kernel(spec) is not None


register_variant(KernelVariant(
    op="fused_elementwise",
    name="ufunc",
    applies=lambda desc: True,
    rank=0,
    description="reference in-place ufunc chain replay",
))
register_variant(KernelVariant(
    op="fused_elementwise",
    name="native",
    applies=_native_elementwise_applies,
    rank=-10,
    description="generated C single-loop chain (bitwise-verified)",
))
register_variant(KernelVariant(
    op="conv2d",
    name="native",
    applies=_native_conv_applies,
    rank=-10,
    description="generated C im2col+GEMM via numpy's own BLAS "
                "(bitwise-verified)",
))
register_variant(KernelVariant(
    op="linear",
    name="native",
    applies=_native_linear_applies,
    rank=-10,
    description="generated C GEMM via numpy's own BLAS (bitwise-verified)",
))
