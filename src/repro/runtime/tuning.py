"""Micro-benchmark autotuner with a persistent on-disk tuning cache.

The :func:`~repro.runtime.passes.select_kernels` pass must answer one
question per conv / linear / pool node: *which registered variant is
fastest here?*  Three answer modes, in decreasing cost:

* **tuned** -- micro-benchmark every applicable variant on the node's
  traced probe activation (real shapes, real dtypes, the real baked
  weight) under a per-compile time budget, and keep the winner;
* **cached** -- a previous tuning run already answered this
  :meth:`~repro.runtime.variants.KernelDesc.signature` (possibly in
  another process, another model, another day): reuse it with **zero**
  measurements;
* **heuristic** -- no tuner is active, or the budget ran dry: take the
  ranked :func:`~repro.runtime.variants.heuristic_choice`, which costs a
  predicate sweep and nothing else.

:class:`TuningCache` is the persistence layer: a small versioned JSON file
keyed by kernel signature (op, per-sample shape, kernel geometry, weight
dtype, bitwidth) -- deliberately *content-independent*, unlike the
:class:`~repro.runtime.cache.PlanCache`, because a tuning winner depends
only on the kernel call's shape, not the weight values, so winners
transfer across exports, models and hot-swaps.  Each record remembers the
candidate set it was measured over; if the registered variants for a
signature change (a new variant lands in a later release), the stale
record is discarded and the node is **re-tuned** rather than silently
pinned to an old winner.  Hit / miss / retune counts mirror into a
:class:`~repro.obs.registry.MetricRegistry` via :meth:`~TuningCache.bind_metrics`,
exactly like the plan cache's instrumentation.

The tuner itself is deliberately dumb and honest: ``min`` over a few
timed repeats per candidate, wall-clock budgeted, deterministic input (the
traced probe activations, tiled to a serving-representative batch by the
runner factories in :mod:`repro.runtime.passes`).  Every timed kernel
invocation increments
``Autotuner.measurements`` so tests and the CI smoke job can assert that a
warm cache performs *zero* re-tuning measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.obs.registry import MetricRegistry
from repro.runtime.variants import KernelDesc, heuristic_choice

__all__ = [
    "Autotuner",
    "TuningCache",
    "TuningConfig",
    "TuningRecord",
]

#: On-disk schema version; bumping it invalidates every persisted record.
TUNING_CACHE_VERSION = 1


@dataclass(frozen=True)
class TuningRecord:
    """One persisted tuning decision for a kernel signature."""

    variant: str
    best_us: float
    candidates: Tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "best_us": round(self.best_us, 3),
            "candidates": list(self.candidates),
        }

    @staticmethod
    def from_dict(payload: dict) -> "TuningRecord":
        return TuningRecord(
            variant=str(payload["variant"]),
            best_us=float(payload["best_us"]),
            candidates=tuple(payload["candidates"]),
        )


class TuningCache:
    """Persistent signature -> winner store shared across processes.

    Lookups are classified exactly one way each:

    * **hit** -- a record exists and its candidate set matches;
    * **miss** -- no record for the signature;
    * **retune** -- a record exists but was measured over a different
      candidate set (the variant registry changed), so it is discarded.

    The JSON file is written atomically (temp file + rename) by
    :meth:`save`; concurrent tuners in one process serialise on an
    internal lock.  A missing, corrupt or version-mismatched file simply
    starts the cache empty -- tuning is an optimisation, never a
    correctness dependency.
    """

    def __init__(
        self, path: str, *, metrics: Optional[MetricRegistry] = None
    ) -> None:
        """Args:
            path: JSON file backing the cache (created on first save).
            metrics: Registry to mirror hit / miss / retune counters into
                (also available later via :meth:`bind_metrics`).
        """
        self.path = str(path)
        self._lock = threading.Lock()
        self._entries: Dict[str, TuningRecord] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self.retunes = 0
        self._metric_counters: Optional[dict] = None
        self._load()
        if metrics is not None:
            self.bind_metrics(metrics)

    # -- persistence ------------------------------------------------------ #
    def _read_disk(self) -> Dict[str, TuningRecord]:
        """Parse whatever currently backs ``path`` (empty on any damage)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != TUNING_CACHE_VERSION:
            return {}
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return {}
        parsed: Dict[str, TuningRecord] = {}
        for signature, record in entries.items():
            try:
                parsed[signature] = TuningRecord.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue
        return parsed

    def _load(self) -> None:
        self._entries.update(self._read_disk())

    def save(self) -> bool:
        """Merge with the on-disk state, then atomically rename; ``False`` if clean.

        Concurrent savers over one path -- e.g. several shard worker
        processes each tuning a different subset of signatures -- must not
        lose each other's winners to a last-writer-wins rename.  Before
        writing, the file is re-read and any signature this instance does
        not hold is adopted (a *union*; this instance's own records win on
        conflicts, since they are at least as fresh as what it loaded).
        The tempfile is created *in the cache's own directory* (never the
        system temp dir, which may live on another filesystem where
        ``os.replace`` cannot rename atomically) with a per-call unique
        name, so concurrent savers cannot trample each other's
        half-written tempfile; every renamed file is complete.
        """
        with self._lock:
            if not self._dirty:
                return False
            for signature, record in self._read_disk().items():
                self._entries.setdefault(signature, record)
            payload = {
                "version": TUNING_CACHE_VERSION,
                "entries": {
                    signature: record.as_dict()
                    for signature, record in sorted(self._entries.items())
                },
            }
            self._dirty = False
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        handle_fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise
        return True

    # -- metrics ---------------------------------------------------------- #
    def bind_metrics(self, metrics: MetricRegistry) -> None:
        """Mirror hit / miss / retune counters into a metrics registry.

        The plain-int attributes stay the source of truth; the registry
        counters ``tuning_cache_hits_total``, ``tuning_cache_misses_total``
        and ``tuning_cache_retunes_total`` are synchronised on bind and
        track every later event (same contract as
        :meth:`repro.runtime.cache.PlanCache.bind_metrics`).
        """
        counters = {
            "hits": metrics.counter(
                "tuning_cache_hits_total",
                "Tuning-cache lookups answered by a persisted winner.",
            ),
            "misses": metrics.counter(
                "tuning_cache_misses_total",
                "Tuning-cache lookups with no persisted record.",
            ),
            "retunes": metrics.counter(
                "tuning_cache_retunes_total",
                "Persisted winners discarded because the candidate set changed.",
            ),
        }
        with self._lock:
            for attribute, counter in counters.items():
                counter._default()._force(getattr(self, attribute))
            self._metric_counters = counters

    def _count(self, event: str) -> None:
        if self._metric_counters is not None:
            self._metric_counters[event].inc()

    # -- lookups ---------------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, signature: str, candidates: Sequence[str]
    ) -> Optional[TuningRecord]:
        """The persisted winner for ``signature``, if still valid.

        ``candidates`` is the currently-applicable variant set; a record
        measured over a different set is dropped (counted as a retune).
        """
        wanted = tuple(sorted(candidates))
        with self._lock:
            record = self._entries.get(signature)
            if record is None:
                self.misses += 1
                self._count("misses")
                return None
            if tuple(sorted(record.candidates)) != wanted:
                del self._entries[signature]
                self._dirty = True
                self.retunes += 1
                self._count("retunes")
                return None
            self.hits += 1
            self._count("hits")
            return record

    def put(self, signature: str, record: TuningRecord) -> None:
        """Store (or replace) the winner for ``signature``."""
        with self._lock:
            self._entries[signature] = record
            self._dirty = True

    def entries(self) -> Dict[str, TuningRecord]:
        """Snapshot of every persisted record (introspection / CLI)."""
        with self._lock:
            return dict(self._entries)

    def fingerprint(self) -> str:
        """Identity of this cache for plan-cache keying (path-derived)."""
        digest = hashlib.sha256(os.path.abspath(self.path).encode("utf-8"))
        return digest.hexdigest()[:12]


@dataclass
class TuningConfig:
    """How the ``select_kernels`` pass should choose variants.

    Attributes
    ----------
    cache:
        Persistent winner store; ``None`` tunes from scratch every
        compile (measurements are not persisted).
    budget_s:
        Total wall-clock measurement budget per compile.  When it runs
        dry, remaining nodes fall back to the heuristic -- selection
        never blocks a compile indefinitely.
    repeats:
        Timed invocations per candidate (the minimum is kept).
    warmup:
        Untimed invocations per candidate before measuring.
    """

    cache: Optional[TuningCache] = None
    budget_s: float = 1.0
    repeats: int = 3
    warmup: int = 1

    def fingerprint(self) -> str:
        """Plan-cache key component identifying this tuning setup."""
        if self.cache is None:
            return "tuned:ephemeral"
        return f"tuned:{self.cache.fingerprint()}"


class Autotuner:
    """Per-compile variant selector driving a :class:`TuningConfig`.

    One instance accumulates the budget spent and the number of timed
    kernel invocations (``measurements``) across every node of one or
    more compilations; a warm cache keeps ``measurements`` at zero.
    """

    def __init__(self, config: TuningConfig) -> None:
        self.config = config
        self.measurements = 0
        self.spent_s = 0.0
        #: Selection provenance counts: tuned / cached / heuristic.
        self.outcomes: Dict[str, int] = {"tuned": 0, "cached": 0, "heuristic": 0}

    @property
    def budget_left(self) -> float:
        return self.config.budget_s - self.spent_s

    def select(
        self,
        desc: KernelDesc,
        candidates: Sequence[str],
        make_runner: Callable[[str], Callable[[], object]],
    ) -> Tuple[str, str]:
        """Pick a variant for ``desc``; returns ``(variant, provenance)``.

        ``make_runner(name)`` must return a zero-argument callable that
        executes the named variant on representative data (the pass hands
        in the traced probe activation and the real baked weight).
        """
        names = list(candidates)
        if len(names) == 1:
            self.outcomes["heuristic"] += 1
            return names[0], "heuristic"
        signature = desc.signature()
        if self.config.cache is not None:
            record = self.config.cache.get(signature, names)
            if record is not None and record.variant in names:
                self.outcomes["cached"] += 1
                return record.variant, "cached"
        if self.budget_left <= 0.0:
            self.outcomes["heuristic"] += 1
            return heuristic_choice(desc), "heuristic"
        winner, best_s = self._measure(names, make_runner, heuristic_choice(desc))
        if self.config.cache is not None:
            self.config.cache.put(
                signature,
                TuningRecord(
                    variant=winner,
                    best_us=best_s * 1e6,
                    candidates=tuple(sorted(names)),
                ),
            )
        self.outcomes["tuned"] += 1
        return winner, "tuned"

    #: Relative speedup a challenger must show over the heuristically
    #: ranked incumbent to displace it.  Races are a handful of timed
    #: repeats, so near-ties are noise: without a margin, a variant that
    #: "wins" by a sliver at compile time can lose at serving time, and
    #: the selection flips from run to run.  Within the margin the
    #: incumbent is kept -- stable plans, and a measurably-better-only
    #: bar for low-ranked candidates like the native codegen kernels.
    DISPLACE_MARGIN = 0.05

    def _measure(
        self,
        names: Sequence[str],
        make_runner: Callable[[str], Callable[[], object]],
        incumbent: Optional[str] = None,
    ) -> Tuple[str, float]:
        started = time.perf_counter()
        timings: Dict[str, float] = {}
        for name in names:
            runner = make_runner(name)
            for _ in range(self.config.warmup):
                runner()
            candidate_best = float("inf")
            for _ in range(max(1, self.config.repeats)):
                t0 = time.perf_counter()
                runner()
                candidate_best = min(candidate_best, time.perf_counter() - t0)
                self.measurements += 1
            timings[name] = candidate_best
        self.spent_s += time.perf_counter() - started
        best_name = min(timings, key=timings.get)
        if (
            incumbent in timings
            and best_name != incumbent
            and timings[best_name] >= timings[incumbent] * (1.0 - self.DISPLACE_MARGIN)
        ):
            best_name = incumbent
        return best_name, timings[best_name]

    def describe(self) -> str:
        """One-line account: outcome counts, measurements, budget spent."""
        parts = [f"{count} {kind}" for kind, count in self.outcomes.items() if count]
        summary = ", ".join(parts) if parts else "nothing selected"
        return (
            f"{summary}; {self.measurements} measurements, "
            f"{self.spent_s * 1e3:.1f} ms of {self.config.budget_s * 1e3:.0f} ms budget"
        )


# --------------------------------------------------------------------------- #
# Compile-scoped tuning context
# --------------------------------------------------------------------------- #
#: The active tuner/export pair is compile-scoped state: the pass pipeline
#: has a fixed ``Graph -> detail`` signature, so :mod:`repro.runtime.plan`
#: parks the tuner (and the export whose integer codes the lowering will
#: bake) here around ``PassManager.run``.  Thread-local for safety, though
#: compilation is already serialised process-wide.
_SCOPE = threading.local()


@contextmanager
def tuning_scope(tuner: Optional[Autotuner], export=None) -> Iterator[None]:
    """Install ``tuner`` / ``export`` for passes running on this thread."""
    previous = getattr(_SCOPE, "state", None)
    _SCOPE.state = (tuner, export)
    try:
        yield
    finally:
        _SCOPE.state = previous


def active_tuning() -> Tuple[Optional[Autotuner], object]:
    """The (tuner, export) pair installed by the innermost scope."""
    return getattr(_SCOPE, "state", None) or (None, None)


def coerce_tuner(tuning) -> Optional[Autotuner]:
    """Normalise a ``tuning=`` argument into an :class:`Autotuner`.

    Accepts ``None`` (heuristic selection), a :class:`TuningConfig`
    (fresh tuner) or an existing :class:`Autotuner` (shared budget and
    measurement counts across several compiles).
    """
    if tuning is None:
        return None
    if isinstance(tuning, Autotuner):
        return tuning
    if isinstance(tuning, TuningConfig):
        return Autotuner(tuning)
    raise TypeError(
        f"tuning must be None, a TuningConfig or an Autotuner, got {type(tuning).__name__}"
    )


def tuning_fingerprint(tuning) -> str:
    """Plan-cache key component for a ``tuning=`` argument."""
    tuner = tuning if not isinstance(tuning, Autotuner) else tuning.config
    if tuner is None:
        return "heuristic"
    return tuner.fingerprint()
