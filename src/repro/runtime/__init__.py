"""Compiled inference runtime.

Splits execution from autograd: :func:`compile_plan` lowers any
:class:`~repro.nn.module.Module` into a static
:class:`~repro.runtime.plan.ExecutionPlan` of grad-free kernel calls
(constant-folded, batch-norm-fused), and :func:`compile_quantized_plan`
builds the variant that executes a
:class:`~repro.quant.deploy.QuantizedModelExport` directly from its integer
codes.

Plans are immutable compiled artifacts; all per-execution mutable state (the
slot environment and reused scratch buffers) lives in an
:class:`~repro.runtime.plan.ExecutionContext` arena that ``run`` borrows, so
one plan executes concurrently from any number of threads.  Compilation is
serialised process-wide; :class:`~repro.runtime.cache.PlanCache` compiles
each export (keyed by content hash) exactly once under concurrent lookups.
The serving layer in :mod:`repro.serve` runs these plans.
"""

from repro.runtime.cache import PlanCache
from repro.runtime.plan import (
    ExecutionContext,
    ExecutionPlan,
    PlanCompileError,
    compile_lock,
    compile_plan,
    compile_quantized_plan,
)

__all__ = [
    "ExecutionContext",
    "ExecutionPlan",
    "PlanCache",
    "PlanCompileError",
    "compile_lock",
    "compile_plan",
    "compile_quantized_plan",
]
