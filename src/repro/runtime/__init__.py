"""Compiled inference runtime.

Splits execution from autograd: :func:`compile_plan` lowers any
:class:`~repro.nn.module.Module` into a static
:class:`~repro.runtime.plan.ExecutionPlan` of grad-free kernel calls
(constant-folded, batch-norm-fused, buffer-reusing), and
:func:`compile_quantized_plan` builds the variant that executes a
:class:`~repro.quant.deploy.QuantizedModelExport` directly from its integer
codes.  The serving layer in :mod:`repro.serve` runs these plans.
"""

from repro.runtime.plan import (
    ExecutionPlan,
    PlanCompileError,
    compile_plan,
    compile_quantized_plan,
)

__all__ = [
    "ExecutionPlan",
    "PlanCompileError",
    "compile_plan",
    "compile_quantized_plan",
]
