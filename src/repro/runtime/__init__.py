"""Compiled inference runtime: IR -> passes -> memory plan -> executor.

Splits execution from autograd as a four-layer compiler pipeline:

* :mod:`repro.runtime.ir` -- one traced forward pass becomes an explicit
  :class:`~repro.runtime.ir.Graph` of typed values and nodes;
* :mod:`repro.runtime.passes` -- a :class:`~repro.runtime.passes.PassManager`
  runs named, individually toggleable optimisation passes (constant
  folding, CSE, affine fusion, elementwise-chain fusion, dead-node
  elimination, kernel-variant selection), all byte-exact;
* :mod:`repro.runtime.variants` / :mod:`repro.runtime.tuning` -- a registry
  of byte-exact kernel implementations per op and the micro-benchmark
  autotuner (with a persistent :class:`~repro.runtime.tuning.TuningCache`)
  the ``select_kernels`` pass consults to choose between them;
* :mod:`repro.runtime.memory` -- liveness analysis and slot-reuse coloring
  place every scratch buffer in one preallocated per-context arena
  (:class:`~repro.runtime.memory.PlanMemoryStats` reports the savings);
* :mod:`repro.runtime.executor` -- each node lowers to one grad-free kernel
  step of an immutable :class:`~repro.runtime.executor.ExecutionPlan`.

:func:`~repro.runtime.plan.compile_plan` lowers any
:class:`~repro.nn.module.Module`; :func:`~repro.runtime.plan.compile_quantized_plan`
builds the variant that executes a
:class:`~repro.quant.deploy.QuantizedModelExport` directly from its integer
codes.  Plans are immutable compiled artifacts; all per-execution mutable
state (the slot environment and the arena) lives in an
:class:`~repro.runtime.executor.ExecutionContext` that ``run`` borrows, so
one plan executes concurrently from any number of threads.  Compilation is
serialised process-wide; :class:`~repro.runtime.cache.PlanCache` compiles
each export (keyed by content hash and pass configuration) exactly once
under concurrent lookups, with optional LRU bounding.  The serving layer in
:mod:`repro.serve` runs these plans.
"""

from repro.runtime import codegen
from repro.runtime.cache import PlanCache, architecture_fingerprint
from repro.runtime.executor import ExecutionContext, ExecutionPlan
from repro.runtime.ir import Graph, Node, PlanCompileError, Value
from repro.runtime.memory import MemoryPlan, PlanMemoryStats, plan_memory
from repro.runtime.passes import (
    DEFAULT_PASSES,
    PassManager,
    PipelineReport,
    available_passes,
    resolve_passes,
)
from repro.runtime.plan import (
    PlanSpec,
    compile_lock,
    compile_plan,
    compile_quantized_plan,
)
from repro.runtime.tuning import Autotuner, TuningCache, TuningConfig
from repro.runtime.variants import (
    KernelDesc,
    KernelVariant,
    available_variants,
    register_variant,
)

__all__ = [
    "Autotuner",
    "DEFAULT_PASSES",
    "ExecutionContext",
    "ExecutionPlan",
    "Graph",
    "KernelDesc",
    "KernelVariant",
    "MemoryPlan",
    "Node",
    "PassManager",
    "PipelineReport",
    "PlanCache",
    "PlanCompileError",
    "PlanMemoryStats",
    "PlanSpec",
    "TuningCache",
    "TuningConfig",
    "Value",
    "architecture_fingerprint",
    "available_passes",
    "codegen",
    "available_variants",
    "compile_lock",
    "compile_plan",
    "compile_quantized_plan",
    "plan_memory",
    "register_variant",
    "resolve_passes",
]
