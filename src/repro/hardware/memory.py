"""Training-time model memory accounting.

The paper's Figure 5 reports "model size for training": the storage needed
for the model representation used during back-propagation, normalised to a
32-bit model.  APT and the fixed-k trainers that update quantised weights
directly need only ``k`` bits per weight; methods that keep an fp32 master
copy (most of Table I) need the 32-bit master *in addition to* whatever
quantised copy they use for the forward pass, so they save nothing.

Optimiser state (SGD momentum buffers) and activations are the same for every
method at a given architecture and batch size, so they cancel in the
normalised comparison; they can still be included explicitly via the
breakdown for absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.nn.module import Module


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bits of storage attributed to each component of training state."""

    quantised_weights_bits: int
    master_copy_bits: int
    float_parameters_bits: int
    optimiser_state_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.quantised_weights_bits
            + self.master_copy_bits
            + self.float_parameters_bits
            + self.optimiser_state_bits
        )

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


class TrainingMemoryModel:
    """Computes model-for-training memory for a given precision assignment.

    Parameters
    ----------
    include_optimiser_state:
        Whether to count SGD momentum buffers (one fp32 value per parameter).
        Excluded by default because the paper's normalised comparison only
        covers the model representation.
    """

    def __init__(self, include_optimiser_state: bool = False) -> None:
        self.include_optimiser_state = include_optimiser_state

    def breakdown(
        self,
        model: Module,
        weight_bits: Mapping[str, int],
        keeps_master_copy: bool = False,
    ) -> MemoryBreakdown:
        """Memory breakdown for ``model`` with the given per-parameter bits.

        Parameters
        ----------
        weight_bits:
            Mapping from parameter name to stored bitwidth.  Parameters that
            do not appear (biases, BN affine parameters) are counted at 32
            bits under ``float_parameters_bits``.
        keeps_master_copy:
            If true, a full fp32 copy of every quantised parameter is added,
            reproducing the memory behaviour of master-copy baselines.
        """
        quantised_bits = 0
        master_bits = 0
        float_bits = 0
        optimiser_bits = 0
        for name, param in model.named_parameters():
            count = int(param.size)
            if self.include_optimiser_state:
                optimiser_bits += 32 * count
            if name in weight_bits:
                bits = int(weight_bits[name])
                quantised_bits += bits * count
                if keeps_master_copy:
                    master_bits += 32 * count
            else:
                float_bits += 32 * count
        return MemoryBreakdown(
            quantised_weights_bits=quantised_bits,
            master_copy_bits=master_bits,
            float_parameters_bits=float_bits,
            optimiser_state_bits=optimiser_bits,
        )

    def total_bits(
        self,
        model: Module,
        weight_bits: Mapping[str, int],
        keeps_master_copy: bool = False,
    ) -> int:
        return self.breakdown(model, weight_bits, keeps_master_copy).total_bits

    def normalised_to_fp32(
        self,
        model: Module,
        weight_bits: Mapping[str, int],
        keeps_master_copy: bool = False,
    ) -> float:
        """Training model size as a fraction of the all-fp32 model (Figure 5)."""
        fp32_bits = self.breakdown(model, {name: 32 for name, _ in model.named_parameters()}).total_bits
        actual = self.total_bits(model, weight_bits, keeps_master_copy)
        if fp32_bits == 0:
            raise ValueError("model has no parameters")
        return actual / fp32_bits
