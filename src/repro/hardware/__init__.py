"""Analytic hardware cost models for edge-device training.

The paper reports training energy and training-time model size *normalised to
the fp32 baseline*, measured on a GPU.  This subpackage substitutes an
analytic cost model (documented in DESIGN.md):

* :mod:`repro.hardware.energy` -- energy per multiply-accumulate and per
  memory access as a function of operand bitwidth, using the standard
  bit-scaling behaviour of digital arithmetic (multiplier energy roughly
  quadratic in width, adders and data movement roughly linear).
* :mod:`repro.hardware.profile` -- static per-layer MAC / parameter counts of
  a model for a given input shape.
* :mod:`repro.hardware.memory` -- training-time model memory (weights at
  their stored precision, optional fp32 master copies, optimiser state).
* :mod:`repro.hardware.accounting` -- an :class:`EnergyMeter` that integrates
  the cost model over training iterations for any precision strategy.
* :mod:`repro.hardware.device` -- edge-device profiles and a battery
  simulator used by the examples.
"""

from repro.hardware.energy import EnergyModel, OpEnergy
from repro.hardware.profile import LayerProfile, ModelProfile, profile_model
from repro.hardware.memory import TrainingMemoryModel, MemoryBreakdown
from repro.hardware.accounting import EnergyMeter, EnergyReport, LayerBits, inference_energy_pj
from repro.hardware.device import EdgeDeviceProfile, BatterySimulator, DEVICE_PROFILES
from repro.hardware.latency import ComputeProfile, LatencyModel, COMPUTE_PROFILES

__all__ = [
    "ComputeProfile",
    "LatencyModel",
    "COMPUTE_PROFILES",
    "EnergyModel",
    "OpEnergy",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "TrainingMemoryModel",
    "MemoryBreakdown",
    "EnergyMeter",
    "EnergyReport",
    "LayerBits",
    "inference_energy_pj",
    "EdgeDeviceProfile",
    "BatterySimulator",
    "DEVICE_PROFILES",
]
