"""Training-latency model for edge devices.

Complements the energy model: given a device's compute throughput and memory
bandwidth (both bitwidth-dependent), estimate how long one training epoch and
a whole training run take.  The paper only reports energy and memory, but
wall-clock per training session is the third constraint a practitioner faces
on-device, and the examples use this model to translate "X% energy saving"
into "Y more minutes of battery-feasible training per day".

The model is a simple roofline: per layer, the time is the maximum of the
compute time (MACs / effective MAC rate at the operand bitwidth) and the
memory time (bytes moved / bandwidth).  Low precision speeds up both terms --
narrower multipliers clock the same array over more lanes, and fewer bytes
move -- which is the standard first-order argument for quantised training on
edge NPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.hardware.accounting import BACKWARD_MAC_FACTOR, LayerBits
from repro.hardware.profile import ModelProfile


@dataclass(frozen=True)
class ComputeProfile:
    """Throughput description of one device's compute and memory system."""

    name: str
    #: Multiply-accumulates per second at 32-bit operands.
    macs_per_second_fp32: float
    #: Bytes per second of usable memory bandwidth.
    memory_bandwidth_bytes: float
    #: How MAC throughput scales as operands narrow: rate(bits) =
    #: rate_fp32 * (32 / bits) ** throughput_exponent.  1.0 means linear
    #: (twice the lanes at half the width); 0.0 means no benefit.
    throughput_exponent: float = 1.0

    def macs_per_second(self, bits: int) -> float:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        speedup = (32.0 / min(bits, 32)) ** self.throughput_exponent
        return self.macs_per_second_fp32 * speedup


#: Representative edge compute profiles (orders of magnitude, not vendor data).
COMPUTE_PROFILES: Mapping[str, ComputeProfile] = {
    "smartphone_npu": ComputeProfile(
        name="smartphone_npu",
        macs_per_second_fp32=2e11,
        memory_bandwidth_bytes=3e10,
    ),
    "smartphone_cpu": ComputeProfile(
        name="smartphone_cpu",
        macs_per_second_fp32=5e9,
        memory_bandwidth_bytes=1e10,
    ),
    "microcontroller": ComputeProfile(
        name="microcontroller",
        macs_per_second_fp32=5e7,
        memory_bandwidth_bytes=1e8,
    ),
}


class LatencyModel:
    """Roofline latency estimates for training a profiled model."""

    def __init__(self, profile: ModelProfile, compute: ComputeProfile) -> None:
        self.profile = profile
        self.compute = compute

    def _layer_seconds(self, macs: float, parameters: int, bits: LayerBits) -> float:
        forward_compute = macs / self.compute.macs_per_second(bits.forward_bits)
        backward_compute = (
            macs * BACKWARD_MAC_FACTOR / self.compute.macs_per_second(bits.backward_bits)
        )
        # Weight traffic: read for forward, read+write for the update.
        weight_bytes = parameters * (bits.forward_bits + 2 * bits.backward_bits) / 8.0
        memory_time = weight_bytes / self.compute.memory_bandwidth_bytes
        return max(forward_compute + backward_compute, memory_time)

    def inference_seconds(self, batch_size: int, forward_bits: Mapping[str, int]) -> float:
        """Estimated wall-clock of one forward-only (inference) batch.

        ``forward_bits`` maps layer names (weight parameter names, as in the
        model profile) to the operand bitwidth of the forward pass; missing
        layers are assumed fp32.  The roofline is the same as for training
        but without the backward term, and weight traffic is a single read.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        total = 0.0
        for layer in self.profile.layers:
            bits = int(forward_bits.get(layer.name, 32))
            compute = layer.macs * batch_size / self.compute.macs_per_second(bits)
            weight_bytes = layer.parameters * bits / 8.0
            memory = weight_bytes / self.compute.memory_bandwidth_bytes
            total += max(compute, memory)
        return total

    def iteration_seconds(self, batch_size: int, layer_bits: Mapping[str, LayerBits]) -> float:
        """Estimated wall-clock of one training iteration (one mini-batch)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        total = 0.0
        for layer in self.profile.layers:
            bits = layer_bits.get(layer.name, LayerBits(32, 32))
            total += self._layer_seconds(layer.macs * batch_size, layer.parameters, bits)
        return total

    def epoch_seconds(
        self, samples: int, batch_size: int, layer_bits: Mapping[str, LayerBits]
    ) -> float:
        """Estimated wall-clock of one epoch over ``samples`` examples."""
        if samples < 0:
            raise ValueError(f"samples must be non-negative, got {samples}")
        iterations = max(1, (samples + batch_size - 1) // batch_size)
        return iterations * self.iteration_seconds(batch_size, layer_bits)

    def training_seconds(
        self,
        epochs: int,
        samples: int,
        batch_size: int,
        layer_bits: Mapping[str, LayerBits],
    ) -> float:
        """Estimated wall-clock of a whole training run at fixed bitwidths."""
        if epochs < 1:
            raise ValueError(f"epochs must be at least 1, got {epochs}")
        return epochs * self.epoch_seconds(samples, batch_size, layer_bits)

    def speedup_over_fp32(self, layer_bits: Mapping[str, LayerBits], batch_size: int = 1) -> float:
        """How much faster one iteration is than the all-fp32 iteration."""
        fp32 = {layer.name: LayerBits(32, 32) for layer in self.profile.layers}
        quantised_time = self.iteration_seconds(batch_size, layer_bits)
        fp32_time = self.iteration_seconds(batch_size, fp32)
        if quantised_time <= 0:
            raise ValueError("iteration time must be positive")
        return fp32_time / quantised_time
