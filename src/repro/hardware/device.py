"""Edge-device profiles and a simple battery simulator.

These are not needed to reproduce the paper's figures (which are normalised),
but they ground the examples: given a phone-class battery and memory budget,
how many on-device training sessions does APT buy compared to fp32 training?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class EdgeDeviceProfile:
    """A coarse model of an edge device's energy and memory budget."""

    name: str
    battery_joules: float
    memory_bytes: int
    #: Fraction of the battery the owner is willing to spend on training.
    training_energy_budget_fraction: float = 0.1

    @property
    def training_energy_budget_joules(self) -> float:
        return self.battery_joules * self.training_energy_budget_fraction

    def fits_in_memory(self, required_bytes: float) -> bool:
        return required_bytes <= self.memory_bytes


#: A few representative devices.  Battery capacities are typical nameplate
#: values (capacity[mAh] * 3.7 V * 3.6 J/mWh).
DEVICE_PROFILES: Dict[str, EdgeDeviceProfile] = {
    "smartphone": EdgeDeviceProfile(
        name="smartphone", battery_joules=4000 * 3.7 * 3.6, memory_bytes=4 * 1024**3
    ),
    "smartwatch": EdgeDeviceProfile(
        name="smartwatch", battery_joules=300 * 3.7 * 3.6, memory_bytes=512 * 1024**2
    ),
    "microcontroller": EdgeDeviceProfile(
        name="microcontroller", battery_joules=1200 * 3.0 * 3.6, memory_bytes=2 * 1024**2,
        training_energy_budget_fraction=0.5,
    ),
}


class BatterySimulator:
    """Tracks battery drain as training energy is spent."""

    def __init__(self, device: EdgeDeviceProfile) -> None:
        self.device = device
        self.remaining_joules = device.battery_joules
        self.spent_joules = 0.0

    def spend(self, joules: float) -> None:
        """Drain ``joules`` from the battery (clamped at empty)."""
        if joules < 0:
            raise ValueError(f"cannot spend negative energy: {joules}")
        actual = min(joules, self.remaining_joules)
        self.remaining_joules -= actual
        self.spent_joules += actual

    @property
    def fraction_remaining(self) -> float:
        return self.remaining_joules / self.device.battery_joules

    @property
    def empty(self) -> bool:
        return self.remaining_joules <= 0.0

    def sessions_supported(self, joules_per_session: float) -> int:
        """How many training sessions of the given cost fit in the budget."""
        if joules_per_session <= 0:
            raise ValueError("session cost must be positive")
        budget = self.device.training_energy_budget_joules
        return int(budget // joules_per_session)
