"""Energy accounting for a whole training run.

The :class:`EnergyMeter` integrates the analytic cost model over training:
for every epoch it receives the per-layer forward and backward bitwidths from
the active precision strategy, multiplies by the layer MAC counts from the
model profile and by the number of samples processed, and accumulates energy
for the forward pass, the backward pass (charged at twice the forward MACs,
the standard estimate: gradients w.r.t. inputs and w.r.t. weights) and weight
memory traffic.

Everything is reported both in joules and normalised to an fp32 reference
run, because the paper's Figures 4 and 5 are normalised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.hardware.energy import EnergyModel
from repro.hardware.profile import ModelProfile

#: Backward-pass MAC multiplier: computing dL/dx and dL/dW each costs about
#: the same as the forward pass.
BACKWARD_MAC_FACTOR = 2.0


@dataclass(frozen=True)
class LayerBits:
    """Forward and backward operand bitwidths of one layer for one epoch."""

    forward_bits: int
    backward_bits: int

    def __post_init__(self) -> None:
        if self.forward_bits <= 0 or self.backward_bits <= 0:
            raise ValueError("bitwidths must be positive")


@dataclass
class EpochEnergyRecord:
    """Energy spent in one epoch, in picojoules, split by phase."""

    epoch: int
    samples: int
    forward_pj: float
    backward_pj: float
    memory_pj: float

    @property
    def total_pj(self) -> float:
        return self.forward_pj + self.backward_pj + self.memory_pj


@dataclass
class EnergyReport:
    """Cumulative view over a training run."""

    records: List[EpochEnergyRecord] = field(default_factory=list)

    @property
    def total_pj(self) -> float:
        return sum(record.total_pj for record in self.records)

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def cumulative_pj(self) -> List[float]:
        totals: List[float] = []
        running = 0.0
        for record in self.records:
            running += record.total_pj
            totals.append(running)
        return totals

    def up_to_epoch(self, epoch: int) -> float:
        """Total energy spent in epochs [0, epoch] inclusive (picojoules)."""
        return sum(record.total_pj for record in self.records if record.epoch <= epoch)


def inference_energy_pj(
    profile: ModelProfile,
    forward_bits: Mapping[str, int],
    samples: int,
    energy_model: Optional[EnergyModel] = None,
    default_bits: int = 32,
) -> float:
    """Analytic energy of forward-only inference over ``samples`` examples.

    Charges each layer's MACs at its forward bitwidth plus one weight read
    per sample, mirroring the forward/memory terms of
    :meth:`EnergyMeter.record_epoch` without the backward pass.  Used by the
    serving layer to attach a per-batch energy estimate.
    """
    if samples < 0:
        raise ValueError(f"samples must be non-negative, got {samples}")
    model = energy_model or EnergyModel()
    total = 0.0
    for layer in profile.layers:
        bits = int(forward_bits.get(layer.name, default_bits))
        total += layer.macs * samples * model.mac_energy_pj(bits)
        total += layer.parameters * samples * model.memory_access_energy_pj(bits)
    return total


class EnergyMeter:
    """Integrates the energy model over a training run.

    Parameters
    ----------
    profile:
        Static per-layer MAC counts for the model being trained.
    energy_model:
        Bitwidth-to-energy model; defaults to the standard scaling model.
    default_bits:
        Bitwidth assumed for layers the strategy does not report (e.g. a
        strategy that only quantises conv layers leaves the classifier at 32).
    """

    def __init__(
        self,
        profile: ModelProfile,
        energy_model: Optional[EnergyModel] = None,
        default_bits: int = 32,
    ) -> None:
        self.profile = profile
        self.energy_model = energy_model or EnergyModel()
        self.default_bits = default_bits
        self.report = EnergyReport()

    def record_epoch(
        self,
        epoch: int,
        samples: int,
        layer_bits: Mapping[str, LayerBits],
    ) -> EpochEnergyRecord:
        """Account one epoch of training over ``samples`` examples."""
        if samples < 0:
            raise ValueError(f"samples must be non-negative, got {samples}")
        forward_pj = 0.0
        backward_pj = 0.0
        memory_pj = 0.0
        for layer in self.profile.layers:
            bits = layer_bits.get(
                layer.name, LayerBits(self.default_bits, self.default_bits)
            )
            mac_fwd = self.energy_model.mac_energy_pj(bits.forward_bits)
            mac_bwd = self.energy_model.mac_energy_pj(bits.backward_bits)
            forward_pj += layer.macs * samples * mac_fwd
            backward_pj += layer.macs * samples * BACKWARD_MAC_FACTOR * mac_bwd
            # Weight traffic: weights are read for the forward pass and read +
            # written for the update, at their stored precision.
            access = self.energy_model.memory_access_energy_pj(bits.forward_bits)
            memory_pj += layer.parameters * samples * access
            update_access = self.energy_model.memory_access_energy_pj(bits.backward_bits)
            memory_pj += 2.0 * layer.parameters * update_access
        record = EpochEnergyRecord(
            epoch=epoch,
            samples=samples,
            forward_pj=forward_pj,
            backward_pj=backward_pj,
            memory_pj=memory_pj,
        )
        self.report.records.append(record)
        return record

    def fp32_reference_epoch_pj(self, samples: int) -> float:
        """Energy one epoch would cost at fp32 everywhere (the normaliser)."""
        bits = {layer.name: LayerBits(32, 32) for layer in self.profile.layers}
        meter = EnergyMeter(self.profile, self.energy_model, self.default_bits)
        return meter.record_epoch(0, samples, bits).total_pj

    def total_normalised_to_fp32(self, fp32_total_pj: float) -> float:
        """Total energy of this run as a fraction of a reference fp32 run."""
        if fp32_total_pj <= 0:
            raise ValueError("fp32 reference energy must be positive")
        return self.report.total_pj / fp32_total_pj
