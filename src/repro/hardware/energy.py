"""Bitwidth-dependent energy model for arithmetic and memory access.

The absolute constants are taken from the widely cited 45 nm measurements of
Horowitz (ISSCC 2014): a 32-bit float multiply costs about 3.7 pJ, a 32-bit
float add about 0.9 pJ, a 32-bit int multiply about 3.1 pJ, an int add about
0.1 pJ, and an SRAM access on the order of 5 pJ per 32-bit word (DRAM is two
orders of magnitude more).  What matters for reproducing the paper's figures
is not the absolute values -- every result is normalised to the fp32 model --
but the *scaling with bitwidth*:

* multiplier energy scales roughly quadratically with operand width;
* adder / accumulator energy and data movement scale roughly linearly.

Those two scaling laws are what this module encodes.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Reference energies (picojoules) at 32 bits, 45 nm.  Absolute values only
#: matter for the battery-life examples; all paper figures are ratios.
MUL32_PJ = 3.1
ADD32_PJ = 0.9
SRAM_ACCESS32_PJ = 5.0
DRAM_ACCESS32_PJ = 640.0
FP32_MUL_PJ = 3.7
FP32_ADD_PJ = 0.9


@dataclass(frozen=True)
class OpEnergy:
    """Energy (pJ) of the primitive operations at one bitwidth."""

    bits: int
    multiply_pj: float
    add_pj: float
    sram_access_pj: float

    @property
    def mac_pj(self) -> float:
        """One multiply-accumulate."""
        return self.multiply_pj + self.add_pj


class EnergyModel:
    """Scales reference 32-bit energies down to arbitrary bitwidths.

    Parameters
    ----------
    multiplier_exponent:
        Exponent of the multiplier scaling law (2.0 = quadratic, the
        textbook value for array multipliers).
    adder_exponent:
        Exponent for adders / accumulators and data movement (1.0 = linear).
    use_dram:
        If true, memory-access energy uses the DRAM constant instead of SRAM;
        edge accelerators with small on-chip buffers are closer to SRAM,
        which is the default.
    """

    def __init__(
        self,
        multiplier_exponent: float = 2.0,
        adder_exponent: float = 1.0,
        use_dram: bool = False,
    ) -> None:
        if multiplier_exponent <= 0 or adder_exponent <= 0:
            raise ValueError("scaling exponents must be positive")
        self.multiplier_exponent = multiplier_exponent
        self.adder_exponent = adder_exponent
        self.use_dram = use_dram

    def _scale(self, bits: int, exponent: float) -> float:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        return (min(bits, 32) / 32.0) ** exponent

    def op_energy(self, bits: int) -> OpEnergy:
        """Energy of the primitive ops with ``bits``-wide operands."""
        if bits >= 32:
            multiply = FP32_MUL_PJ
            add = FP32_ADD_PJ
        else:
            multiply = MUL32_PJ * self._scale(bits, self.multiplier_exponent)
            add = ADD32_PJ * self._scale(bits, self.adder_exponent)
        access_base = DRAM_ACCESS32_PJ if self.use_dram else SRAM_ACCESS32_PJ
        access = access_base * self._scale(bits, 1.0)
        return OpEnergy(bits=bits, multiply_pj=multiply, add_pj=add, sram_access_pj=access)

    def mac_energy_pj(self, bits: int) -> float:
        """Energy of one multiply-accumulate with ``bits``-wide operands."""
        return self.op_energy(bits).mac_pj

    def memory_access_energy_pj(self, bits: int) -> float:
        """Energy of moving one ``bits``-wide word to/from the working memory."""
        return self.op_energy(bits).sram_access_pj

    def relative_mac_energy(self, bits: int) -> float:
        """MAC energy normalised to the fp32 MAC (what the figures plot)."""
        return self.mac_energy_pj(bits) / self.mac_energy_pj(32)
