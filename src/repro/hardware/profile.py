"""Static per-layer compute profiles.

:func:`profile_model` runs one probe forward pass through a model and records,
for every :class:`~repro.nn.layers.Conv2d` and :class:`~repro.nn.layers.Linear`
module, the number of multiply-accumulates per input sample and the number of
(quantisable) parameters.  The resulting :class:`ModelProfile` is what the
energy meter integrates against.

Profiles are keyed by the *weight parameter name* of each layer so they line
up with the per-layer bitwidths reported by precision strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


@dataclass(frozen=True)
class LayerProfile:
    """Compute and storage footprint of one layer (per input sample)."""

    name: str
    kind: str
    macs: int
    parameters: int
    output_elements: int

    def __post_init__(self) -> None:
        if self.macs < 0 or self.parameters < 0:
            raise ValueError("macs and parameters must be non-negative")


@dataclass
class ModelProfile:
    """Per-layer profiles plus totals, for one model / input-shape pair."""

    input_shape: Tuple[int, ...]
    layers: List[LayerProfile]

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_parameters(self) -> int:
        return sum(layer.parameters for layer in self.layers)

    def by_name(self) -> Dict[str, LayerProfile]:
        return {layer.name: layer for layer in self.layers}

    def macs_for(self, name: str) -> int:
        profile = self.by_name().get(name)
        if profile is None:
            raise KeyError(f"no profile recorded for layer {name!r}")
        return profile.macs


def profile_model(
    model: Module,
    input_shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
) -> ModelProfile:
    """Profile ``model`` for inputs of ``input_shape`` (without batch dim).

    The probe pass temporarily wraps each Conv2d / Linear ``forward`` to
    record input spatial sizes; the model is restored afterwards even if the
    pass raises.
    """
    rng = rng or np.random.default_rng(0)
    records: Dict[int, Tuple[str, str, int, int, int]] = {}
    originals = []

    def make_wrapper(module, name: str):
        original_forward = module.forward

        def wrapped(x: Tensor) -> Tensor:
            out = original_forward(x)
            if isinstance(module, Conv2d):
                out_elements = int(np.prod(out.shape[1:]))
                macs = (
                    out.shape[2]
                    * out.shape[3]
                    * module.kernel_size
                    * module.kernel_size
                    * module.in_channels
                    * module.out_channels
                )
                kind = "conv2d"
            else:
                out_elements = int(np.prod(out.shape[1:]))
                macs = module.in_features * module.out_features
                kind = "linear"
            params = int(module.weight.size)
            if module.bias is not None:
                params += int(module.bias.size)
            records[id(module)] = (name, kind, macs, params, out_elements)
            return out

        return original_forward, wrapped

    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            original, wrapped = make_wrapper(module, f"{name}.weight" if name else "weight")
            originals.append((module, original))
            module.forward = wrapped

    was_training = model.training
    try:
        model.eval()
        probe = Tensor(rng.normal(size=(1,) + tuple(input_shape)))
        with no_grad():
            model(probe)
    finally:
        for module, original in originals:
            module.forward = original
        model.train(was_training)

    layers = [
        LayerProfile(name=name, kind=kind, macs=macs, parameters=params, output_elements=out_elements)
        for name, kind, macs, params, out_elements in records.values()
    ]
    if not layers:
        raise ValueError("model contains no Conv2d or Linear layers to profile")
    return ModelProfile(input_shape=tuple(input_shape), layers=layers)
