"""Injectable monotonic clocks for the observability layer.

Every timestamp the serving stack takes flows through an injectable
``Clock`` -- a zero-argument callable returning monotonic seconds.  In
production that is :data:`MONOTONIC_CLOCK` (``time.perf_counter``); in
tests it is a :class:`ManualClock`, which only moves when the test says so
(``advance``) or by a fixed ``tick`` per reading.  No assertion in the
test suite ever reads the wall clock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: The clock interface: a zero-argument callable returning monotonic
#: seconds.  ``time.perf_counter``, ``time.monotonic`` and
#: :class:`ManualClock` instances all satisfy it.
Clock = Callable[[], float]

#: The production default: high-resolution monotonic wall time.
MONOTONIC_CLOCK: Clock = time.perf_counter


class ManualClock:
    """A deterministic clock that only moves when told to.

    Args:
        start: Initial reading, in seconds.
        tick: Seconds the clock advances *after* every reading.  ``0.0``
            (default) freezes time entirely between :meth:`advance` calls;
            a positive tick makes consecutive readings strictly increasing,
            which gives threaded code (worker pools) non-zero, perfectly
            reproducible span durations without any sleeping.

    Thread-safe: readings and advances are serialised, so concurrent
    readers each observe a distinct, monotonically non-decreasing time.

    Raises:
        ValueError: ``tick`` is negative.
    """

    def __init__(self, start: float = 0.0, *, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError(f"tick must be non-negative, got {tick}")
        self._lock = threading.Lock()
        self._now = float(start)
        self._tick = float(tick)

    def __call__(self) -> float:
        with self._lock:
            now = self._now
            self._now += self._tick
            return now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new reading.

        Raises:
            ValueError: ``seconds`` is negative (the clock is monotonic).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        with self._lock:
            self._now += float(seconds)
            return self._now

    def peek(self) -> float:
        """The current reading without consuming a tick."""
        with self._lock:
            return self._now
