"""Merging metric dumps from multiple processes into one view.

The process-sharded worker pool (:class:`repro.serve.workers.ProcessWorkerPool`)
gives every spawned worker its own private :class:`~repro.obs.registry.MetricRegistry`
-- cross-process metric mutation would need locks in shared memory, and the
registries are tiny.  Workers ship their registries to the parent as the
JSON-ready nested dicts of :meth:`~repro.obs.registry.MetricRegistry.as_dict`
over the stats mailbox; this module folds those dumps into a single
dictionary in the same shape, tagging every series with the shard it came
from so same-named series from different workers stay distinguishable.

The merged dict is *reporting* output (CLI, bench JSON artifacts), not a
live registry: values are a snapshot of each worker at collection time.
"""

from __future__ import annotations

from typing import Dict, Mapping


def merge_registry_dumps(
    dumps: Mapping[str, dict], *, label: str = "shard"
) -> Dict[str, dict]:
    """Fold per-process registry dumps into one labelled dump.

    Args:
        dumps: ``{shard_id: registry.as_dict()}`` -- the mapping returned
            by :meth:`repro.serve.workers.ProcessWorkerPool.worker_metrics`.
        label: Label name carrying the source shard id on every merged
            series (must not collide with an existing label of any metric).

    Returns:
        One dict in the ``MetricRegistry.as_dict`` shape: each metric
        family appears once, with ``label`` appended to its label names
        and every series tagged with its source shard id.

    Raises:
        ValueError: two dumps declare the same metric name with different
            kinds or label sets, or a metric already uses ``label``.
    """
    merged: Dict[str, dict] = {}
    for shard_id in sorted(dumps):
        dump = dumps[shard_id]
        for name, family in dump.items():
            labels = list(family.get("labels", []))
            if label in labels:
                raise ValueError(
                    f"metric {name!r} already has a {label!r} label; "
                    f"pick a different merge label"
                )
            target = merged.get(name)
            if target is None:
                target = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    "labels": labels + [label],
                    "series": [],
                }
                merged[name] = target
            else:
                if target["kind"] != family["kind"]:
                    raise ValueError(
                        f"metric {name!r} is a {family['kind']} in shard "
                        f"{shard_id} but a {target['kind']} in an earlier dump"
                    )
                if target["labels"] != labels + [label]:
                    raise ValueError(
                        f"metric {name!r} has labels {labels} in shard "
                        f"{shard_id} but {target['labels'][:-1]} in an "
                        f"earlier dump"
                    )
            for entry in family.get("series", []):
                tagged = dict(entry)
                tagged["labels"] = {**entry.get("labels", {}), label: str(shard_id)}
                target["series"].append(tagged)
    return merged


def total_counter(merged: Mapping[str, dict], name: str, **labels: str) -> float:
    """Sum one counter/gauge family's series across shards.

    Series are filtered to those matching every given label (the merge
    label itself is usually omitted, summing over shards).

    Args:
        merged: Output of :func:`merge_registry_dumps`.
        name: Metric family name.
        **labels: Label filters; a series must match all of them.

    Returns:
        The sum of matching series values (0.0 when nothing matches).

    Raises:
        KeyError: the family does not exist in the merged dump.
        ValueError: the family is a histogram (sum its ``sum``/``count``
            fields explicitly instead).
    """
    family = merged[name]
    if family["kind"] == "histogram":
        raise ValueError(f"metric {name!r} is a histogram; total_counter sums scalars")
    total = 0.0
    for entry in family["series"]:
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(key) == value for key, value in labels.items()):
            total += float(entry["value"])
    return total
