"""Zero-dependency, thread-safe metrics registry.

The registry is the single sink every serving-stack counter flows into:
Prometheus-shaped :class:`Counter` / :class:`Gauge` / :class:`Histogram`
instruments, grouped into labelled families, owned by one
:class:`MetricRegistry` per serving stack.

Design points:

* **Labelled families.**  ``registry.counter("serve_requests_total",
  labels=("model",))`` returns a :class:`CounterFamily`; ``.labels(
  model="tiny")`` returns the per-series :class:`Counter`.  A family
  declared without labels proxies its single series directly, so
  unlabelled call sites read naturally (``family.inc()``).
* **Cardinality guard.**  Each family caps its distinct label sets
  (default 256); crossing the cap raises :class:`CardinalityError`
  instead of silently growing without bound -- a mislabelled hot path
  (e.g. a request id used as a label value) fails loudly in tests.
* **Snapshot / reset.**  :meth:`MetricRegistry.snapshot` returns an
  immutable, point-in-time :class:`MetricsSnapshot` -- later mutation or
  :meth:`MetricRegistry.reset` cannot change an already-taken snapshot.
* **Thread safety.**  Every instrument serialises its own mutations with
  a leaf lock; no instrument lock is ever held while taking another, so
  callers may update metrics while holding their own locks.
* **Zero dependencies.**  Pure stdlib; renders to Prometheus-style text
  and to JSON-ready dicts without importing anything heavier than
  ``json``.
"""

from __future__ import annotations

import bisect
import re
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricRegistry",
    "MetricsSnapshot",
    "MetricSnapshot",
    "SeriesSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BATCH_SIZE_BUCKETS",
]

_NAME_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed bucket upper bounds (seconds) for serving-latency histograms:
#: 100 µs up to 2.5 s, roughly logarithmic, chosen to resolve both the
#: sub-millisecond kernel times of the tiny paper models and the tens of
#: milliseconds a loaded queue adds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Fixed bucket upper bounds for batch-size histograms (powers of two up
#: to the largest batch any built-in policy dispatches).
DEFAULT_BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class CardinalityError(RuntimeError):
    """A metric family exceeded its bound on distinct label sets."""


# --------------------------------------------------------------------------- #
# Instruments (one per label set)
# --------------------------------------------------------------------------- #
class Counter:
    """A monotonically increasing count (one series of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) atomically.

        Raises:
            ValueError: ``amount`` is negative (counters only go up).
        """
        if amount < 0:
            raise ValueError(f"counters only increase; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value

    def _force(self, value: float) -> None:
        """Set the count absolutely (registry reset / compatibility views)."""
        with self._lock:
            self._value = float(value)

    def _reset(self) -> None:
        self._force(0.0)


class Gauge:
    """A value that can go up and down (one series of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value atomically."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) atomically."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` atomically."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        self.set(0.0)


@dataclass(frozen=True)
class HistogramValue:
    """Immutable point-in-time state of one histogram series.

    ``counts`` has one entry per bucket plus a final overflow entry:
    ``counts[i]`` is the number of observations ``v`` with
    ``boundaries[i-1] < v <= boundaries[i]`` (Prometheus ``le``
    semantics -- an observation exactly on a boundary lands in that
    boundary's bucket); ``counts[-1]`` counts ``v > boundaries[-1]``.
    """

    boundaries: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int

    def cumulative(self) -> Tuple[int, ...]:
        """Cumulative ``le`` counts per boundary (Prometheus bucket form)."""
        total = 0
        out: List[int] = []
        for bucket in self.counts[:-1]:
            total += bucket
            out.append(total)
        return tuple(out)

    def bucket_count(self, le: float) -> int:
        """Observations at or below boundary ``le``.

        Raises:
            KeyError: ``le`` is not one of this histogram's boundaries.
        """
        try:
            index = self.boundaries.index(float(le))
        except ValueError:
            raise KeyError(f"{le} is not a bucket boundary of {self.boundaries}") from None
        return self.cumulative()[index]

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                {"le": boundary, "count": count}
                for boundary, count in zip(self.boundaries, self.cumulative())
            ],
            "overflow": self.counts[-1],
        }


class Histogram:
    """Fixed-boundary distribution of observations (one series of a family)."""

    __slots__ = ("_lock", "boundaries", "_counts", "_sum", "_count")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must strictly increase, got {bounds}")
        self._lock = threading.Lock()
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation atomically."""
        value = float(value)
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def value(self) -> HistogramValue:
        """An immutable snapshot of the series."""
        with self._lock:
            return HistogramValue(
                boundaries=self.boundaries,
                counts=tuple(self._counts),
                sum=self._sum,
                count=self._count,
            )

    @property
    def count(self) -> int:
        """Total observations so far."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations so far."""
        with self._lock:
            return self._sum

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0


# --------------------------------------------------------------------------- #
# Families (one per metric name, many label sets)
# --------------------------------------------------------------------------- #
class _MetricFamily:
    """Base: a named metric with one instrument per distinct label set."""

    kind = ""

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], Union[Counter, Gauge, Histogram]],
        max_series: int,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._factory = factory
        self._max_series = max_series
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], Union[Counter, Gauge, Histogram]] = {}

    def labels(self, **labels: str):
        """The instrument for one label set, created on first use.

        Raises:
            ValueError: the label names do not match the family's
                declaration exactly.
            CardinalityError: this label set would be the family's
                ``max_series + 1``-th distinct series.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} is declared with labels "
                f"{self.label_names}, got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self._max_series:
                    raise CardinalityError(
                        f"metric {self.name!r} is at its bound of "
                        f"{self._max_series} label sets; refusing to create "
                        f"{dict(zip(self.label_names, key))} (unbounded label "
                        f"values -- ids, hashes -- do not belong in labels)"
                    )
                series = self._factory()
                self._series[key] = series
        return series

    def _default(self):
        """The single series of an unlabelled family."""
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is declared with labels "
                f"{self.label_names}; use .labels(...)"
            )
        return self.labels()

    def series(self) -> List[Tuple[Dict[str, str], Union[Counter, Gauge, Histogram]]]:
        """Every live ``(labels, instrument)`` pair, in creation order."""
        with self._lock:
            return [
                (dict(zip(self.label_names, key)), instrument)
                for key, instrument in self._series.items()
            ]

    def _reset(self) -> None:
        for _, instrument in self.series():
            instrument._reset()


class CounterFamily(_MetricFamily):
    """A named counter; unlabelled families proxy ``inc`` / ``value``."""

    kind = "counter"

    def labels(self, **labels: str) -> Counter:
        return super().labels(**labels)  # type: ignore[return-value]

    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the single series of an unlabelled family."""
        self._default().inc(amount)

    @property
    def value(self) -> float:
        """The single series' count (unlabelled families only)."""
        return self._default().value

    def total(self) -> float:
        """Sum over every label set's count."""
        return sum(instrument.value for _, instrument in self.series())


class GaugeFamily(_MetricFamily):
    """A named gauge; unlabelled families proxy ``set`` / ``inc`` / ``value``."""

    kind = "gauge"

    def labels(self, **labels: str) -> Gauge:
        return super().labels(**labels)  # type: ignore[return-value]

    def set(self, value: float) -> None:
        """``set`` on the single series of an unlabelled family."""
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the single series of an unlabelled family."""
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """``dec`` on the single series of an unlabelled family."""
        self._default().dec(amount)

    @property
    def value(self) -> float:
        """The single series' value (unlabelled families only)."""
        return self._default().value


class HistogramFamily(_MetricFamily):
    """A named histogram; unlabelled families proxy ``observe`` / ``value``."""

    kind = "histogram"

    def __init__(self, name, help, label_names, boundaries, max_series):
        self.boundaries = tuple(float(b) for b in boundaries)
        if not self.boundaries:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(a >= b for a, b in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError(
                f"bucket boundaries must strictly increase, got {self.boundaries}"
            )
        super().__init__(
            name, help, label_names, lambda: Histogram(self.boundaries), max_series
        )

    def labels(self, **labels: str) -> Histogram:
        return super().labels(**labels)  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        """``observe`` on the single series of an unlabelled family."""
        self._default().observe(value)

    @property
    def value(self) -> HistogramValue:
        """The single series' snapshot (unlabelled families only)."""
        return self._default().value


# --------------------------------------------------------------------------- #
# Snapshots
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeriesSnapshot:
    """One label set's value at snapshot time."""

    labels: Tuple[Tuple[str, str], ...]
    value: Union[float, HistogramValue]

    def labels_dict(self) -> Dict[str, str]:
        """The label set as a plain dict."""
        return dict(self.labels)


@dataclass(frozen=True)
class MetricSnapshot:
    """One metric family's complete state at snapshot time."""

    name: str
    kind: str
    help: str
    label_names: Tuple[str, ...]
    series: Tuple[SeriesSnapshot, ...]

    def value(self, **labels: str) -> Union[float, HistogramValue]:
        """The value of one label set (no arguments for unlabelled metrics).

        Raises:
            KeyError: no series with this exact label set exists.
        """
        key = tuple((name, str(labels[name])) for name in self.label_names if name in labels)
        if set(labels) != set(self.label_names):
            raise KeyError(
                f"metric {self.name!r} has labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        for entry in self.series:
            if entry.labels == key:
                return entry.value
        raise KeyError(f"metric {self.name!r} has no series {dict(key)}")


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time, immutable copy of a whole registry.

    Later registry mutation or reset cannot alter an already-taken
    snapshot (isolation is by construction: every contained value is a
    frozen dataclass, tuple or float).
    """

    metrics: Tuple[MetricSnapshot, ...]

    def __iter__(self):
        return iter(self.metrics)

    def get(self, name: str) -> Optional[MetricSnapshot]:
        """The named family's snapshot, or ``None``."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def counter_value(self, name: str, **labels: str) -> float:
        """A counter/gauge series' value; 0.0 when the series never fired.

        Raises:
            KeyError: the metric name itself was never registered.
        """
        metric = self.get(name)
        if metric is None:
            raise KeyError(f"no metric named {name!r} in this snapshot")
        try:
            value = metric.value(**labels)
        except KeyError:
            return 0.0
        assert isinstance(value, float)
        return value

    def histogram_value(self, name: str, **labels: str) -> HistogramValue:
        """A histogram series' :class:`HistogramValue` (empty if never fired).

        Raises:
            KeyError: the metric name itself was never registered.
        """
        metric = self.get(name)
        if metric is None:
            raise KeyError(f"no metric named {name!r} in this snapshot")
        try:
            value = metric.value(**labels)
        except KeyError:
            return HistogramValue(boundaries=(float("inf"),), counts=(0, 0), sum=0.0, count=0)
        assert isinstance(value, HistogramValue)
        return value

    def as_dict(self) -> dict:
        """JSON-ready nested dict: ``{name: {kind, help, series: [...]}}``."""
        out: Dict[str, dict] = {}
        for metric in self.metrics:
            series = []
            for entry in metric.series:
                payload: dict = {"labels": entry.labels_dict()}
                if isinstance(entry.value, HistogramValue):
                    payload.update(entry.value.as_dict())
                else:
                    payload["value"] = entry.value
                series.append(payload)
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": series,
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style exposition text (for the CLI / quick eyeballs)."""
        lines: List[str] = []
        for metric in self.metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for entry in metric.series:
                label_text = _render_labels(entry.labels)
                if isinstance(entry.value, HistogramValue):
                    value = entry.value
                    for boundary, count in zip(value.boundaries, value.cumulative()):
                        bucket_labels = entry.labels + (("le", _format_number(boundary)),)
                        lines.append(
                            f"{metric.name}_bucket{_render_labels(bucket_labels)} {count}"
                        )
                    inf_labels = entry.labels + (("le", "+Inf"),)
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(inf_labels)} {value.count}"
                    )
                    lines.append(
                        f"{metric.name}_sum{label_text} {_format_number(value.sum)}"
                    )
                    lines.append(f"{metric.name}_count{label_text} {value.count}")
                else:
                    lines.append(f"{metric.name}{label_text} {_format_number(entry.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# --------------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------------- #
class MetricRegistry:
    """Owns every metric family of one serving stack.

    Registration is idempotent: asking for an existing name with the same
    kind and label declaration returns the existing family (so independent
    components -- scheduler, worker pool, stats view -- can declare shared
    metrics without coordination), while a conflicting re-declaration
    raises.

    Args:
        max_series_per_metric: Cardinality bound applied to every family
            (see :class:`CardinalityError`).
    """

    def __init__(self, *, max_series_per_metric: int = 256) -> None:
        if max_series_per_metric < 1:
            raise ValueError(
                f"max_series_per_metric must be at least 1, got {max_series_per_metric}"
            )
        self._lock = threading.Lock()
        self._families: "Dict[str, _MetricFamily]" = {}
        self._max_series = max_series_per_metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> CounterFamily:
        """Declare (or fetch) a counter family."""
        return self._register(
            name, CounterFamily, lambda: CounterFamily(
                name, help, tuple(labels), Counter, self._max_series
            ), tuple(labels),
        )

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> GaugeFamily:
        """Declare (or fetch) a gauge family."""
        return self._register(
            name, GaugeFamily, lambda: GaugeFamily(
                name, help, tuple(labels), Gauge, self._max_series
            ), tuple(labels),
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        """Declare (or fetch) a histogram family with fixed ``buckets``."""
        return self._register(
            name, HistogramFamily, lambda: HistogramFamily(
                name, help, tuple(labels), buckets, self._max_series
            ), tuple(labels),
        )

    def _register(self, name, family_type, factory, label_names):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not family_type or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            family = factory()
            self._families[name] = family
            return family

    def families(self) -> List[_MetricFamily]:
        """Every registered family, in registration order."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> MetricsSnapshot:
        """An immutable point-in-time copy of every family."""
        metrics: List[MetricSnapshot] = []
        for family in self.families():
            series = tuple(
                SeriesSnapshot(
                    labels=tuple((name, labels[name]) for name in family.label_names),
                    value=instrument.value,
                )
                for labels, instrument in family.series()
            )
            metrics.append(
                MetricSnapshot(
                    name=family.name,
                    kind=family.kind,
                    help=family.help,
                    label_names=family.label_names,
                    series=series,
                )
            )
        return MetricsSnapshot(metrics=tuple(metrics))

    def reset(self) -> None:
        """Zero every series (registrations and label sets are kept)."""
        for family in self.families():
            family._reset()

    def as_dict(self) -> dict:
        """JSON-ready dump (a fresh snapshot's :meth:`MetricsSnapshot.as_dict`)."""
        return self.snapshot().as_dict()

    def render_text(self) -> str:
        """Prometheus-style text (a fresh snapshot's render)."""
        return self.snapshot().render_text()
