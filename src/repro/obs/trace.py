"""Per-request tracing: contiguous spans from submit to result.

A :class:`Trace` is a tiny span recorder attached to one inference
request.  The serving stack marks phase transitions on it -- queue-wait,
batch-assembly, kernel, post -- and each :meth:`Trace.mark` closes the
current span *at the same timestamp* that opens the next, so the spans
tile the request's lifetime exactly: their durations sum to the trace's
total with zero gap or overlap, whatever clock is injected.

Completed traces land in a bounded, thread-safe :class:`TraceLog` ring so
a long-running service keeps the most recent N request timelines for
inspection without growing memory.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.obs.clock import MONOTONIC_CLOCK, Clock

__all__ = ["Span", "Trace", "TraceLog"]


@dataclass(frozen=True)
class Span:
    """One closed phase of a request's lifetime."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds between the span's open and close marks."""
        return self.end - self.start


class Trace:
    """Span recorder for one request.

    The trace opens at construction (``started_at`` or a clock reading);
    every :meth:`mark` closes the currently open span under the given
    name and opens the next one at the identical timestamp.  Marks must
    be monotonic; out-of-order timestamps raise rather than recording a
    negative span.

    Thread-compatible rather than thread-safe: a request's trace is only
    ever touched by one thread at a time (the submitter until it is
    queued, then the single worker that executes its batch), matching the
    request's own hand-off discipline.
    """

    __slots__ = ("request_id", "model", "spans", "_clock", "_cursor")

    def __init__(
        self,
        request_id: int,
        *,
        clock: Clock = MONOTONIC_CLOCK,
        model: str = "",
        started_at: Optional[float] = None,
    ) -> None:
        self.request_id = request_id
        self.model = model
        self.spans: List[Span] = []
        self._clock = clock
        self._cursor = clock() if started_at is None else float(started_at)

    def mark(self, name: str, at: Optional[float] = None) -> Span:
        """Close the open span as ``name``; the next span opens at its end.

        Args:
            name: Phase name of the span being closed.
            at: Timestamp to close at (default: a clock reading).  Batch
                executors pass one shared reading for every request in a
                batch, so per-request cost stays one clock read per phase.

        Returns:
            The closed :class:`Span`.

        Raises:
            ValueError: ``at`` precedes the previous mark.
        """
        stamp = self._clock() if at is None else float(at)
        if stamp < self._cursor:
            raise ValueError(
                f"span {name!r} would close at {stamp} before its start "
                f"{self._cursor}; marks must be monotonic"
            )
        span = Span(name=name, start=self._cursor, end=stamp)
        self.spans.append(span)
        self._cursor = stamp
        return span

    def span(self, name: str) -> Optional[Span]:
        """The first recorded span named ``name``, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    @property
    def started_at(self) -> float:
        """Timestamp the trace opened at."""
        return self.spans[0].start if self.spans else self._cursor

    @property
    def total_seconds(self) -> float:
        """End-to-end duration: last mark minus the trace's open."""
        if not self.spans:
            return 0.0
        return self.spans[-1].end - self.spans[0].start

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "request_id": self.request_id,
            "model": self.model,
            "started_at": self.started_at,
            "total_seconds": self.total_seconds,
            "spans": [
                {"name": span.name, "start": span.start, "end": span.end}
                for span in self.spans
            ],
        }


class TraceLog:
    """Bounded, thread-safe ring of the most recent completed traces."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: Deque[Trace] = deque(maxlen=capacity)
        self._appended = 0

    def append(self, trace: Trace) -> None:
        """Record one completed trace (oldest evicted beyond capacity)."""
        with self._lock:
            self._traces.append(trace)
            self._appended += 1

    def snapshot(self) -> List[Trace]:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    @property
    def appended(self) -> int:
        """Traces ever appended (including those since evicted)."""
        with self._lock:
            return self._appended

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
