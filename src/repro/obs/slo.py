"""SLO burn-rate monitoring over per-request latency / energy budgets.

The serving stack's :class:`~repro.serve.routing.RequestSLO` carries
per-request budgets (``max_latency_s``, ``max_energy_uj``).  The
:class:`SLOMonitor` turns those into fleet-level alerting: every served
request is compared against its own budgets, violations accumulate in a
rolling window per (model, objective), and :meth:`SLOMonitor.evaluate`
computes the **burn rate** -- the observed violation fraction divided by
the error-budget fraction.  A burn rate of 1.0 means the service is
consuming its error budget exactly as fast as it is allotted; sustained
burn above the threshold emits a structured :class:`SLOAlert` record.

The monitor is intentionally decoupled from the serve package: budgets
arrive as plain floats (duck-typed off any SLO-shaped object via
:meth:`SLOMonitor.observe_request`), so ``repro.obs`` stays dependency-free.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.clock import MONOTONIC_CLOCK, Clock
from repro.obs.registry import MetricRegistry

__all__ = ["SLOAlert", "SLOMonitor"]


@dataclass(frozen=True)
class SLOAlert:
    """Structured record of one burn-rate threshold crossing."""

    model: str
    #: ``"latency"`` or ``"energy"``.
    objective: str
    #: Violation fraction over the window divided by the budget fraction.
    burn_rate: float
    violations: int
    observations: int
    #: The tolerated violation fraction (the error budget).
    budget_fraction: float
    #: The burn rate at or above which this alert fired.
    threshold: float
    #: Clock reading at evaluation time.
    at: float

    @property
    def message(self) -> str:
        """Human-readable one-liner."""
        return (
            f"SLO burn alert: model={self.model or '<default>'} "
            f"objective={self.objective} burn_rate={self.burn_rate:.2f} "
            f"({self.violations}/{self.observations} over budget "
            f"{self.budget_fraction:.3f})"
        )

    def as_dict(self) -> dict:
        """JSON-ready structured record (``kind: "slo_alert"``)."""
        return {
            "kind": "slo_alert",
            "model": self.model,
            "objective": self.objective,
            "burn_rate": self.burn_rate,
            "violations": self.violations,
            "observations": self.observations,
            "budget_fraction": self.budget_fraction,
            "threshold": self.threshold,
            "at": self.at,
        }


class _Window:
    __slots__ = ("outcomes", "violations")

    def __init__(self, size: int) -> None:
        self.outcomes: Deque[bool] = deque(maxlen=size)
        self.violations = 0

    def push(self, violated: bool) -> None:
        if len(self.outcomes) == self.outcomes.maxlen and self.outcomes[0]:
            self.violations -= 1
        self.outcomes.append(violated)
        if violated:
            self.violations += 1


class SLOMonitor:
    """Rolling burn-rate evaluation of per-request SLO budgets.

    Args:
        metrics: Registry the monitor publishes into (violation counters,
            burn-rate gauges, evaluation / alert counters); ``None`` keeps
            the monitor standalone.
        clock: Injectable time source stamped onto alerts.
        window: Rolling window length, in observations per
            (model, objective).  Count-based on purpose: deterministic
            under an injected clock.
        budget_fraction: The error budget -- the violation fraction the
            SLO tolerates (default 5%).
        burn_threshold: Burn rate at or above which :meth:`evaluate`
            emits an alert (default 1.0: budget consumed at or above the
            sustainable rate).
        min_observations: Evaluations over fewer observations than this
            never alert (one early violation is not an incident).
        sink: Optional callable receiving every emitted :class:`SLOAlert`.
    """

    def __init__(
        self,
        metrics: Optional[MetricRegistry] = None,
        *,
        clock: Clock = MONOTONIC_CLOCK,
        window: int = 256,
        budget_fraction: float = 0.05,
        burn_threshold: float = 1.0,
        min_observations: int = 16,
        sink: Optional[Callable[[SLOAlert], None]] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        if min_observations < 1:
            raise ValueError(f"min_observations must be at least 1, got {min_observations}")
        self.clock = clock
        self.window = window
        self.budget_fraction = budget_fraction
        self.burn_threshold = burn_threshold
        self.min_observations = min_observations
        self.sink = sink
        self._lock = threading.Lock()
        self._windows: Dict[Tuple[str, str], _Window] = {}
        self.alerts: List[SLOAlert] = []
        if metrics is not None:
            self._observations = metrics.counter(
                "slo_observations_total",
                "Requests checked against an SLO budget.",
                labels=("model", "objective"),
            )
            self._violations = metrics.counter(
                "slo_violations_total",
                "Requests that exceeded their SLO budget.",
                labels=("model", "objective"),
            )
            self._evaluations = metrics.counter(
                "slo_evaluations_total",
                "Burn-rate evaluations performed.",
                labels=("model", "objective"),
            )
            self._alerts_total = metrics.counter(
                "slo_alerts_total",
                "Burn-rate alerts emitted.",
                labels=("model", "objective"),
            )
            self._burn_rate = metrics.gauge(
                "slo_burn_rate",
                "Latest burn rate: violation fraction / error budget.",
                labels=("model", "objective"),
            )
        else:
            self._observations = self._violations = None
            self._evaluations = self._alerts_total = self._burn_rate = None

    # ------------------------------------------------------------------ #
    # Observation side
    # ------------------------------------------------------------------ #
    def observe(
        self,
        model: str,
        objective: str,
        value: Optional[float],
        budget: Optional[float],
    ) -> None:
        """Record one request against one budget (no-op without a budget)."""
        if budget is None or value is None:
            return
        violated = value > budget
        key = (model, objective)
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = _Window(self.window)
            window.push(violated)
        if self._observations is not None:
            self._observations.labels(model=model, objective=objective).inc()
            if violated:
                self._violations.labels(model=model, objective=objective).inc()

    def observe_request(
        self,
        model: str,
        slo,
        *,
        latency_s: Optional[float] = None,
        energy_uj: Optional[float] = None,
    ) -> None:
        """Check one served request against its SLO's budgets.

        ``slo`` is duck-typed: anything with ``max_latency_s`` /
        ``max_energy_uj`` attributes (e.g.
        :class:`~repro.serve.routing.RequestSLO`) works; absent budgets
        are skipped.
        """
        self.observe(model, "latency", latency_s, getattr(slo, "max_latency_s", None))
        self.observe(model, "energy", energy_uj, getattr(slo, "max_energy_uj", None))

    # ------------------------------------------------------------------ #
    # Evaluation side
    # ------------------------------------------------------------------ #
    def burn_rate(self, model: str, objective: str) -> float:
        """The current burn rate of one (model, objective) window (0.0 if idle)."""
        with self._lock:
            window = self._windows.get((model, objective))
            if window is None or not window.outcomes:
                return 0.0
            fraction = window.violations / len(window.outcomes)
        return fraction / self.budget_fraction

    def evaluate(self, now: Optional[float] = None) -> List[SLOAlert]:
        """Evaluate every tracked (model, objective) window once.

        Publishes the burn-rate gauges, counts the evaluation, and emits
        (returns, records, forwards to ``sink``, counts) an
        :class:`SLOAlert` for every window at or above the threshold with
        enough observations.

        Args:
            now: Override the clock reading stamped onto alerts (tests).

        Returns:
            The alerts emitted by *this* evaluation, possibly empty.
        """
        now = self.clock() if now is None else now
        with self._lock:
            states = [
                (model, objective, window.violations, len(window.outcomes))
                for (model, objective), window in self._windows.items()
            ]
        emitted: List[SLOAlert] = []
        for model, objective, violations, observations in states:
            fraction = violations / observations if observations else 0.0
            burn = fraction / self.budget_fraction
            if self._evaluations is not None:
                self._evaluations.labels(model=model, objective=objective).inc()
                self._burn_rate.labels(model=model, objective=objective).set(burn)
            if observations >= self.min_observations and burn >= self.burn_threshold:
                alert = SLOAlert(
                    model=model,
                    objective=objective,
                    burn_rate=burn,
                    violations=violations,
                    observations=observations,
                    budget_fraction=self.budget_fraction,
                    threshold=self.burn_threshold,
                    at=now,
                )
                emitted.append(alert)
                with self._lock:
                    self.alerts.append(alert)
                if self._alerts_total is not None:
                    self._alerts_total.labels(model=model, objective=objective).inc()
                if self.sink is not None:
                    self.sink(alert)
        return emitted

    def reset(self) -> None:
        """Drop every window and retained alert (counters are untouched)."""
        with self._lock:
            self._windows.clear()
            self.alerts.clear()
