"""Unified observability layer: metrics, tracing, SLO burn alerts.

Zero-dependency substrate the serving stack reports into:

* :class:`~repro.obs.registry.MetricRegistry` -- thread-safe
  Prometheus-shaped :class:`~repro.obs.registry.Counter` /
  :class:`~repro.obs.registry.Gauge` /
  :class:`~repro.obs.registry.Histogram` families with labels, a
  cardinality guard, immutable snapshots and text / JSON rendering.
* :class:`~repro.obs.trace.Trace` -- per-request span recorder
  (queue-wait → batch-assembly → kernel → post) whose spans tile the
  request's lifetime exactly, plus the bounded
  :class:`~repro.obs.trace.TraceLog` ring.
* :class:`~repro.obs.slo.SLOMonitor` -- rolling burn rates of the
  per-request latency / energy budgets, emitting structured
  :class:`~repro.obs.slo.SLOAlert` records.
* :class:`~repro.obs.clock.ManualClock` -- the deterministic clock every
  timestamp in the stack can be injected with, so none of this needs
  ``time.sleep`` to test.
"""

from repro.obs.aggregate import merge_registry_dumps, total_counter
from repro.obs.clock import MONOTONIC_CLOCK, Clock, ManualClock
from repro.obs.registry import (
    DEFAULT_BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    CardinalityError,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    HistogramValue,
    MetricRegistry,
    MetricSnapshot,
    MetricsSnapshot,
    SeriesSnapshot,
)
from repro.obs.slo import SLOAlert, SLOMonitor
from repro.obs.trace import Span, Trace, TraceLog

__all__ = [
    "MetricRegistry",
    "MetricsSnapshot",
    "MetricSnapshot",
    "SeriesSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "CardinalityError",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BATCH_SIZE_BUCKETS",
    "Span",
    "Trace",
    "TraceLog",
    "SLOAlert",
    "SLOMonitor",
    "ManualClock",
    "Clock",
    "MONOTONIC_CLOCK",
    "merge_registry_dumps",
    "total_counter",
]
