"""repro -- a full reproduction of "Adaptive Precision Training for Resource
Constrained Devices" (Huang, Luo, Zhou; ICDCS 2020).

The package layers, bottom to top:

* :mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.optim` -- a from-scratch
  numpy autograd / neural-network / optimiser substrate, built on the
  grad-free forward kernels in :mod:`repro.kernels`.
* :mod:`repro.quant` -- affine quantisation, the underflow arithmetic of
  Eqs. 2-3 and the baseline quantiser family.
* :mod:`repro.core` -- Adaptive Precision Training itself: the Gavg metric
  (Eq. 4), the adjustment policy (Algorithm 1), the per-layer controller and
  the training loop (Algorithm 2).
* :mod:`repro.baselines` -- fixed-precision and published-method baselines.
* :mod:`repro.hardware` -- analytic energy / memory cost models.
* :mod:`repro.data`, :mod:`repro.models`, :mod:`repro.train` -- datasets,
  model zoo and the shared training harness.
* :mod:`repro.experiments` -- one runner per figure / table of the paper.
* :mod:`repro.runtime`, :mod:`repro.serve` -- the inference side: compile a
  trained (or quantised-exported) model into a static, autograd-free
  :class:`~repro.runtime.plan.ExecutionPlan` and serve it through a
  micro-batching engine (``repro.cli serve-bench``).

Quickstart::

    from repro.core import APTConfig, APTTrainer
    from repro.data import DataLoader, make_synthetic_digits
    from repro.models import build_model

    train_set, test_set = make_synthetic_digits()
    model = build_model("tiny_convnet", num_classes=10, in_channels=1)
    trainer = APTTrainer(
        model,
        DataLoader(train_set, batch_size=64),
        DataLoader(test_set, batch_size=64, shuffle=False),
        config=APTConfig(initial_bits=6, t_min=6.0),
        input_shape=(1, 12, 12),
        lr_milestones=(6, 9),
    )
    history = trainer.fit(epochs=12)
    print(history.final_test_accuracy, trainer.controller.bitwidth_by_name())
"""

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "kernels",
    "nn",
    "optim",
    "quant",
    "core",
    "baselines",
    "hardware",
    "data",
    "models",
    "train",
    "experiments",
    "runtime",
    "serve",
]
