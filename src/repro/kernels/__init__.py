"""Grad-free numpy kernels: the raw forward computations of the library.

Everything in this subpackage operates on plain ``numpy.ndarray`` values and
never touches the autograd :class:`~repro.tensor.tensor.Tensor` machinery.
The split exists so the same arithmetic serves two masters:

* the **training path** -- :mod:`repro.tensor.functional` and the
  :mod:`repro.nn` modules call these kernels for their forward computation
  and attach backward closures on top, so training behaviour is unchanged;
* the **inference path** -- :mod:`repro.runtime` compiles models into static
  plans whose steps call the kernels directly, with zero graph construction
  and no per-op ``Tensor`` allocation.

Layout convention matches the rest of the library: image tensors are NCHW.
"""

from repro.kernels.conv import (
    IM2COL_INDEX_CACHE_SIZE,
    as_pair,
    col2im,
    conv2d,
    conv_output_hw,
    im2col,
    im2col_cache_clear,
    im2col_cache_info,
    im2col_indices,
    matmul_cols,
    pack_weight_matrix,
    pad_nchw,
)
from repro.kernels.linear import linear
from repro.kernels.norm import batch_norm
from repro.kernels.pool import (
    avg_pool2d,
    avg_pool2d_cols,
    avg_pool2d_gather,
    avg_pool2d_tiled,
    max_pool2d,
    max_pool2d_cols,
    max_pool2d_gather,
    max_pool2d_tiled,
    pool_tiled_applicable,
)
from repro.kernels.activations import (
    clamp,
    leaky_relu,
    log_softmax,
    relu,
    relu6,
    sigmoid,
    softmax,
    tanh,
)

__all__ = [
    "IM2COL_INDEX_CACHE_SIZE",
    "as_pair",
    "im2col_cache_clear",
    "im2col_cache_info",
    "im2col_indices",
    "im2col",
    "col2im",
    "conv_output_hw",
    "matmul_cols",
    "pack_weight_matrix",
    "pad_nchw",
    "conv2d",
    "linear",
    "batch_norm",
    "max_pool2d",
    "max_pool2d_cols",
    "max_pool2d_gather",
    "max_pool2d_tiled",
    "avg_pool2d",
    "avg_pool2d_cols",
    "avg_pool2d_gather",
    "avg_pool2d_tiled",
    "pool_tiled_applicable",
    "relu",
    "relu6",
    "leaky_relu",
    "clamp",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
]
