"""Pooling kernels over NCHW inputs, lowered through im2col."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.conv import IntPair, as_pair, im2col


def _pool_cols(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray], Tuple[int, ...], int, int]:
    """Reshape channels into the batch dim and gather pooling windows."""
    batch, channels, height, width = x.shape
    reshaped = x.reshape(batch * channels, 1, height, width)
    cols, indices, out_h, out_w = im2col(reshaped, kernel, stride, (0, 0))
    return cols, indices, reshaped.shape, out_h, out_w


def max_pool2d_cols(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray], Tuple[int, ...]]:
    """Max pooling returning the intermediates autograd needs.

    Returns ``(out, cols, argmax, indices, reshaped_shape)`` where ``out``
    has shape ``(N, C, out_h, out_w)``.
    """
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    batch, channels = x.shape[:2]
    cols, indices, reshaped_shape, out_h, out_w = _pool_cols(x, kernel, stride_pair)
    argmax = cols.argmax(axis=1)
    out = cols.max(axis=1).reshape(batch, channels, out_h, out_w)
    return out, cols, argmax, indices, reshaped_shape


def _tiled_reduce(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], ufunc
) -> Optional[np.ndarray]:
    """Reduce non-overlapping windows by accumulating over kernel offsets.

    Only applies when stride == kernel and the kernel divides the input
    evenly (the common case).  Accumulating ``kh*kw`` strided slices with a
    binary ufunc is much faster than a multi-axis reduction over the
    window view, whose inner strides defeat numpy's reduction loops.
    """
    kernel_h, kernel_w = kernel
    if stride != kernel:
        return None
    batch, channels, height, width = x.shape
    if height % kernel_h or width % kernel_w:
        return None
    view = x.reshape(
        batch, channels, height // kernel_h, kernel_h, width // kernel_w, kernel_w
    )
    out = np.ascontiguousarray(view[:, :, :, 0, :, 0])
    for i in range(kernel_h):
        for j in range(kernel_w):
            if i == 0 and j == 0:
                continue
            ufunc(out, view[:, :, :, i, :, j], out=out)
    return out


def pool_tiled_applicable(
    input_hw: Tuple[int, int], kernel_size: IntPair, stride: Optional[IntPair] = None
) -> bool:
    """Whether the non-overlapping tiled fast path applies to this geometry."""
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    height, width = input_hw
    return (
        stride_pair == kernel
        and height % kernel[0] == 0
        and width % kernel[1] == 0
    )


def max_pool2d_tiled(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> np.ndarray:
    """Non-overlapping max pooling via the tiled strided-slice reduction.

    Only valid when :func:`pool_tiled_applicable` holds for the geometry.
    """
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    out = _tiled_reduce(x, kernel, stride_pair, np.maximum)
    if out is None:
        raise ValueError(
            f"tiled max pooling needs stride == kernel {kernel} evenly dividing "
            f"the input {x.shape[2:]}; got stride {stride_pair}"
        )
    return out


def max_pool2d_gather(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> np.ndarray:
    """General max pooling through the im2col gather (any geometry).

    Max is exact under any evaluation order, so this produces bitwise the
    same result as :func:`max_pool2d_tiled` wherever both apply.
    """
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    batch, channels = x.shape[:2]
    cols, _, _, out_h, out_w = _pool_cols(x, kernel, stride_pair)
    return cols.max(axis=1).reshape(batch, channels, out_h, out_w)


def max_pool2d(x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None) -> np.ndarray:
    """Max pooling over an NCHW input (forward only, no argmax bookkeeping)."""
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    out = _tiled_reduce(x, kernel, stride_pair, np.maximum)
    if out is not None:
        return out
    return max_pool2d_gather(x, kernel, stride_pair)


def avg_pool2d_cols(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> Tuple[np.ndarray, np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray], Tuple[int, ...]]:
    """Average pooling returning the intermediates autograd needs."""
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    batch, channels = x.shape[:2]
    cols, indices, reshaped_shape, out_h, out_w = _pool_cols(x, kernel, stride_pair)
    out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
    return out, cols, indices, reshaped_shape


def avg_pool2d_tiled(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> np.ndarray:
    """Non-overlapping average pooling via the tiled reduction.

    Only valid when :func:`pool_tiled_applicable` holds.  Note the tiled
    sum-then-scale is *not* bitwise-identical to the gather path's
    ``mean`` for kernels whose area is not a power of two, which is why
    the two average-pooling variants have disjoint applicability.
    """
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    out = _tiled_reduce(x, kernel, stride_pair, np.add)
    if out is None:
        raise ValueError(
            f"tiled average pooling needs stride == kernel {kernel} evenly "
            f"dividing the input {x.shape[2:]}; got stride {stride_pair}"
        )
    # Not in-place: integer inputs must still produce a float mean.
    return out * (1.0 / (kernel[0] * kernel[1]))


def avg_pool2d_gather(
    x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None
) -> np.ndarray:
    """General average pooling through the im2col gather (any geometry)."""
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    return avg_pool2d_cols(x, kernel, stride_pair)[0]


def avg_pool2d(x: np.ndarray, kernel_size: IntPair, stride: Optional[IntPair] = None) -> np.ndarray:
    """Average pooling over an NCHW input (forward only)."""
    kernel = as_pair(kernel_size)
    stride_pair = as_pair(stride) if stride is not None else kernel
    if pool_tiled_applicable(x.shape[2:], kernel, stride_pair):
        return avg_pool2d_tiled(x, kernel, stride_pair)
    return avg_pool2d_gather(x, kernel, stride_pair)
