"""Convolution kernels: im2col lowering and the dense matmul it enables.

The gather indices used by the im2col lowering depend only on the spatial
geometry (channels, height, width, kernel, stride, padding) -- not on the
batch size or the data -- so they are memoised with ``functools.lru_cache``.
Repeated forward passes over same-shaped inputs (every training epoch, every
served batch) therefore stop recomputing them.
"""

from __future__ import annotations

import functools
from typing import Optional, Tuple, Union

import numpy as np

IntPair = Union[int, Tuple[int, int]]

#: Explicit bound on the geometry combinations kept alive by the index
#: cache.  128 distinct (channels, size, kernel, stride, padding) tuples
#: covers every layer of every model in the registry simultaneously with
#: room to spare, while keeping a long-running multi-model server's index
#: memory bounded.  The key deliberately excludes the batch size: batches
#: of any size share one entry per layer geometry (asserted in the
#: test-suite via :func:`im2col_cache_info`).
IM2COL_INDEX_CACHE_SIZE = 128


def as_pair(value: IntPair) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to an ``(h, w)`` tuple."""
    if isinstance(value, tuple):
        return value
    return (value, value)


@functools.lru_cache(maxsize=IM2COL_INDEX_CACHE_SIZE)
def im2col_indices(
    channels: int,
    height: int,
    width: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Gather indices lowering a convolution to a matmul (memoised).

    Returns ``(k, i, j, out_h, out_w)`` where indexing a padded NCHW array
    with ``[:, k, i, j]`` yields columns of shape ``(batch, C*kh*kw,
    out_h*out_w)``.  The arrays are shared between callers and marked
    read-only; treat them as immutable.
    """
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding

    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output size would be non-positive for input "
            f"(C={channels}, H={height}, W={width}), kernel {kernel_size}, "
            f"stride {stride}, padding {padding}"
        )

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for array in (k, i, j):
        array.setflags(write=False)
    return k, i, j, out_h, out_w


def im2col_cache_info():
    """Hit/miss statistics of the bounded im2col index cache.

    The cache key is pure layer geometry -- no batch size -- so serving
    the same model at varying batch sizes reuses one entry per layer.
    """
    return im2col_indices.cache_info()


def im2col_cache_clear() -> None:
    """Drop every memoised gather-index set (tests and benchmarks)."""
    im2col_indices.cache_clear()


def conv_output_hw(
    height: int,
    width: int,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Spatial output size of a convolution, without building any indices."""
    out_h = (height + 2 * padding[0] - kernel_size[0]) // stride[0] + 1
    out_w = (width + 2 * padding[1] - kernel_size[1]) // stride[1] + 1
    return out_h, out_w


def pack_weight_matrix(weight_matrix: np.ndarray) -> np.ndarray:
    """Pre-pack a filter matrix into the layout the GEMM actually consumes.

    Integer code matrices (quantised plans) are cast to ``float64`` once,
    here, instead of on every ``matmul`` call; any matrix is made
    C-contiguous.  Integer codes convert to ``float64`` exactly, so a GEMM
    over the packed matrix is bitwise-identical to one over the raw codes.
    Returns the input unchanged when it is already packed (no copy).
    """
    if weight_matrix.dtype == np.float64 and weight_matrix.flags["C_CONTIGUOUS"]:
        return weight_matrix
    return np.ascontiguousarray(weight_matrix, dtype=np.float64)


def pad_nchw(array: np.ndarray, pad_h: int, pad_w: int) -> np.ndarray:
    """Zero-pad the spatial dims of an NCHW array.

    Equivalent to ``np.pad`` with constant zeros but without its generic
    per-axis bookkeeping, which dominates small-image forward passes.
    """
    if pad_h == 0 and pad_w == 0:
        return array
    batch, channels, height, width = array.shape
    padded = np.zeros(
        (batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=array.dtype
    )
    padded[:, :, pad_h : pad_h + height, pad_w : pad_w + width] = array
    return padded


def im2col(
    array: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray], int, int]:
    """Lower an NCHW array to columns of shape ``(batch, C*kh*kw, out_h*out_w)``."""
    pad_h, pad_w = padding
    padded = pad_nchw(array, pad_h, pad_w)
    _, channels, height, width = array.shape
    k, i, j, out_h, out_w = im2col_indices(
        channels, height, width, kernel_size, stride, padding
    )
    cols = padded[:, k, i, j]
    return cols, (k, i, j), out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    indices: Tuple[np.ndarray, np.ndarray, np.ndarray],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add columns back to an NCHW array (the adjoint of im2col)."""
    batch, channels, height, width = input_shape
    pad_h, pad_w = padding
    k, i, j = indices
    padded = np.zeros((batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=cols.dtype)
    np.add.at(padded, (slice(None), k, i, j), cols)
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h : pad_h + height, pad_w : pad_w + width]


def matmul_cols(
    weight_matrix: np.ndarray,
    cols: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Multiply a ``(C_out, C*kh*kw)`` filter matrix against im2col columns.

    Returns ``(batch, C_out, out_h*out_w)`` via a broadcasted ``matmul``
    (measurably faster than the equivalent einsum).  ``out`` is used only
    when its dtype can hold the product exactly (integer filter matrices --
    quantised plans -- let numpy pick the accumulation dtype).
    """
    if out is not None and out.dtype == np.result_type(weight_matrix, cols):
        return np.matmul(weight_matrix, cols, out=out)
    return np.matmul(weight_matrix, cols)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> np.ndarray:
    """2-D convolution (cross-correlation) over an NCHW input, no autograd."""
    stride_pair = as_pair(stride)
    padding_pair = as_pair(padding)
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(f"input has {x.shape[1]} channels but weight expects {in_channels}")
    cols, _, out_h, out_w = im2col(x, (kernel_h, kernel_w), stride_pair, padding_pair)
    out = matmul_cols(weight.reshape(out_channels, -1), cols)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out.reshape(x.shape[0], out_channels, out_h, out_w)
