"""Elementwise activation kernels.

Each kernel accepts an optional ``out`` array so a compiled plan can reuse a
preallocated buffer instead of allocating per call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def relu(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    return np.maximum(x, 0.0, out=out)


def relu6(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    return np.clip(x, 0.0, 6.0, out=out)


def clamp(
    x: np.ndarray,
    min_value: Optional[float] = None,
    max_value: Optional[float] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    low = -np.inf if min_value is None else min_value
    high = np.inf if max_value is None else max_value
    return np.clip(x, low, high, out=out)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    return np.where(x > 0, x, negative_slope * x)


def sigmoid(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    result = 1.0 / (1.0 + np.exp(-x))
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def tanh(x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    return np.tanh(x, out=out)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
