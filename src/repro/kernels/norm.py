"""Normalisation kernels (inference form)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float,
    view_shape: Tuple[int, ...],
) -> np.ndarray:
    """Batch normalisation with fixed statistics (the eval-mode computation).

    ``view_shape`` broadcasts the per-feature vectors against ``x`` --
    ``(1, C, 1, 1)`` for NCHW feature maps, ``(1, C)`` for flat features.
    The arithmetic mirrors the autograd path exactly:
    ``(x - mean) / sqrt(var + eps) * weight + bias``.
    """
    mean = mean.reshape(view_shape)
    var = var.reshape(view_shape)
    normalised = (x - mean) / np.sqrt(var + eps)
    return normalised * weight.reshape(view_shape) + bias.reshape(view_shape)
