"""Normalisation kernels (inference form)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float,
    view_shape: Tuple[int, ...],
) -> np.ndarray:
    """Batch normalisation with fixed statistics (the eval-mode computation).

    ``view_shape`` broadcasts the per-feature vectors against ``x`` --
    ``(1, C, 1, 1)`` for NCHW feature maps, ``(1, C)`` for flat features.
    Fixed statistics make eval-mode BN an affine layer, so the statistics
    fold into a per-channel scale/shift and only two elementwise passes
    touch the activation: ``x * (weight / sqrt(var + eps)) + (bias - mean *
    scale)``.  The arithmetic mirrors the autograd eval path exactly (same
    folded form, same operation order).
    """
    scale = weight / np.sqrt(var + eps)
    shift = bias - mean * scale
    return x * scale.reshape(view_shape) + shift.reshape(view_shape)
