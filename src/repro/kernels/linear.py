"""Dense (fully connected) kernel."""

from __future__ import annotations

from typing import Optional

import numpy as np


def linear(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
    """Affine transform ``x @ weight.T + bias`` with a ``(C_out, C_in)`` weight."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out
