"""The concurrent multi-model inference service.

Composition of the serving layers::

    submit(model, x, slo)
        │  PrecisionRouter: cheapest bitwidth variant meeting the SLO
        ▼
    Scheduler: one bounded micro-batch queue per (model, bits) variant
        │  max-batch / max-delay dispatch, QueueFullError backpressure
        ▼
    WorkerPool: N threads, per-worker ExecutionContext arenas
        │  one immutable ExecutionPlan per variant, shared by all workers
        ▼
    ResultFuture per request + ServeStats / BatchRecord accounting

Queues are per **variant**, not per model: a dispatched batch executes
through exactly one compiled plan, so requests routed to different
bitwidths of the same model must never share a batch.

The service is the concurrent big sibling of the cooperative
:class:`~repro.serve.engine.MicroBatchServer` (which remains the
deterministic single-model, single-thread façade used by tests and
benchmarks).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile
from repro.runtime.plan import ExecutionPlan
from repro.serve.repository import ModelRepository
from repro.serve.routing import DEFAULT_SLO, PrecisionRouter, RequestSLO, RoutingDecision
from repro.serve.scheduler import QueueFullError, QueuePolicy, Scheduler
from repro.serve.types import (
    BatchAccountant,
    InferenceRequest,
    ResultFuture,
    ServeStats,
)
from repro.serve.workers import BatchExecutor, WorkerPool


def _queue_key(model: str, bits: int) -> str:
    return f"{model}@{bits}"


class _RepositoryExecutor(BatchExecutor):
    """Resolve ``model@bits`` queue keys against the repository + router.

    Resolutions are memoised per queue key: the plan, forward-bits mapping
    and accountant of a variant are immutable, so workers only take the
    repository / router locks on a variant's first batch.
    """

    def __init__(self, service: "InferenceService") -> None:
        self.service = service
        self._lock = threading.Lock()
        self._resolved: Dict[str, Tuple] = {}

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        with self._lock:
            cached = self._resolved.get(queue_key)
        if cached is not None:
            return cached
        model, _, bits_text = queue_key.rpartition("@")
        bits = int(bits_text)
        service = self.service
        plan = service.repository.plan(model, bits)
        forward_bits = service.repository.forward_bits(model, bits)
        accountant = service.router.accountant(model) if service.modelled_accounting else None
        resolved = (plan, forward_bits, accountant, model, bits)
        with self._lock:
            self._resolved[queue_key] = resolved
        return resolved


class InferenceService:
    """Concurrent multi-model serving over a repository of compiled plans.

    Parameters
    ----------
    repository:
        The models and bitwidth variants to serve.  Registered variants get
        one scheduler queue each; plans compile on service start (``warm``)
        so workers never stall on the process-wide compile lock.
    workers:
        Worker threads.  Each owns private execution contexts; throughput
        scales with cores because the numpy kernels release the GIL.
    queue_policy:
        Batching / backpressure policy applied to every variant queue.
    compute_profile, energy_model:
        Analytic device models for routing costs and per-batch accounting;
        both optional (without them routing falls back to bit-ordering and
        batches carry wall-clock accounting only).
    clock:
        Injectable time source (tests).
    """

    def __init__(
        self,
        repository: ModelRepository,
        *,
        workers: int = 1,
        queue_policy: Optional[QueuePolicy] = None,
        compute_profile: Optional[ComputeProfile] = None,
        energy_model: Optional[EnergyModel] = None,
        warm: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.repository = repository
        self.router = PrecisionRouter(
            repository, energy_model=energy_model, compute_profile=compute_profile
        )
        self.modelled_accounting = compute_profile is not None or energy_model is not None
        self.clock = clock
        self.stats = ServeStats()
        self.scheduler = Scheduler(clock=clock)
        self._queue_policy = queue_policy or QueuePolicy()
        self._request_ids = itertools.count()
        self._rejected_lock = threading.Lock()
        self._known_queues = set()
        for model in repository.models():
            for bits in repository.variants(model):
                self.scheduler.register(_queue_key(model, bits), self._queue_policy)
                self._known_queues.add(_queue_key(model, bits))
        if warm:
            repository.warm()
        self.pool = WorkerPool(
            self.scheduler,
            _RepositoryExecutor(self),
            workers=workers,
            stats=self.stats,
            clock=clock,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        self.pool.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain the queues and stop the workers."""
        self.pool.stop(timeout)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        x: np.ndarray,
        slo: RequestSLO = DEFAULT_SLO,
    ) -> ResultFuture:
        """Route, admit and enqueue one request; returns its future.

        Raises :class:`~repro.serve.scheduler.QueueFullError` when the
        routed variant's queue is at its bounded depth (counted in
        ``stats.rejected``) and
        :class:`~repro.serve.routing.NoVariantError` when no variant
        satisfies a strict SLO.
        """
        decision = self.route(model, slo)
        x = np.array(x, dtype=np.float64, copy=True)
        expected = self.repository.input_shape(model)
        if x.shape != expected:
            raise ValueError(
                f"request shape {x.shape} does not match model {model!r}'s "
                f"per-sample input shape {expected}"
            )
        future = ResultFuture()
        request = InferenceRequest(
            request_id=next(self._request_ids),
            x=x,
            enqueued_at=self.clock(),
            model=model,
            bits=decision.bits,
            future=future,
        )
        key = _queue_key(model, decision.bits)
        self._ensure_queue(key)
        try:
            self.scheduler.submit(key, request)
        except QueueFullError:
            with self._rejected_lock:
                self.stats.rejected += 1
            raise
        return future

    def _ensure_queue(self, key: str) -> None:
        """Register a queue for a variant added to the repository after
        construction (the repository is mutable and thread-safe, so late
        ``add_export`` calls are legitimate).  The local set keeps the
        check off the scheduler lock on the submit hot path."""
        if key in self._known_queues:
            return
        try:
            self.scheduler.register(key, self._queue_policy)
        except ValueError:
            pass  # another submitter registered it first
        self._known_queues.add(key)

    def route(self, model: str, slo: RequestSLO = DEFAULT_SLO) -> RoutingDecision:
        """The routing decision ``submit`` would make (without enqueueing)."""
        return self.router.route(model, slo)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def pending(self, model: Optional[str] = None) -> int:
        if model is None:
            return self.scheduler.pending()
        return sum(
            self.scheduler.pending(_queue_key(model, bits))
            for bits in self.repository.variants(model)
        )

    @property
    def batch_records(self) -> List:
        return self.pool.batch_records
