"""The concurrent multi-model inference service.

Composition of the serving layers::

    submit(model, x, slo)
        │  PrecisionRouter: cheapest bitwidth variant meeting the SLO
        ▼
    Scheduler: one bounded micro-batch queue per (model, bits) variant
        │  max-batch / max-delay dispatch, QueueFullError backpressure
        ▼
    WorkerPool: N threads, per-worker ExecutionContext arenas
        │  one immutable ExecutionPlan per variant, shared by all workers
        ▼
    ResultFuture per request + ServeStats / BatchRecord accounting

Queues are per **variant**, not per model: a dispatched batch executes
through exactly one compiled plan, so requests routed to different
bitwidths of the same model must never share a batch.

The service is the concurrent big sibling of the cooperative
:class:`~repro.serve.engine.MicroBatchServer` (which remains the
deterministic single-model, single-thread façade used by tests and
benchmarks).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile
from repro.obs.registry import MetricRegistry, MetricsSnapshot
from repro.obs.slo import SLOMonitor
from repro.obs.trace import Trace, TraceLog
from repro.runtime.plan import ExecutionPlan
from repro.serve.repository import ModelRepository
from repro.serve.routing import DEFAULT_SLO, PrecisionRouter, RequestSLO, RoutingDecision
from repro.serve.scheduler import QueueFullError, QueuePolicy, Scheduler
from repro.serve.types import (
    BatchAccountant,
    InferenceRequest,
    ResultFuture,
    ServeStats,
)
from repro.serve.shards import ShardRouter
from repro.serve.workers import BatchExecutor, ProcessWorkerPool, WorkerPool


def _queue_key(model: str, bits: int) -> str:
    return f"{model}@{bits}"


class _RepositoryExecutor(BatchExecutor):
    """Resolve ``model@bits`` queue keys against the repository + router.

    Resolutions are memoised per queue key *alongside the repository's
    generation counter* for the model: the plan, forward-bits mapping and
    accountant of a variant are immutable, so workers only take the
    repository / router locks on a variant's first batch.  The per-batch
    generation check is a lock-free int read
    (:meth:`~repro.serve.repository.ModelRepository.generation`); when a
    hot-swap bumps the counter, the next batch re-resolves and picks up
    the new plan.  Batches resolved before the bump drain on the old
    (immutable) plan; no lock is ever held across a compile, because
    :meth:`~repro.serve.repository.ModelRepository.swap` installs the
    already-compiled plan before bumping the counter.
    """

    def __init__(self, service: "InferenceService") -> None:
        self.service = service
        self._lock = threading.Lock()
        self._resolved: Dict[str, Tuple[int, Tuple]] = {}

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        model, _, bits_text = queue_key.rpartition("@")
        generation = self.service.repository.generation(model)
        with self._lock:
            cached = self._resolved.get(queue_key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        bits = int(bits_text)
        service = self.service
        plan = service.repository.plan(model, bits)
        forward_bits = service.repository.forward_bits(model, bits)
        accountant = service.router.accountant(model) if service.modelled_accounting else None
        resolved = (plan, forward_bits, accountant, model, bits)
        with self._lock:
            self._resolved[queue_key] = (generation, resolved)
        return resolved


class InferenceService:
    """Concurrent multi-model serving over a repository of compiled plans.

    Parameters
    ----------
    repository:
        The models and bitwidth variants to serve.  Registered variants get
        one scheduler queue each; plans compile on service start (``warm``)
        so workers never stall on the process-wide compile lock.
    workers:
        Worker threads.  Each owns private execution contexts; throughput
        scales with cores because the numpy kernels release the GIL.
    queue_policy:
        Batching / backpressure policy applied to every variant queue.
    compute_profile, energy_model:
        Analytic device models for routing costs and per-batch accounting;
        both optional (without them routing falls back to bit-ordering and
        batches carry wall-clock accounting only).
    clock:
        Injectable time source (tests).
    metrics:
        The :class:`~repro.obs.registry.MetricRegistry` every layer of
        this service reports into (scheduler queues, router decisions,
        worker phase histograms, the stats view, the plan cache, the SLO
        monitor).  ``None`` creates a private registry.
    tracing:
        Open a per-request :class:`~repro.obs.trace.Trace` at submit time
        (spans marked by the executing worker, completed traces attached
        to results and retained in :attr:`traces`).
    slo_monitor:
        Override the service's :class:`~repro.obs.slo.SLOMonitor`
        (default: one on this registry / clock with default windowing).
    trace_capacity:
        Completed traces retained in the :attr:`traces` ring.
    backend:
        ``"thread"`` (default) keeps the in-process :class:`WorkerPool`;
        ``"process"`` shards the repository across spawned worker
        processes (:class:`~repro.serve.workers.ProcessWorkerPool`) with
        exports in shared-memory arenas and one scheduler per shard.
        The process backend serves the variants registered at
        construction; variants added later raise in the owning worker.
    shards:
        Process-backend shard count (defaults to ``workers``).  Each
        shard is one spawned process owning one scheduler; the
        consistent-hash router pins every ``(model, bits)`` variant to
        exactly one shard.
    """

    def __init__(
        self,
        repository: ModelRepository,
        *,
        workers: int = 1,
        queue_policy: Optional[QueuePolicy] = None,
        compute_profile: Optional[ComputeProfile] = None,
        energy_model: Optional[EnergyModel] = None,
        warm: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricRegistry] = None,
        tracing: bool = True,
        slo_monitor: Optional[SLOMonitor] = None,
        trace_capacity: int = 256,
        backend: str = "thread",
        shards: Optional[int] = None,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        self.repository = repository
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.tracing = tracing
        #: Optional callable receiving every structured observability
        #: record the service emits -- SLO alert dicts (``kind:
        #: "slo_alert"``) and model swap / rollback audit events (``kind:
        #: "model_swap"`` / ``"model_rollback"``).
        self.metrics_sink: Optional[Callable[[dict], None]] = None
        self.router = PrecisionRouter(
            repository,
            energy_model=energy_model,
            compute_profile=compute_profile,
            metrics=self.metrics,
        )
        self.modelled_accounting = compute_profile is not None or energy_model is not None
        self.clock = clock
        self.stats = ServeStats(self.metrics)
        self.backend = backend
        self.shards = (shards if shards is not None else workers) if backend == "process" else 1
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if backend == "process":
            self.shard_router = ShardRouter(self.shards)
            self.schedulers = [
                Scheduler(clock=clock, metrics=self.metrics) for _ in range(self.shards)
            ]
            self.scheduler = self.schedulers[0]
        else:
            self.shard_router = None
            self.scheduler = Scheduler(clock=clock, metrics=self.metrics)
            self.schedulers = [self.scheduler]
        self.traces = TraceLog(trace_capacity)
        self.slo = (
            slo_monitor
            if slo_monitor is not None
            else SLOMonitor(self.metrics, clock=clock, sink=self._on_slo_alert)
        )
        self._queue_policy = queue_policy or QueuePolicy()
        self._request_ids = itertools.count()
        self._known_queues = set()
        #: Optional callable ``(model, x, label, prediction)`` receiving
        #: every :meth:`record_feedback` sample; set by the adaptation
        #: manager that watches this service.
        self.feedback_sink: Optional[Callable[[str, np.ndarray, int, Optional[int]], None]] = None
        if repository.plan_cache._metric_counters is None:
            # Surface compile / hit / eviction counts alongside the serving
            # metrics; an explicitly pre-bound cache keeps its registry.
            repository.plan_cache.bind_metrics(self.metrics)
        tuning_cache = getattr(repository.tuning, "cache", None)
        if tuning_cache is not None and tuning_cache._metric_counters is None:
            # Same contract for the autotuner's persistent winner store.
            tuning_cache.bind_metrics(self.metrics)
        self._swap_counter = self.metrics.counter(
            "repo_swaps_total",
            "Hot swaps / rollbacks installed, by model and kind.",
            labels=("model", "kind"),
        )
        repository.add_swap_listener(self._on_swap)
        for model in repository.models():
            for bits in repository.variants(model):
                key = _queue_key(model, bits)
                self._scheduler_for(key).register(key, self._queue_policy)
                self._known_queues.add(key)
        if backend == "process":
            # Workers compile (and warm) their own shard's plans; warming
            # the parent's plan cache would just duplicate the compiles.
            self.pool = ProcessWorkerPool(
                self.schedulers,
                repository,
                self.shard_router,
                stats=self.stats,
                clock=clock,
                metrics=self.metrics,
                trace_log=self.traces,
                slo_monitor=self.slo,
                accountant_for=self.router.accountant if self.modelled_accounting else None,
                warm=warm,
            )
        else:
            if warm:
                repository.warm()
            self.pool = WorkerPool(
                self.scheduler,
                _RepositoryExecutor(self),
                workers=workers,
                stats=self.stats,
                clock=clock,
                metrics=self.metrics,
                trace_log=self.traces,
                slo_monitor=self.slo,
            )

    def _scheduler_for(self, key: str) -> Scheduler:
        """The scheduler owning one variant queue (shard-routed under the
        process backend; the single scheduler otherwise)."""
        if self.shard_router is None:
            return self.scheduler
        return self.schedulers[self.shard_router.shard_for_key(key)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        """Start the worker pool; returns ``self`` (also via ``with``)."""
        self.pool.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain the queues, stop the workers, run a final SLO evaluation.

        Args:
            timeout: Per-thread join timeout in seconds (``None`` waits).
        """
        self.pool.stop(timeout)
        self.slo.evaluate()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        x: np.ndarray,
        slo: RequestSLO = DEFAULT_SLO,
    ) -> ResultFuture:
        """Route, admit and enqueue one request.

        Args:
            model: Repository model name.
            x: One sample in the model's per-sample input shape (copied).
            slo: Routing objective (quality floor, energy/latency budgets).

        Returns:
            A :class:`~repro.serve.types.ResultFuture` fulfilled by the
            worker that executes the request's batch.

        Raises:
            repro.serve.scheduler.QueueFullError: the routed variant's
                queue is at its bounded depth (counted in
                ``stats.rejected``).
            repro.serve.routing.NoVariantError: no variant satisfies a
                strict SLO.
            ValueError: the sample's shape does not match the model.
            KeyError: the model is not registered.
        """
        decision = self.route(model, slo)
        x = np.array(x, dtype=np.float64, copy=True)
        expected = self.repository.input_shape(model)
        if x.shape != expected:
            raise ValueError(
                f"request shape {x.shape} does not match model {model!r}'s "
                f"per-sample input shape {expected}"
            )
        future = ResultFuture()
        request_id = next(self._request_ids)
        enqueued_at = self.clock()
        trace = (
            Trace(request_id, clock=self.clock, model=model, started_at=enqueued_at)
            if self.tracing
            else None
        )
        request = InferenceRequest(
            request_id=request_id,
            x=x,
            enqueued_at=enqueued_at,
            model=model,
            bits=decision.bits,
            future=future,
            trace=trace,
            slo=slo,
        )
        key = _queue_key(model, decision.bits)
        self._ensure_queue(key)
        try:
            self._scheduler_for(key).submit(key, request)
        except QueueFullError:
            self.stats.record_rejected()
            raise
        return future

    def _ensure_queue(self, key: str) -> None:
        """Register a queue for a variant added to the repository after
        construction (the repository is mutable and thread-safe, so late
        ``add_export`` calls are legitimate).  The local set keeps the
        check off the scheduler lock on the submit hot path."""
        if key in self._known_queues:
            return
        try:
            self._scheduler_for(key).register(key, self._queue_policy)
        except ValueError:
            pass  # another submitter registered it first
        self._known_queues.add(key)

    def route(self, model: str, slo: RequestSLO = DEFAULT_SLO) -> RoutingDecision:
        """The routing decision ``submit`` would make (without enqueueing).

        Args:
            model: Repository model name.
            slo: The request's service-level objective.

        Returns:
            The router's :class:`~repro.serve.routing.RoutingDecision`.

        Raises:
            repro.serve.routing.NoVariantError: no variant satisfies a
                strict SLO (or the quality floor excludes every variant).
        """
        return self.router.route(model, slo)

    # ------------------------------------------------------------------ #
    # Labelled feedback (drives online adaptation)
    # ------------------------------------------------------------------ #
    def record_feedback(
        self,
        model: str,
        x: np.ndarray,
        label: int,
        *,
        prediction: Optional[int] = None,
    ) -> None:
        """Report the ground-truth label of a previously served sample.

        Feedback is the quality signal of the online-adaptation loop: it
        feeds the service's aggregate ``stats`` (observed accuracy) and is
        forwarded to the attached :attr:`feedback_sink` -- typically an
        :class:`repro.adapt.OnlineAdaptationManager`, which buffers the
        sample for fine-tuning and evaluates its drift triggers.

        Args:
            model: Repository model the sample was served from.
            x: The sample, in the model's per-sample input shape.
            label: Its ground-truth class.
            prediction: The class the service predicted, if the caller kept
                the :class:`~repro.serve.types.InferenceResult`; lets the
                stats track observed accuracy.

        Raises:
            KeyError: ``model`` is not registered with the repository.
            ValueError: the sample's shape does not match the model's
                per-sample input shape.
        """
        expected = self.repository.input_shape(model)  # raises KeyError when unknown
        x = np.asarray(x, dtype=np.float64)
        if x.shape != expected:
            raise ValueError(
                f"feedback shape {x.shape} does not match model {model!r}'s "
                f"per-sample input shape {expected}"
            )
        # Registry-backed counters are individually atomic, so concurrent
        # feedback reporters and batch-recording workers can no longer
        # lose updates against each other (the historical ServeStats race).
        self.stats.record_feedback(int(label), prediction)
        sink = self.feedback_sink
        if sink is not None:
            sink(model, x, int(label), None if prediction is None else int(prediction))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def pending(self, model: Optional[str] = None) -> int:
        """Queued-but-unserved request count (one model, or the service).

        Raises:
            KeyError: ``model`` is not registered.
        """
        if model is None:
            return sum(scheduler.pending() for scheduler in self.schedulers)
        total = 0
        for bits in self.repository.variants(model):
            key = _queue_key(model, bits)
            total += self._scheduler_for(key).pending(key)
        return total

    @property
    def batch_records(self) -> List:
        """Per-batch accounting records, in execution order."""
        return self.pool.batch_records

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A point-in-time, immutable snapshot of every service metric."""
        return self.metrics.snapshot()

    def worker_metrics(self) -> Dict[str, dict]:
        """Per-shard worker metric dumps, keyed by shard index (process
        backend; the thread backend publishes straight into
        :attr:`metrics` and returns ``{}``).  Merge into one view with
        :func:`repro.obs.aggregate.merge_registry_dumps`."""
        if isinstance(self.pool, ProcessWorkerPool):
            return self.pool.worker_metrics()
        return {}

    def evaluate_slo(self) -> List:
        """Run one SLO burn evaluation now; returns the alerts raised
        (each is also forwarded to :attr:`metrics_sink`)."""
        return self.slo.evaluate()

    # ------------------------------------------------------------------ #
    # Observability hooks
    # ------------------------------------------------------------------ #
    def _emit(self, record: dict) -> None:
        """Forward one structured observability record to the sink."""
        sink = self.metrics_sink
        if sink is not None:
            sink(record)

    def _on_slo_alert(self, alert) -> None:
        self._emit(alert.as_dict())

    def _on_swap(self, model: str, bits: int, generation: int) -> None:
        """Repository swap listener: count the install and emit an audit
        record distinguishing forward swaps from rollbacks."""
        try:
            source = self.repository.current_version(model, bits).source
        except KeyError:  # pragma: no cover - variant vanished mid-notify
            source = "swap"
        kind = "rollback" if source == "rollback" else "swap"
        self._swap_counter.labels(model=model, kind=kind).inc()
        self._emit(
            {
                "kind": f"model_{kind}",
                "model": model,
                "bits": bits,
                "generation": generation,
                "at": self.clock(),
            }
        )
