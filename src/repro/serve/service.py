"""The concurrent multi-model inference service.

Composition of the serving layers::

    submit(model, x, slo)
        │  PrecisionRouter: cheapest bitwidth variant meeting the SLO
        ▼
    Scheduler: one bounded micro-batch queue per (model, bits) variant
        │  max-batch / max-delay dispatch, QueueFullError backpressure
        ▼
    WorkerPool: N threads, per-worker ExecutionContext arenas
        │  one immutable ExecutionPlan per variant, shared by all workers
        ▼
    ResultFuture per request + ServeStats / BatchRecord accounting

Queues are per **variant**, not per model: a dispatched batch executes
through exactly one compiled plan, so requests routed to different
bitwidths of the same model must never share a batch.

The service is the concurrent big sibling of the cooperative
:class:`~repro.serve.engine.MicroBatchServer` (which remains the
deterministic single-model, single-thread façade used by tests and
benchmarks).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile
from repro.runtime.plan import ExecutionPlan
from repro.serve.repository import ModelRepository
from repro.serve.routing import DEFAULT_SLO, PrecisionRouter, RequestSLO, RoutingDecision
from repro.serve.scheduler import QueueFullError, QueuePolicy, Scheduler
from repro.serve.types import (
    BatchAccountant,
    InferenceRequest,
    ResultFuture,
    ServeStats,
)
from repro.serve.workers import BatchExecutor, WorkerPool


def _queue_key(model: str, bits: int) -> str:
    return f"{model}@{bits}"


class _RepositoryExecutor(BatchExecutor):
    """Resolve ``model@bits`` queue keys against the repository + router.

    Resolutions are memoised per queue key *alongside the repository's
    generation counter* for the model: the plan, forward-bits mapping and
    accountant of a variant are immutable, so workers only take the
    repository / router locks on a variant's first batch.  The per-batch
    generation check is a lock-free int read
    (:meth:`~repro.serve.repository.ModelRepository.generation`); when a
    hot-swap bumps the counter, the next batch re-resolves and picks up
    the new plan.  Batches resolved before the bump drain on the old
    (immutable) plan; no lock is ever held across a compile, because
    :meth:`~repro.serve.repository.ModelRepository.swap` installs the
    already-compiled plan before bumping the counter.
    """

    def __init__(self, service: "InferenceService") -> None:
        self.service = service
        self._lock = threading.Lock()
        self._resolved: Dict[str, Tuple[int, Tuple]] = {}

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        model, _, bits_text = queue_key.rpartition("@")
        generation = self.service.repository.generation(model)
        with self._lock:
            cached = self._resolved.get(queue_key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        bits = int(bits_text)
        service = self.service
        plan = service.repository.plan(model, bits)
        forward_bits = service.repository.forward_bits(model, bits)
        accountant = service.router.accountant(model) if service.modelled_accounting else None
        resolved = (plan, forward_bits, accountant, model, bits)
        with self._lock:
            self._resolved[queue_key] = (generation, resolved)
        return resolved


class InferenceService:
    """Concurrent multi-model serving over a repository of compiled plans.

    Parameters
    ----------
    repository:
        The models and bitwidth variants to serve.  Registered variants get
        one scheduler queue each; plans compile on service start (``warm``)
        so workers never stall on the process-wide compile lock.
    workers:
        Worker threads.  Each owns private execution contexts; throughput
        scales with cores because the numpy kernels release the GIL.
    queue_policy:
        Batching / backpressure policy applied to every variant queue.
    compute_profile, energy_model:
        Analytic device models for routing costs and per-batch accounting;
        both optional (without them routing falls back to bit-ordering and
        batches carry wall-clock accounting only).
    clock:
        Injectable time source (tests).
    """

    def __init__(
        self,
        repository: ModelRepository,
        *,
        workers: int = 1,
        queue_policy: Optional[QueuePolicy] = None,
        compute_profile: Optional[ComputeProfile] = None,
        energy_model: Optional[EnergyModel] = None,
        warm: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.repository = repository
        self.router = PrecisionRouter(
            repository, energy_model=energy_model, compute_profile=compute_profile
        )
        self.modelled_accounting = compute_profile is not None or energy_model is not None
        self.clock = clock
        self.stats = ServeStats()
        self.scheduler = Scheduler(clock=clock)
        self._queue_policy = queue_policy or QueuePolicy()
        self._request_ids = itertools.count()
        self._rejected_lock = threading.Lock()
        self._known_queues = set()
        #: Optional callable ``(model, x, label, prediction)`` receiving
        #: every :meth:`record_feedback` sample; set by the adaptation
        #: manager that watches this service.
        self.feedback_sink: Optional[Callable[[str, np.ndarray, int, Optional[int]], None]] = None
        for model in repository.models():
            for bits in repository.variants(model):
                self.scheduler.register(_queue_key(model, bits), self._queue_policy)
                self._known_queues.add(_queue_key(model, bits))
        if warm:
            repository.warm()
        self.pool = WorkerPool(
            self.scheduler,
            _RepositoryExecutor(self),
            workers=workers,
            stats=self.stats,
            clock=clock,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        """Start the worker pool; returns ``self`` (also via ``with``)."""
        self.pool.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain the queues and stop the workers.

        Args:
            timeout: Per-thread join timeout in seconds (``None`` waits).
        """
        self.pool.stop(timeout)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        x: np.ndarray,
        slo: RequestSLO = DEFAULT_SLO,
    ) -> ResultFuture:
        """Route, admit and enqueue one request.

        Args:
            model: Repository model name.
            x: One sample in the model's per-sample input shape (copied).
            slo: Routing objective (quality floor, energy/latency budgets).

        Returns:
            A :class:`~repro.serve.types.ResultFuture` fulfilled by the
            worker that executes the request's batch.

        Raises:
            repro.serve.scheduler.QueueFullError: the routed variant's
                queue is at its bounded depth (counted in
                ``stats.rejected``).
            repro.serve.routing.NoVariantError: no variant satisfies a
                strict SLO.
            ValueError: the sample's shape does not match the model.
            KeyError: the model is not registered.
        """
        decision = self.route(model, slo)
        x = np.array(x, dtype=np.float64, copy=True)
        expected = self.repository.input_shape(model)
        if x.shape != expected:
            raise ValueError(
                f"request shape {x.shape} does not match model {model!r}'s "
                f"per-sample input shape {expected}"
            )
        future = ResultFuture()
        request = InferenceRequest(
            request_id=next(self._request_ids),
            x=x,
            enqueued_at=self.clock(),
            model=model,
            bits=decision.bits,
            future=future,
        )
        key = _queue_key(model, decision.bits)
        self._ensure_queue(key)
        try:
            self.scheduler.submit(key, request)
        except QueueFullError:
            with self._rejected_lock:
                self.stats.rejected += 1
            raise
        return future

    def _ensure_queue(self, key: str) -> None:
        """Register a queue for a variant added to the repository after
        construction (the repository is mutable and thread-safe, so late
        ``add_export`` calls are legitimate).  The local set keeps the
        check off the scheduler lock on the submit hot path."""
        if key in self._known_queues:
            return
        try:
            self.scheduler.register(key, self._queue_policy)
        except ValueError:
            pass  # another submitter registered it first
        self._known_queues.add(key)

    def route(self, model: str, slo: RequestSLO = DEFAULT_SLO) -> RoutingDecision:
        """The routing decision ``submit`` would make (without enqueueing).

        Args:
            model: Repository model name.
            slo: The request's service-level objective.

        Returns:
            The router's :class:`~repro.serve.routing.RoutingDecision`.

        Raises:
            repro.serve.routing.NoVariantError: no variant satisfies a
                strict SLO (or the quality floor excludes every variant).
        """
        return self.router.route(model, slo)

    # ------------------------------------------------------------------ #
    # Labelled feedback (drives online adaptation)
    # ------------------------------------------------------------------ #
    def record_feedback(
        self,
        model: str,
        x: np.ndarray,
        label: int,
        *,
        prediction: Optional[int] = None,
    ) -> None:
        """Report the ground-truth label of a previously served sample.

        Feedback is the quality signal of the online-adaptation loop: it
        feeds the service's aggregate ``stats`` (observed accuracy) and is
        forwarded to the attached :attr:`feedback_sink` -- typically an
        :class:`repro.adapt.OnlineAdaptationManager`, which buffers the
        sample for fine-tuning and evaluates its drift triggers.

        Args:
            model: Repository model the sample was served from.
            x: The sample, in the model's per-sample input shape.
            label: Its ground-truth class.
            prediction: The class the service predicted, if the caller kept
                the :class:`~repro.serve.types.InferenceResult`; lets the
                stats track observed accuracy.

        Raises:
            KeyError: ``model`` is not registered with the repository.
            ValueError: the sample's shape does not match the model's
                per-sample input shape.
        """
        expected = self.repository.input_shape(model)  # raises KeyError when unknown
        x = np.asarray(x, dtype=np.float64)
        if x.shape != expected:
            raise ValueError(
                f"feedback shape {x.shape} does not match model {model!r}'s "
                f"per-sample input shape {expected}"
            )
        with self._rejected_lock:
            self.stats.feedback += 1
            if prediction is not None:
                self.stats.feedback_predicted += 1
                if int(prediction) == int(label):
                    self.stats.feedback_correct += 1
        sink = self.feedback_sink
        if sink is not None:
            sink(model, x, int(label), None if prediction is None else int(prediction))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def pending(self, model: Optional[str] = None) -> int:
        """Queued-but-unserved request count (one model, or the service).

        Raises:
            KeyError: ``model`` is not registered.
        """
        if model is None:
            return self.scheduler.pending()
        return sum(
            self.scheduler.pending(_queue_key(model, bits))
            for bits in self.repository.variants(model)
        )

    @property
    def batch_records(self) -> List:
        """Per-batch accounting records, in execution order."""
        return self.pool.batch_records
