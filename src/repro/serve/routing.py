"""Precision-aware request routing across a model's bitwidth variants.

This is the paper's adaptive-precision loop transplanted from training time
to serving time.  During training, APT keeps precision as low as the
quality signal allows; at serving time the router picks, per request, the
**lowest-bitwidth variant that satisfies the request's SLO**:

* ``min_bits`` is the quality floor -- the request refuses variants
  narrower than this (the serving-side stand-in for the paper's accuracy
  target, since stored bitwidth is the deployment-time quality knob);
* ``max_energy_uj`` / ``max_latency_s`` bound the *modelled* per-request
  energy and device latency, priced with the :mod:`repro.hardware` models
  against each variant's per-layer stored bitwidths.

Variants are scanned cheapest (narrowest) first, so the first admissible
variant is the cheapest one that honours the quality floor; if every
variant above the floor busts the energy/latency budget, the router falls
back to the cheapest admissible-by-quality variant (serving degraded is
better than not serving) unless the SLO is marked ``strict``, in which case
the request is rejected with :class:`NoVariantError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile
from repro.obs.registry import MetricRegistry
from repro.serve.repository import ModelRepository
from repro.serve.types import BatchAccountant, VariantCost


class NoVariantError(RuntimeError):
    """No bitwidth variant satisfies the request's strict SLO."""


@dataclass(frozen=True)
class RequestSLO:
    """Per-request service-level objective driving variant selection.

    Raises:
        ValueError: ``prefer`` is neither ``"efficiency"`` nor
            ``"quality"``.
    """

    #: Quality floor: refuse variants stored below this many bits.
    min_bits: int = 0
    #: Budget on the modelled per-request energy, in microjoules.
    max_energy_uj: Optional[float] = None
    #: Budget on the modelled per-request device latency, in seconds.
    max_latency_s: Optional[float] = None
    #: ``"efficiency"`` picks the narrowest variant meeting the SLO (the
    #: paper's cheapest-precision-that-suffices loop); ``"quality"`` picks
    #: the widest variant that still fits the energy/latency budgets.
    prefer: str = "efficiency"
    #: Reject (instead of degrading to the cheapest variant) when no
    #: variant fits the budgets.
    strict: bool = False

    def __post_init__(self) -> None:
        if self.prefer not in ("efficiency", "quality"):
            raise ValueError(f"prefer must be 'efficiency' or 'quality', got {self.prefer!r}")


#: The default objective: any precision, no budget -- routes to the
#: narrowest variant on offer.
DEFAULT_SLO = RequestSLO()


@dataclass(frozen=True)
class RoutingDecision:
    """The router's verdict for one request."""

    model: str
    bits: int
    cost: VariantCost
    #: True when the budgets could not be met and the router degraded to
    #: the cheapest quality-admissible variant.
    degraded: bool = False


class PrecisionRouter:
    """Route requests to the cheapest variant that meets their SLO."""

    def __init__(
        self,
        repository: ModelRepository,
        *,
        energy_model: Optional[EnergyModel] = None,
        compute_profile: Optional[ComputeProfile] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.repository = repository
        self.energy_model = energy_model
        self.compute_profile = compute_profile
        if metrics is not None:
            self._routed_counter = metrics.counter(
                "serve_routed_total",
                "Routing decisions per (model, chosen bitwidth).",
                labels=("model", "bits"),
            )
            self._degraded_counter = metrics.counter(
                "serve_routing_degraded_total",
                "Decisions that fell back to the cheapest variant over budget.",
                labels=("model",),
            )
            self._noroute_counter = metrics.counter(
                "serve_routing_rejected_total",
                "Requests rejected because no variant satisfied a strict SLO.",
                labels=("model",),
            )
        else:
            self._routed_counter = self._degraded_counter = self._noroute_counter = None
        # Router state is touched from submit threads and worker threads;
        # costs are static per variant (profile × stored bitwidths), so they
        # are memoised rather than re-priced on the submit hot path.  A
        # hot-swap can change a variant's per-layer widths, so each memo is
        # tagged with the repository generation it was priced at and
        # re-priced when the counter moves.
        self._lock = threading.Lock()
        self._accountants: Dict[str, BatchAccountant] = {}
        self._costs: Dict[Tuple[str, int], Tuple[int, VariantCost]] = {}

    def accountant(self, model: str) -> BatchAccountant:
        """The (memoised) cost accountant for one repository model.

        Raises:
            KeyError: the model is not registered.
        """
        with self._lock:
            cached = self._accountants.get(model)
            if cached is None:
                cached = BatchAccountant(
                    self.repository.profile(model),
                    energy_model=self.energy_model,
                    compute_profile=self.compute_profile,
                )
                self._accountants[model] = cached
            return cached

    def variant_cost(self, model: str, bits: int) -> VariantCost:
        """Modelled per-request cost of serving ``model`` at ``bits``.

        Memoised per (model, bits, repository generation): a hot-swapped
        variant is re-priced on its first routing decision after the swap.

        Args:
            model: Repository model name.
            bits: Variant key to price.

        Returns:
            The (possibly ``None``-valued, when no device models were
            configured) per-request :class:`~repro.serve.types.VariantCost`.

        Raises:
            KeyError: the model has no such variant.
        """
        return self._variant_cost(model, bits, self.repository.generation(model))

    def _variant_cost(self, model: str, bits: int, generation: int) -> VariantCost:
        """:meth:`variant_cost` with the generation already read -- ``route``
        prices several variants per request and reads the counter once."""
        with self._lock:
            cached = self._costs.get((model, bits))
        if cached is not None and cached[0] == generation:
            return cached[1]
        forward_bits = self.repository.forward_bits(model, bits)
        cost = self.accountant(model).request_costs(forward_bits)
        with self._lock:
            self._costs[(model, bits)] = (generation, cost)
        return cost

    @staticmethod
    def _within_budget(cost: VariantCost, slo: RequestSLO) -> bool:
        if slo.max_energy_uj is not None:
            if cost.energy_uj is None or cost.energy_uj > slo.max_energy_uj:
                return False
        if slo.max_latency_s is not None:
            if cost.device_seconds is None or cost.device_seconds > slo.max_latency_s:
                return False
        return True

    def route(self, model: str, slo: RequestSLO = DEFAULT_SLO) -> RoutingDecision:
        """Pick the serving variant for one request against its SLO.

        Args:
            model: Repository model name.
            slo: The request's objective; see :class:`RequestSLO`.

        Returns:
            A :class:`RoutingDecision` naming the chosen bitwidth and its
            modelled cost (``degraded=True`` when every in-budget variant
            was unavailable and the cheapest admissible one was chosen).

        Raises:
            NoVariantError: no variant reaches the quality floor, or the
                SLO is strict and no variant fits its budgets.
            KeyError: the model is not registered.
        """
        admissible = [
            bits for bits in self.repository.variants(model) if bits >= slo.min_bits
        ]
        if not admissible:
            self._count_rejected(model)
            raise NoVariantError(
                f"model {model!r} has no variant at or above the quality floor "
                f"of {slo.min_bits} bits (variants: {self.repository.variants(model)})"
            )
        generation = self.repository.generation(model)
        order = admissible if slo.prefer == "efficiency" else list(reversed(admissible))
        for bits in order:
            cost = self._variant_cost(model, bits, generation)
            if self._within_budget(cost, slo):
                self._count_decision(model, bits, degraded=False)
                return RoutingDecision(model=model, bits=bits, cost=cost)
        if slo.strict:
            self._count_rejected(model)
            raise NoVariantError(
                f"no variant of model {model!r} meets the strict SLO "
                f"(min_bits={slo.min_bits}, max_energy_uj={slo.max_energy_uj}, "
                f"max_latency_s={slo.max_latency_s})"
            )
        # Degrade: serve the cheapest quality-admissible variant anyway.
        cheapest = admissible[0]
        self._count_decision(model, cheapest, degraded=True)
        return RoutingDecision(
            model=model,
            bits=cheapest,
            cost=self._variant_cost(model, cheapest, generation),
            degraded=True,
        )

    def _count_decision(self, model: str, bits: int, *, degraded: bool) -> None:
        if self._routed_counter is not None:
            self._routed_counter.labels(model=model, bits=str(bits)).inc()
            if degraded:
                self._degraded_counter.labels(model=model).inc()

    def _count_rejected(self, model: str) -> None:
        if self._noroute_counter is not None:
            self._noroute_counter.labels(model=model).inc()
