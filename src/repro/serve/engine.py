"""Micro-batching inference engine over a compiled execution plan.

Request flow::

    submit(x) -> request queue -> dynamic batch -> ExecutionPlan.run
              -> per-request results + latency / energy accounting

The engine is cooperative and single-threaded: a front-end calls
:meth:`MicroBatchServer.submit` as requests arrive and :meth:`step` (or
:meth:`drain`) from its serving loop.  A batch is dispatched when enough
requests are queued (``max_batch_size``) or when the oldest pending request
has waited ``max_queue_delay_s`` (with a zero delay, every ``step`` serves
whatever is pending).  Keeping the loop cooperative makes serving behaviour
deterministic and testable; the clock is injectable for the same reason.

Accounting has two sides:

* **measured** -- wall-clock compute time per batch and per-request queue +
  compute latency, from the injected clock;
* **modelled** -- per-batch energy (pJ) and device-time estimates from the
  analytic :mod:`repro.hardware` models, using the plan's per-layer stored
  bitwidths, so a bench run reports what the batch *would* cost on an edge
  accelerator profile rather than on the host CPU.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.hardware.accounting import inference_energy_pj
from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile, LatencyModel
from repro.hardware.profile import ModelProfile
from repro.runtime.plan import ExecutionPlan


@dataclass
class InferenceRequest:
    """One queued sample awaiting a batch slot."""

    request_id: int
    x: np.ndarray
    enqueued_at: float


@dataclass
class InferenceResult:
    """Outcome of one request after its batch executed."""

    request_id: int
    logits: np.ndarray
    prediction: int
    batch_id: int
    batch_size: int
    queue_seconds: float
    compute_seconds: float

    @property
    def latency_seconds(self) -> float:
        return self.queue_seconds + self.compute_seconds


@dataclass
class BatchRecord:
    """Accounting for one dispatched batch."""

    batch_id: int
    size: int
    compute_seconds: float
    energy_pj: Optional[float] = None
    device_seconds: Optional[float] = None


@dataclass
class ServeStats:
    """Aggregate view over everything the engine served so far."""

    requests: int = 0
    batches: int = 0
    wall_compute_seconds: float = 0.0
    energy_pj: float = 0.0
    device_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Requests per second of plan compute (excludes queueing idle time)."""
        if self.wall_compute_seconds <= 0:
            return 0.0
        return self.requests / self.wall_compute_seconds

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))


class MicroBatchServer:
    """Queue requests, execute them in dynamic batches through a plan.

    Parameters
    ----------
    plan:
        The compiled :class:`~repro.runtime.plan.ExecutionPlan` to serve.
    max_batch_size:
        Dispatch as soon as this many requests are pending.
    max_queue_delay_s:
        Also dispatch (a partial batch) once the oldest pending request has
        waited this long.  ``0.0`` means every :meth:`step` call flushes.
    profile, energy_model, compute_profile:
        Optional analytic models; when ``profile`` is given each batch gets
        an energy estimate (and a device-latency estimate if
        ``compute_profile`` is also given) at the plan's stored bitwidths.
    clock:
        Time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        *,
        max_batch_size: int = 32,
        max_queue_delay_s: float = 0.0,
        profile: Optional[ModelProfile] = None,
        energy_model: Optional[EnergyModel] = None,
        compute_profile: Optional[ComputeProfile] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be at least 1, got {max_batch_size}")
        if max_queue_delay_s < 0:
            raise ValueError(f"max_queue_delay_s must be non-negative, got {max_queue_delay_s}")
        self.plan = plan
        self.max_batch_size = max_batch_size
        self.max_queue_delay_s = max_queue_delay_s
        self.profile = profile
        self.energy_model = energy_model
        self.clock = clock
        self._latency_model = (
            LatencyModel(profile, compute_profile)
            if profile is not None and compute_profile is not None
            else None
        )
        self._forward_bits: Dict[str, int] = plan.bits_by_layer()
        self._queue: Deque[InferenceRequest] = deque()
        self._next_request_id = 0
        self._next_batch_id = 0
        self.stats = ServeStats()
        self.batch_records: List[BatchRecord] = []

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, x: np.ndarray) -> int:
        """Enqueue one sample; returns its request id.

        The sample is copied: requests may sit in the queue until a batch
        fills, so a front-end reusing one input buffer must not be able to
        corrupt already-submitted requests.
        """
        x = np.array(x, dtype=np.float64, copy=True)
        if x.shape != self.plan.input_shape:
            raise ValueError(
                f"request shape {x.shape} does not match the plan's per-sample "
                f"input shape {self.plan.input_shape}"
            )
        request = InferenceRequest(self._next_request_id, x, self.clock())
        self._next_request_id += 1
        self._queue.append(request)
        return request.request_id

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Serving loop side
    # ------------------------------------------------------------------ #
    def _batch_due(self) -> bool:
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch_size:
            return True
        waited = self.clock() - self._queue[0].enqueued_at
        return waited >= self.max_queue_delay_s

    def step(self) -> List[InferenceResult]:
        """Serve at most one batch, if one is due.  Returns its results."""
        if not self._batch_due():
            return []
        return self._execute_batch()

    def drain(self) -> List[InferenceResult]:
        """Serve everything pending, ignoring the delay policy."""
        results: List[InferenceResult] = []
        while self._queue:
            results.extend(self._execute_batch())
        return results

    def _execute_batch(self) -> List[InferenceResult]:
        size = min(len(self._queue), self.max_batch_size)
        requests = [self._queue.popleft() for _ in range(size)]
        batch = np.stack([request.x for request in requests])
        started = self.clock()
        logits = self.plan.run(batch)
        compute_seconds = self.clock() - started
        predictions = np.argmax(logits, axis=-1)

        batch_id = self._next_batch_id
        self._next_batch_id += 1
        record = BatchRecord(batch_id=batch_id, size=size, compute_seconds=compute_seconds)
        if self.profile is not None:
            record.energy_pj = inference_energy_pj(
                self.profile, self._forward_bits, size, self.energy_model
            )
            self.stats.energy_pj += record.energy_pj
        if self._latency_model is not None:
            record.device_seconds = self._latency_model.inference_seconds(
                size, self._forward_bits
            )
            self.stats.device_seconds += record.device_seconds
        self.batch_records.append(record)

        results = []
        for index, request in enumerate(requests):
            queue_seconds = started - request.enqueued_at
            results.append(
                InferenceResult(
                    request_id=request.request_id,
                    logits=logits[index],
                    prediction=int(predictions[index]),
                    batch_id=batch_id,
                    batch_size=size,
                    queue_seconds=queue_seconds,
                    compute_seconds=compute_seconds,
                )
            )
            self.stats.latencies.append(queue_seconds + compute_seconds)
        self.stats.requests += size
        self.stats.batches += 1
        self.stats.wall_compute_seconds += compute_seconds
        return results
