"""Cooperative single-model micro-batching engine (a façade).

:class:`MicroBatchServer` is the deterministic, single-threaded front door
to the serving stack: one compiled plan, one request queue, batches served
inline from the caller's thread.  Since the concurrent service landed it is
a thin composition of the shared layers --
:class:`~repro.serve.scheduler.Scheduler` (one queue, the same max-batch /
max-delay / bounded-depth policy the multi-model service uses) and
:class:`~repro.serve.types.BatchAccountant` (the same measured + modelled
accounting the worker pool attaches) -- so its behaviour and the worker
pool's agree by construction.

Request flow::

    submit(x) -> scheduler queue -> dynamic batch -> ExecutionPlan.run
              -> per-request results + latency / energy accounting

The engine stays cooperative on purpose: a front-end calls ``submit`` as
requests arrive and ``step`` (or ``drain``) from its serving loop, which
makes serving behaviour deterministic and testable; the clock is injectable
for the same reason.  For multi-threaded throughput, multiple models, or
precision-aware routing, use :class:`~repro.serve.service.InferenceService`.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, List, Optional

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile
from repro.hardware.profile import ModelProfile
from repro.obs.registry import MetricRegistry
from repro.runtime.plan import ExecutionPlan
from repro.serve.scheduler import QueueFullError, QueuePolicy, Scheduler
from repro.serve.types import (
    BatchAccountant,
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    ServeStats,
)

#: The single queue key used by the façade's private scheduler.
_QUEUE = "default"


class MicroBatchServer:
    """Queue requests, execute them in dynamic batches through a plan.

    Parameters
    ----------
    plan:
        The compiled :class:`~repro.runtime.plan.ExecutionPlan` to serve.
    max_batch_size:
        Dispatch as soon as this many requests are pending.
    max_queue_delay_s:
        Also dispatch (a partial batch) once the oldest pending request has
        waited this long.  ``0.0`` means every :meth:`step` call flushes.
    max_queue_depth:
        Bounded queue depth: ``submit`` raises
        :class:`~repro.serve.scheduler.QueueFullError` beyond it.  ``None``
        (the default) keeps the historical unbounded behaviour.
    profile, energy_model, compute_profile:
        Optional analytic models; when ``profile`` is given each batch gets
        an energy estimate (and a device-latency estimate if
        ``compute_profile`` is also given) at the plan's stored bitwidths.
    clock:
        Time source; injectable for deterministic tests.
    metrics:
        Registry the engine's queue counters and stats report into;
        ``None`` keeps a private one inside :class:`ServeStats`.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        *,
        max_batch_size: int = 32,
        max_queue_delay_s: float = 0.0,
        max_queue_depth: Optional[int] = None,
        profile: Optional[ModelProfile] = None,
        energy_model: Optional[EnergyModel] = None,
        compute_profile: Optional[ComputeProfile] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.plan = plan
        self.profile = profile
        self.energy_model = energy_model
        self.clock = clock
        self._accountant = BatchAccountant(profile, energy_model, compute_profile)
        self._forward_bits = plan.bits_by_layer()
        self._policy = QueuePolicy(
            max_batch_size=max_batch_size,
            max_queue_delay_s=max_queue_delay_s,
            max_depth=max_queue_depth,
        )
        self._scheduler = Scheduler(clock=clock, metrics=metrics)
        self._scheduler.register(_QUEUE, self._policy)
        # One arena, preallocated by the plan's memory planner at the
        # largest batch the engine will ever dispatch.
        self._ctx = plan.create_context(batch_size=max_batch_size)
        self._request_ids = itertools.count()
        self._next_batch_id = 0
        self.stats = ServeStats(metrics)
        self.batch_records: List[BatchRecord] = []

    # The batching policy is frozen into the scheduler queue at
    # construction; read-only properties keep the historical attributes
    # observable while making attempted runtime mutation fail loudly.
    @property
    def max_batch_size(self) -> int:
        """Dispatch threshold: a batch is due at this many pending requests."""
        return self._policy.max_batch_size

    @property
    def max_queue_delay_s(self) -> float:
        """Dispatch threshold: a batch is due once its oldest request waited this long."""
        return self._policy.max_queue_delay_s

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, x: np.ndarray) -> int:
        """Enqueue one sample; returns its request id.

        The sample is copied: requests may sit in the queue until a batch
        fills, so a front-end reusing one input buffer must not be able to
        corrupt already-submitted requests.
        """
        x = np.array(x, dtype=np.float64, copy=True)
        if x.shape != self.plan.input_shape:
            raise ValueError(
                f"request shape {x.shape} does not match the plan's per-sample "
                f"input shape {self.plan.input_shape}"
            )
        request = InferenceRequest(next(self._request_ids), x, self.clock())
        try:
            self._scheduler.submit(_QUEUE, request)
        except QueueFullError:
            self.stats.record_rejected()
            raise
        return request.request_id

    def pending(self) -> int:
        """Requests queued but not yet served."""
        return self._scheduler.pending(_QUEUE)

    # ------------------------------------------------------------------ #
    # Serving loop side
    # ------------------------------------------------------------------ #
    def step(self) -> List[InferenceResult]:
        """Serve at most one batch, if one is due.  Returns its results."""
        item = self._scheduler.pop_due()
        if item is None:
            return []
        return self._execute_batch(item[1])

    def drain(self) -> List[InferenceResult]:
        """Serve everything pending, ignoring the delay policy."""
        results: List[InferenceResult] = []
        while True:
            item = self._scheduler.pop_any()
            if item is None:
                return results
            results.extend(self._execute_batch(item[1]))

    def _execute_batch(self, requests: List[InferenceRequest]) -> List[InferenceResult]:
        size = len(requests)
        batch = np.stack([request.x for request in requests])
        started = self.clock()
        logits = self.plan.run(batch, ctx=self._ctx)
        compute_seconds = self.clock() - started
        predictions = np.argmax(logits, axis=-1)

        batch_id = self._next_batch_id
        self._next_batch_id += 1
        record = BatchRecord(batch_id=batch_id, size=size, compute_seconds=compute_seconds)
        self._accountant.annotate(record, self._forward_bits)
        self.batch_records.append(record)

        results = []
        latencies: List[float] = []
        for index, request in enumerate(requests):
            queue_seconds = started - request.enqueued_at
            latencies.append(queue_seconds + compute_seconds)
            results.append(
                InferenceResult(
                    request_id=request.request_id,
                    logits=logits[index],
                    prediction=int(predictions[index]),
                    batch_id=batch_id,
                    batch_size=size,
                    queue_seconds=queue_seconds,
                    compute_seconds=compute_seconds,
                )
            )
        self.stats.record_batch(record, latencies)
        return results
