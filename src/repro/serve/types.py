"""Shared request / result / accounting types of the serving stack.

Every layer of the stack speaks these types: the scheduler queues
:class:`InferenceRequest` objects, workers and the single-model engine
produce :class:`InferenceResult` per request and one :class:`BatchRecord`
per dispatched batch, and :class:`ServeStats` aggregates either side.
:class:`BatchAccountant` owns the modelled (energy / device-latency) side of
the accounting so the cooperative engine and the threaded worker pool share
one implementation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.accounting import inference_energy_pj
from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile, LatencyModel
from repro.hardware.profile import ModelProfile
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricRegistry


class ResultFuture:
    """Hand-rolled future for one request's :class:`InferenceResult`.

    The submitting thread holds the future; the worker that executes the
    request's batch fulfils it.  Smaller than ``concurrent.futures.Future``
    on purpose: exactly one producer, results are never cancelled.
    """

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional["InferenceResult"] = None
        self._error: Optional[BaseException] = None

    def set_result(self, result: "InferenceResult") -> None:
        """Fulfil the future (worker side)."""
        self._result = result
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        """Fail the future; ``result()`` re-raises ``error`` (worker side)."""
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether a result or error has been set (non-blocking)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> "InferenceResult":
        """Block until the request's batch executed.

        Raises:
            TimeoutError: nothing arrived within ``timeout`` seconds.
            BaseException: whatever error the executing worker recorded.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("inference result not ready within the timeout")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class InferenceRequest:
    """One queued sample awaiting a batch slot."""

    request_id: int
    x: np.ndarray
    enqueued_at: float
    #: Name of the repository model this request targets ("" for the
    #: single-model engine, which serves exactly one plan).
    model: str = ""
    #: Bitwidth variant the router picked for this request (None before
    #: routing / for the single-model engine).
    bits: Optional[int] = None
    #: Completion handle fulfilled by the executing worker (None in the
    #: cooperative single-model engine, which returns results directly).
    future: Optional[ResultFuture] = None
    #: Per-request span recorder (:class:`repro.obs.Trace`); opened by the
    #: service at submit time, marked by the executing worker, attached to
    #: the result.  ``None`` when tracing is disabled.
    trace: Optional[object] = None
    #: The :class:`~repro.serve.routing.RequestSLO` this request was routed
    #: under, carried along so the worker can check the served latency /
    #: energy against its budgets (``None``: no SLO accounting).
    slo: Optional[object] = None


@dataclass
class InferenceResult:
    """Outcome of one request after its batch executed."""

    request_id: int
    logits: np.ndarray
    prediction: int
    batch_id: int
    batch_size: int
    queue_seconds: float
    compute_seconds: float
    model: str = ""
    bits: Optional[int] = None
    #: The request's completed :class:`repro.obs.Trace` (queue-wait /
    #: batch-assembly / kernel / post spans), when tracing was enabled.
    trace: Optional[object] = None

    @property
    def latency_seconds(self) -> float:
        """End-to-end request latency: queueing plus batch compute."""
        return self.queue_seconds + self.compute_seconds


@dataclass
class BatchRecord:
    """Accounting for one dispatched batch."""

    batch_id: int
    size: int
    compute_seconds: float
    energy_pj: Optional[float] = None
    device_seconds: Optional[float] = None
    model: str = ""
    bits: Optional[int] = None


class ServeStats:
    """Aggregate view over everything a server / worker pool served so far.

    Since the observability refactor this is a **thin view over a
    :class:`repro.obs.MetricRegistry`**: every total lives in a registry
    counter / histogram (shared with dashboards, the ``repro.cli metrics``
    command and the SLO monitor), and the historical attribute surface --
    ``stats.requests``, ``stats.rejected`` and friends -- reads straight
    through to it.  Mutation goes through the atomic recorders
    (:meth:`record_batch`, :meth:`record_rejected`,
    :meth:`record_feedback`); the property setters remain for tests and
    compatibility but replace the stored total wholesale, so concurrent
    writers must use the recorders (this is what fixed the historical
    feedback-vs-batch-counter race under multi-worker load).

    Args:
        registry: Registry to publish into; ``None`` creates a private
            one.  Two stats views sharing one registry share totals.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self._requests = self.registry.counter(
            "serve_requests_total", "Requests served, by model.", labels=("model",)
        )
        self._batches = self.registry.counter(
            "serve_batches_total", "Batches dispatched and executed."
        )
        self._rejected = self.registry.counter(
            "serve_rejected_total", "Requests rejected by queue backpressure."
        )
        self._feedback = self.registry.counter(
            "serve_feedback_total", "Labelled feedback samples reported."
        )
        self._feedback_predicted = self.registry.counter(
            "serve_feedback_predicted_total",
            "Feedback samples that carried the service's prediction.",
        )
        self._feedback_correct = self.registry.counter(
            "serve_feedback_correct_total",
            "Feedback samples whose prediction matched the label.",
        )
        self._wall_compute = self.registry.counter(
            "serve_compute_seconds_total", "Wall-clock seconds spent in plan compute."
        )
        self._energy = self.registry.counter(
            "serve_energy_pj_total", "Modelled device energy of every batch, in pJ."
        )
        self._device_seconds = self.registry.counter(
            "serve_device_seconds_total", "Modelled device latency of every batch."
        )
        self._latency_hist = self.registry.histogram(
            "serve_request_latency_seconds",
            "End-to-end request latency (queueing + batch compute).",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        # Raw latencies are kept alongside the histogram so
        # latency_percentile stays exact (the histogram's buckets are for
        # dashboards, not for the bench reports' p50/p99 numbers).
        self._lock = threading.Lock()
        self._latencies: List[float] = []

    # -- reads (the historical attribute surface) ----------------------- #
    @property
    def requests(self) -> int:
        """Requests served so far (all models)."""
        return int(self._requests.total())

    @requests.setter
    def requests(self, value: int) -> None:
        self._replace_by_model(self._requests, value)

    @property
    def requests_by_model(self) -> Dict[str, int]:
        """Requests served per repository model (engine traffic excluded)."""
        return {
            labels["model"]: int(counter.value)
            for labels, counter in self._requests.series()
            if labels["model"] and counter.value
        }

    @property
    def batches(self) -> int:
        """Batches executed so far."""
        return int(self._batches.value)

    @batches.setter
    def batches(self, value: int) -> None:
        self._batches._default()._force(value)

    @property
    def rejected(self) -> int:
        """Requests rejected by queue backpressure."""
        return int(self._rejected.value)

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._rejected._default()._force(value)

    @property
    def feedback(self) -> int:
        """Labelled feedback samples reported through ``record_feedback``."""
        return int(self._feedback.value)

    @feedback.setter
    def feedback(self, value: int) -> None:
        self._feedback._default()._force(value)

    @property
    def feedback_predicted(self) -> int:
        """Feedback samples that carried the service's prediction alongside."""
        return int(self._feedback_predicted.value)

    @feedback_predicted.setter
    def feedback_predicted(self, value: int) -> None:
        self._feedback_predicted._default()._force(value)

    @property
    def feedback_correct(self) -> int:
        """Feedback samples whose reported prediction matched the label."""
        return int(self._feedback_correct.value)

    @feedback_correct.setter
    def feedback_correct(self, value: int) -> None:
        self._feedback_correct._default()._force(value)

    @property
    def wall_compute_seconds(self) -> float:
        """Wall-clock seconds spent inside plan compute."""
        return self._wall_compute.value

    @wall_compute_seconds.setter
    def wall_compute_seconds(self, value: float) -> None:
        self._wall_compute._default()._force(value)

    @property
    def energy_pj(self) -> float:
        """Modelled device energy across every batch, in picojoules."""
        return self._energy.value

    @energy_pj.setter
    def energy_pj(self, value: float) -> None:
        self._energy._default()._force(value)

    @property
    def device_seconds(self) -> float:
        """Modelled device latency summed across every batch."""
        return self._device_seconds.value

    @device_seconds.setter
    def device_seconds(self, value: float) -> None:
        self._device_seconds._default()._force(value)

    @property
    def latencies(self) -> List[float]:
        """Per-request end-to-end latencies, in execution order (a copy)."""
        with self._lock:
            return list(self._latencies)

    @staticmethod
    def _replace_by_model(family, value) -> None:
        """Setter support: replace a labelled counter's whole total."""
        for _, counter in family.series():
            counter._force(0.0)
        family.labels(model="")._force(value)

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch."""
        batches = self.batches
        return self.requests / batches if batches else 0.0

    @property
    def observed_accuracy(self) -> Optional[float]:
        """Accuracy over feedback samples that carried a prediction (or None)."""
        predicted = self.feedback_predicted
        if not predicted:
            return None
        return self.feedback_correct / predicted

    @property
    def throughput_rps(self) -> float:
        """Requests per second of plan compute (excludes queueing idle time)."""
        seconds = self.wall_compute_seconds
        if seconds <= 0:
            return 0.0
        return self.requests / seconds

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of per-request latency, in seconds."""
        with self._lock:
            if not self._latencies:
                return 0.0
            values = np.asarray(self._latencies)
        return float(np.percentile(values, q))

    # -- atomic recorders ----------------------------------------------- #
    def record_batch(self, record: BatchRecord, latencies: List[float]) -> None:
        """Fold one executed batch into the totals (atomic)."""
        self._requests.labels(model=record.model).inc(record.size)
        self._batches.inc()
        self._wall_compute.inc(record.compute_seconds)
        if record.energy_pj is not None:
            self._energy.inc(record.energy_pj)
        if record.device_seconds is not None:
            self._device_seconds.inc(record.device_seconds)
        hist = self._latency_hist._default()
        for latency in latencies:
            hist.observe(latency)
        with self._lock:
            self._latencies.extend(latencies)

    def record_rejected(self) -> None:
        """Count one request rejected by backpressure (atomic)."""
        self._rejected.inc()

    def record_feedback(
        self, label: int, prediction: Optional[int] = None
    ) -> None:
        """Count one labelled feedback sample (atomic).

        Each underlying counter update is atomic, so feedback totals are
        never lost under concurrent reporters -- the historical
        read-modify-write on plain ints was.
        """
        self._feedback.inc()
        if prediction is not None:
            self._feedback_predicted.inc()
            if int(prediction) == int(label):
                self._feedback_correct.inc()


class BatchAccountant:
    """Analytic (modelled) energy / device-latency accounting for batches.

    Wraps the :mod:`repro.hardware` models for one served model: given the
    per-layer forward bitwidths of the plan a batch executed on, attaches
    the estimated edge-device energy (pJ) and latency (s) to the batch
    record.  Stateless apart from the models, so one accountant can be
    shared by any number of workers.
    """

    def __init__(
        self,
        profile: Optional[ModelProfile],
        energy_model: Optional[EnergyModel] = None,
        compute_profile: Optional[ComputeProfile] = None,
    ) -> None:
        self.profile = profile
        self.energy_model = energy_model
        self._latency_model = (
            LatencyModel(profile, compute_profile)
            if profile is not None and compute_profile is not None
            else None
        )

    def annotate(self, record: BatchRecord, forward_bits: Dict[str, int]) -> None:
        """Fill ``record.energy_pj`` / ``record.device_seconds`` if modelled."""
        if self.profile is not None:
            record.energy_pj = inference_energy_pj(
                self.profile, forward_bits, record.size, self.energy_model
            )
        if self._latency_model is not None:
            record.device_seconds = self._latency_model.inference_seconds(
                record.size, forward_bits
            )

    def request_costs(self, forward_bits: Dict[str, int]) -> "VariantCost":
        """Modelled per-request energy (pJ) and latency (s) at these bitwidths."""
        energy = (
            inference_energy_pj(self.profile, forward_bits, 1, self.energy_model)
            if self.profile is not None
            else None
        )
        latency = (
            self._latency_model.inference_seconds(1, forward_bits)
            if self._latency_model is not None
            else None
        )
        return VariantCost(energy_pj=energy, device_seconds=latency)


@dataclass(frozen=True)
class VariantCost:
    """Modelled per-request cost of serving one bitwidth variant."""

    energy_pj: Optional[float]
    device_seconds: Optional[float]

    @property
    def energy_uj(self) -> Optional[float]:
        """The modelled energy in microjoules (the SLO budget's unit)."""
        return None if self.energy_pj is None else self.energy_pj * 1e-6
