"""Shared request / result / accounting types of the serving stack.

Every layer of the stack speaks these types: the scheduler queues
:class:`InferenceRequest` objects, workers and the single-model engine
produce :class:`InferenceResult` per request and one :class:`BatchRecord`
per dispatched batch, and :class:`ServeStats` aggregates either side.
:class:`BatchAccountant` owns the modelled (energy / device-latency) side of
the accounting so the cooperative engine and the threaded worker pool share
one implementation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.accounting import inference_energy_pj
from repro.hardware.energy import EnergyModel
from repro.hardware.latency import ComputeProfile, LatencyModel
from repro.hardware.profile import ModelProfile


class ResultFuture:
    """Hand-rolled future for one request's :class:`InferenceResult`.

    The submitting thread holds the future; the worker that executes the
    request's batch fulfils it.  Smaller than ``concurrent.futures.Future``
    on purpose: exactly one producer, results are never cancelled.
    """

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional["InferenceResult"] = None
        self._error: Optional[BaseException] = None

    def set_result(self, result: "InferenceResult") -> None:
        """Fulfil the future (worker side)."""
        self._result = result
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        """Fail the future; ``result()`` re-raises ``error`` (worker side)."""
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether a result or error has been set (non-blocking)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> "InferenceResult":
        """Block until the request's batch executed.

        Raises:
            TimeoutError: nothing arrived within ``timeout`` seconds.
            BaseException: whatever error the executing worker recorded.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("inference result not ready within the timeout")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class InferenceRequest:
    """One queued sample awaiting a batch slot."""

    request_id: int
    x: np.ndarray
    enqueued_at: float
    #: Name of the repository model this request targets ("" for the
    #: single-model engine, which serves exactly one plan).
    model: str = ""
    #: Bitwidth variant the router picked for this request (None before
    #: routing / for the single-model engine).
    bits: Optional[int] = None
    #: Completion handle fulfilled by the executing worker (None in the
    #: cooperative single-model engine, which returns results directly).
    future: Optional[ResultFuture] = None


@dataclass
class InferenceResult:
    """Outcome of one request after its batch executed."""

    request_id: int
    logits: np.ndarray
    prediction: int
    batch_id: int
    batch_size: int
    queue_seconds: float
    compute_seconds: float
    model: str = ""
    bits: Optional[int] = None

    @property
    def latency_seconds(self) -> float:
        """End-to-end request latency: queueing plus batch compute."""
        return self.queue_seconds + self.compute_seconds


@dataclass
class BatchRecord:
    """Accounting for one dispatched batch."""

    batch_id: int
    size: int
    compute_seconds: float
    energy_pj: Optional[float] = None
    device_seconds: Optional[float] = None
    model: str = ""
    bits: Optional[int] = None


@dataclass
class ServeStats:
    """Aggregate view over everything a server / worker pool served so far."""

    requests: int = 0
    batches: int = 0
    rejected: int = 0
    #: Labelled feedback samples reported through ``record_feedback``.
    feedback: int = 0
    #: Feedback samples that carried the service's prediction alongside.
    feedback_predicted: int = 0
    #: Feedback samples whose reported prediction matched the label.
    feedback_correct: int = 0
    wall_compute_seconds: float = 0.0
    energy_pj: float = 0.0
    device_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    requests_by_model: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch."""
        return self.requests / self.batches if self.batches else 0.0

    @property
    def observed_accuracy(self) -> Optional[float]:
        """Accuracy over feedback samples that carried a prediction (or None)."""
        if not self.feedback_predicted:
            return None
        return self.feedback_correct / self.feedback_predicted

    @property
    def throughput_rps(self) -> float:
        """Requests per second of plan compute (excludes queueing idle time)."""
        if self.wall_compute_seconds <= 0:
            return 0.0
        return self.requests / self.wall_compute_seconds

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of per-request latency, in seconds."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def record_batch(self, record: BatchRecord, latencies: List[float]) -> None:
        """Fold one executed batch into the totals (caller handles locking)."""
        self.requests += record.size
        self.batches += 1
        self.wall_compute_seconds += record.compute_seconds
        if record.energy_pj is not None:
            self.energy_pj += record.energy_pj
        if record.device_seconds is not None:
            self.device_seconds += record.device_seconds
        self.latencies.extend(latencies)
        if record.model:
            self.requests_by_model[record.model] = (
                self.requests_by_model.get(record.model, 0) + record.size
            )


class BatchAccountant:
    """Analytic (modelled) energy / device-latency accounting for batches.

    Wraps the :mod:`repro.hardware` models for one served model: given the
    per-layer forward bitwidths of the plan a batch executed on, attaches
    the estimated edge-device energy (pJ) and latency (s) to the batch
    record.  Stateless apart from the models, so one accountant can be
    shared by any number of workers.
    """

    def __init__(
        self,
        profile: Optional[ModelProfile],
        energy_model: Optional[EnergyModel] = None,
        compute_profile: Optional[ComputeProfile] = None,
    ) -> None:
        self.profile = profile
        self.energy_model = energy_model
        self._latency_model = (
            LatencyModel(profile, compute_profile)
            if profile is not None and compute_profile is not None
            else None
        )

    def annotate(self, record: BatchRecord, forward_bits: Dict[str, int]) -> None:
        """Fill ``record.energy_pj`` / ``record.device_seconds`` if modelled."""
        if self.profile is not None:
            record.energy_pj = inference_energy_pj(
                self.profile, forward_bits, record.size, self.energy_model
            )
        if self._latency_model is not None:
            record.device_seconds = self._latency_model.inference_seconds(
                record.size, forward_bits
            )

    def request_costs(self, forward_bits: Dict[str, int]) -> "VariantCost":
        """Modelled per-request energy (pJ) and latency (s) at these bitwidths."""
        energy = (
            inference_energy_pj(self.profile, forward_bits, 1, self.energy_model)
            if self.profile is not None
            else None
        )
        latency = (
            self._latency_model.inference_seconds(1, forward_bits)
            if self._latency_model is not None
            else None
        )
        return VariantCost(energy_pj=energy, device_seconds=latency)


@dataclass(frozen=True)
class VariantCost:
    """Modelled per-request cost of serving one bitwidth variant."""

    energy_pj: Optional[float]
    device_seconds: Optional[float]

    @property
    def energy_uj(self) -> Optional[float]:
        """The modelled energy in microjoules (the SLO budget's unit)."""
        return None if self.energy_pj is None else self.energy_pj * 1e-6
