"""Per-model micro-batch queues with admission control and dispatch policy.

The scheduler is the seam between request producers (front-ends calling
``submit``) and batch consumers (the cooperative single-model engine, or the
threads of a :class:`~repro.serve.workers.WorkerPool`).  Each registered
model gets its own bounded FIFO queue; a batch for a model is *due* when
either

* ``max_batch_size`` requests are pending for it, or
* the oldest pending request has waited ``max_queue_delay_s``.

Admission control is depth-based backpressure: when a queue already holds
``max_depth`` requests, ``submit`` raises :class:`QueueFullError` instead of
letting the queue (and tail latency) grow without bound.  The caller decides
what rejection means -- shed the request, retry later, or route to another
model.

All methods are thread-safe.  Consumers either poll (``pop_due``, used by
the cooperative engine) or block (``get_batch``, used by worker threads,
woken by submissions and by ``stop``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from threading import Condition
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import MetricRegistry
from repro.serve.types import InferenceRequest


class QueueFullError(RuntimeError):
    """A model's queue is at its bounded depth; the request was not admitted."""


@dataclass(frozen=True)
class QueuePolicy:
    """Batching / admission parameters of one model's queue."""

    max_batch_size: int = 32
    max_queue_delay_s: float = 0.0
    #: Maximum pending requests before ``submit`` rejects; ``None`` is
    #: unbounded (the single-model engine's backwards-compatible default).
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be at least 1, got {self.max_batch_size}")
        if self.max_queue_delay_s < 0:
            raise ValueError(
                f"max_queue_delay_s must be non-negative, got {self.max_queue_delay_s}"
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be at least 1 or None, got {self.max_depth}")


class _ModelQueue:
    __slots__ = ("policy", "pending")

    def __init__(self, policy: QueuePolicy) -> None:
        self.policy = policy
        self.pending: Deque[InferenceRequest] = deque()


class Scheduler:
    """Thread-safe per-model request queues with max-delay batch dispatch."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        """Args:
            clock: Injectable time source for the max-delay dispatch.
            metrics: Registry for per-queue submitted / dispatched
                counters and the live depth gauge; ``None`` skips them.
        """
        self.clock = clock
        self._cond = Condition()
        self._queues: Dict[str, _ModelQueue] = {}
        #: Round-robin cursor so one busy model cannot starve the others.
        self._rotation: List[str] = []
        self._stopped = False
        if metrics is not None:
            self._submitted_counter = metrics.counter(
                "serve_queue_submitted_total",
                "Requests admitted per scheduler queue.",
                labels=("queue",),
            )
            self._full_counter = metrics.counter(
                "serve_queue_full_total",
                "Requests refused by depth backpressure per queue.",
                labels=("queue",),
            )
            self._dispatched_counter = metrics.counter(
                "serve_queue_batches_total",
                "Batches dispatched per scheduler queue.",
                labels=("queue",),
            )
            self._depth_gauge = metrics.gauge(
                "serve_queue_depth", "Live pending-request depth per queue.",
                labels=("queue",),
            )
        else:
            self._submitted_counter = self._full_counter = None
            self._dispatched_counter = self._depth_gauge = None

    # ------------------------------------------------------------------ #
    # Registration / introspection
    # ------------------------------------------------------------------ #
    def register(self, model: str, policy: Optional[QueuePolicy] = None) -> None:
        """Create one queue under key ``model`` (any string; serving stacks
        use ``model@bits`` variant keys).

        Args:
            model: Queue key.
            policy: Batching/admission parameters (default
                :class:`QueuePolicy`).

        Raises:
            ValueError: the key is already registered.
        """
        with self._cond:
            if model in self._queues:
                raise ValueError(f"model {model!r} already registered with the scheduler")
            self._queues[model] = _ModelQueue(policy or QueuePolicy())
            self._rotation.append(model)

    def models(self) -> List[str]:
        """Registered queue keys, in current round-robin order."""
        with self._cond:
            return list(self._rotation)

    def pending(self, model: Optional[str] = None) -> int:
        """Pending request count of one queue (or all queues summed).

        Raises:
            KeyError: ``model`` names an unregistered queue.
        """
        with self._cond:
            if model is not None:
                return len(self._queue_of(model).pending)
            return sum(len(queue.pending) for queue in self._queues.values())

    def _queue_of(self, model: str) -> _ModelQueue:
        queue = self._queues.get(model)
        if queue is None:
            raise KeyError(f"model {model!r} is not registered with the scheduler")
        return queue

    def _stamp_depth_locked(self, model: str, queue: _ModelQueue) -> None:
        """Publish the queue's live depth (called with the lock held).

        The gauge is stamped at every enqueue- and dequeue-*commit* -- the
        instants the pending deque actually changes length under the lock
        -- and on admission rejection, never early and never tied to the
        (optional) counters, so a scraped depth always equals what a
        concurrent :meth:`pending` call would report.
        """
        if self._depth_gauge is not None:
            self._depth_gauge.labels(queue=model).set(len(queue.pending))

    def policy(self, model: str) -> QueuePolicy:
        """The batching policy of one queue.

        Worker pools read ``max_batch_size`` from it to preallocate their
        execution arenas at the largest batch the queue can dispatch.

        Raises:
            KeyError: ``model`` names an unregistered queue.
        """
        with self._cond:
            return self._queue_of(model).policy

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, model: str, request: InferenceRequest) -> None:
        """Enqueue one request.

        Args:
            model: Registered queue key.
            request: The request to queue (its ``enqueued_at`` drives the
                max-delay dispatch).

        Raises:
            QueueFullError: the queue is at its bounded ``max_depth``.
            KeyError: the queue key is not registered.
            RuntimeError: the scheduler is stopped -- consumers are
                draining (or gone), so admitting the request would strand
                it.
        """
        with self._cond:
            if self._stopped:
                raise RuntimeError("scheduler is stopped; request not admitted")
            queue = self._queue_of(model)
            depth = queue.policy.max_depth
            if depth is not None and len(queue.pending) >= depth:
                if self._full_counter is not None:
                    self._full_counter.labels(queue=model).inc()
                self._stamp_depth_locked(model, queue)
                raise QueueFullError(
                    f"queue for model {model!r} is at its bounded depth ({depth}); "
                    f"retry later or route elsewhere"
                )
            queue.pending.append(request)
            if self._submitted_counter is not None:
                self._submitted_counter.labels(queue=model).inc()
            self._stamp_depth_locked(model, queue)
            self._cond.notify()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def _due_model_locked(self, now: float) -> Optional[str]:
        for offset in range(len(self._rotation)):
            name = self._rotation[offset]
            queue = self._queues[name]
            if not queue.pending:
                continue
            policy = queue.policy
            if len(queue.pending) >= policy.max_batch_size:
                self._rotation.append(self._rotation.pop(offset))
                return name
            if now - queue.pending[0].enqueued_at >= policy.max_queue_delay_s:
                self._rotation.append(self._rotation.pop(offset))
                return name
        return None

    def _pop_batch_locked(self, model: str) -> List[InferenceRequest]:
        queue = self._queues[model]
        size = min(len(queue.pending), queue.policy.max_batch_size)
        batch = [queue.pending.popleft() for _ in range(size)]
        if self._dispatched_counter is not None:
            self._dispatched_counter.labels(queue=model).inc()
        # Dequeue-commit: the requests have left the pending deque under
        # the lock, so the published depth drops exactly here -- not when
        # the batch later finishes dispatch.
        self._stamp_depth_locked(model, queue)
        return batch

    def pop_due(self) -> Optional[Tuple[str, List[InferenceRequest]]]:
        """Non-blocking: the next due ``(model, batch)``, or ``None``."""
        with self._cond:
            model = self._due_model_locked(self.clock())
            if model is None:
                return None
            return model, self._pop_batch_locked(model)

    def pop_any(self, model: Optional[str] = None) -> Optional[Tuple[str, List[InferenceRequest]]]:
        """Non-blocking: pop pending requests regardless of the delay policy.

        Used by ``drain`` flows to flush partial tail batches.
        """
        with self._cond:
            candidates = [model] if model is not None else list(self._rotation)
            for name in candidates:
                if self._queue_of(name).pending:
                    return name, self._pop_batch_locked(name)
            return None

    def get_batch(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[str, List[InferenceRequest]]]:
        """Blocking consumer call: wait until a batch is due (or ``stop``).

        Returns ``None`` when the scheduler is stopped and every queue has
        fully drained, or when ``timeout`` elapses with nothing due.  While
        stopping, remaining requests are handed out as (possibly partial)
        batches so no admitted request is dropped.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = self.clock()
                model = self._due_model_locked(now)
                if model is not None:
                    return model, self._pop_batch_locked(model)
                if self._stopped:
                    for name in list(self._rotation):
                        if self._queues[name].pending:
                            return name, self._pop_batch_locked(name)
                    return None
                # Wake early enough to honour the tightest max-delay among
                # non-empty queues (or wait for a submission/stop).
                wait = self._next_deadline_locked(now)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)

    def _next_deadline_locked(self, now: float) -> Optional[float]:
        soonest: Optional[float] = None
        for queue in self._queues.values():
            if not queue.pending:
                continue
            due_in = queue.policy.max_queue_delay_s - (now - queue.pending[0].enqueued_at)
            if due_in != float("inf"):
                soonest = due_in if soonest is None else min(soonest, due_in)
        if soonest is None:
            return None
        return max(soonest, 0.0)

    def stop(self) -> None:
        """Stop blocking consumers once the queues drain."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    @property
    def stopped(self) -> bool:
        """Whether ``stop`` was called (consumers are draining)."""
        with self._cond:
            return self._stopped
