"""Process sharding: consistent-hash routing, export arenas, slab transport.

This module holds everything the process serving backend shares between the
parent and its spawned shard workers:

* :class:`ShardRouter` -- a deterministic consistent-hash ring assigning
  ``(model, bits)`` variant keys to shards.  Hashing is sha256-based (not
  Python's salted ``hash``) so the parent and every spawned worker agree on
  the assignment without coordination, and adding a shard only moves the
  keys that land on the new shard's ring points.
* the **export arena** -- all weight/code tensors of the served exports
  packed into one :class:`multiprocessing.shared_memory.SharedMemory`
  segment, described by a picklable :class:`ArenaManifest`.  Workers map
  the segment and reconstruct :class:`~repro.quant.deploy.QuantizedModelExport`
  objects whose arrays are zero-copy *views* into the mapping, so model
  weights cross the process boundary once per generation instead of being
  pickled per batch.
* :class:`SlabRing` -- a ring of fixed-size slabs inside a per-shard
  shared-memory segment used as the batch transport.  Each slab is a
  64-byte header (int64 sequence/batch metadata, seqlock-style: the writer
  bumps the sequence to odd before touching the payload and to even after)
  followed by an aligned payload holding the request batch on the way in
  and the logits on the way out.  Ownership handoff itself rides on the
  control pipe; the seqlock guards against torn reads if a reader ever
  races a writer.
* :func:`shard_worker_main` -- the spawned worker process entry point: it
  attaches the arenas, compiles its shard's plans exactly once through a
  private :class:`~repro.runtime.cache.PlanCache` (seeded from the shared
  on-disk :class:`~repro.runtime.tuning.TuningCache` when tuning is
  configured), and serves batches from its slab ring until told to stop.

Nothing here imports the service layer; :mod:`repro.serve.workers` builds
the parent half (:class:`~repro.serve.workers.ProcessWorkerPool`) on top.
"""

from __future__ import annotations

import hashlib
import os
import secrets
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.quant.affine import AffineQParams
from repro.quant.deploy import QuantizedModelExport
from repro.quant.qtensor import QuantizedTensor

__all__ = [
    "ArenaManifest",
    "ArenaTensorSpec",
    "ExportManifest",
    "ShardRouter",
    "SlabRing",
    "ShardWorkerConfig",
    "attach_segment",
    "attach_exports",
    "pack_exports",
    "shard_worker_main",
    "variant_key",
]

#: Byte alignment of every tensor inside an arena and of slab payloads.
ARENA_ALIGNMENT = 64

#: Bytes reserved for a slab's header (a 64-byte cache line holding eight
#: int64 slots; only the first four are used today).
SLAB_HEADER_BYTES = 64

#: Header slot indices (int64 offsets into the slab header).
_H_SEQ = 0        # seqlock sequence: odd while a write is in progress
_H_BATCH_ID = 1   # batch id of the payload currently in the slab
_H_COUNT = 2      # requests in the batch
_H_NBYTES = 3     # payload bytes written


def variant_key(model: str, bits: int) -> str:
    """The canonical queue / arena key of one served variant."""
    return f"{model}@{bits}"


def _align(nbytes: int, alignment: int = ARENA_ALIGNMENT) -> int:
    return (nbytes + alignment - 1) // alignment * alignment


# --------------------------------------------------------------------------- #
# Consistent-hash shard routing
# --------------------------------------------------------------------------- #
class ShardRouter:
    """Deterministic consistent-hash assignment of variant keys to shards.

    Each shard owns ``replicas`` points on a sha256 ring; a key is served
    by the shard owning the first point clockwise of the key's hash.  The
    construction is stable across processes and interpreter restarts
    (sha256, not the per-process salted ``hash``), so the parent and every
    spawned worker compute identical assignments, and resizing the pool
    moves only the keys whose ring interval changed.
    """

    def __init__(self, shards: int, *, replicas: int = 64) -> None:
        """Args:
            shards: Shard count (worker processes), at least 1.
            replicas: Virtual ring points per shard; more points smooth
                the key distribution at the cost of a larger ring.
        """
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((self._point(f"shard:{shard}:replica:{replica}"), shard))
        points.sort()
        self._ring = points

    @staticmethod
    def _point(text: str) -> int:
        return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def shard_for(self, model: str, bits: int) -> int:
        """The shard serving one ``(model, bits)`` variant."""
        return self.shard_for_key(variant_key(model, bits))

    def shard_for_key(self, key: str) -> int:
        """The shard serving one pre-formatted variant key."""
        target = self._point(f"key:{key}")
        ring = self._ring
        lo, hi = 0, len(ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if ring[mid][0] < target:
                lo = mid + 1
            else:
                hi = mid
        return ring[lo % len(ring)][1]

    def assignment(self, keys) -> Dict[int, List[str]]:
        """Group ``keys`` by owning shard (every shard present, even empty)."""
        grouped: Dict[int, List[str]] = {shard: [] for shard in range(self.shards)}
        for key in keys:
            grouped[self.shard_for_key(key)].append(key)
        return grouped


# --------------------------------------------------------------------------- #
# Export arenas
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ArenaTensorSpec:
    """Placement of one export tensor inside an arena segment."""

    name: str
    #: ``"codes"`` (quantised integer codes), ``"float"`` (fp parameters)
    #: or ``"buffer"`` (non-trainable buffers).
    section: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str
    #: Affine parameters, meaningful only for ``section == "codes"``.
    scale: float = 0.0
    zero_point: int = 0
    bits: int = 0


@dataclass(frozen=True)
class ExportManifest:
    """One export's tensors inside an arena, plus its content hash."""

    key: str
    content_hash: str
    tensors: Tuple[ArenaTensorSpec, ...]


@dataclass(frozen=True)
class ArenaManifest:
    """Everything needed to reconstruct exports from one arena segment.

    Plain picklable data: the parent packs the arena, sends the manifest
    over the control pipe, and each worker attaches the named segment and
    rebuilds zero-copy :class:`~repro.quant.deploy.QuantizedModelExport`
    views from the specs.
    """

    shm_name: str
    generation: int
    nbytes: int
    exports: Tuple[ExportManifest, ...] = field(default_factory=tuple)

    def keys(self) -> List[str]:
        return [export.key for export in self.exports]


def _tensor_sections(export: QuantizedModelExport):
    """Yield ``(section, name, array, qparams)`` in deterministic order."""
    for name in sorted(export.quantized):
        tensor = export.quantized[name]
        yield "codes", name, np.ascontiguousarray(tensor.codes), tensor.qparams
    for name in sorted(export.float_parameters):
        yield "float", name, np.ascontiguousarray(export.float_parameters[name]), None
    for name in sorted(export.buffers):
        yield "buffer", name, np.ascontiguousarray(export.buffers[name]), None


def pack_exports(
    exports: Mapping[str, QuantizedModelExport],
    *,
    generation: int = 0,
) -> Tuple[shared_memory.SharedMemory, ArenaManifest]:
    """Pack exports into one fresh shared-memory arena.

    Returns the owning segment (the caller is responsible for ``close`` +
    ``unlink`` once every worker has remapped away from it) and the
    picklable manifest describing the layout.  An empty mapping is legal
    (a deployment serving only fp32 variants has no codes to share) and
    produces a minimal segment with an empty manifest.
    """
    layout: List[Tuple[str, str, str, np.ndarray, Optional[AffineQParams], int]] = []
    cursor = 0
    for key in sorted(exports):
        for section, name, array, qparams in _tensor_sections(exports[key]):
            layout.append((key, section, name, array, qparams, cursor))
            cursor += _align(array.nbytes)
    total = max(cursor, ARENA_ALIGNMENT)
    segment = shared_memory.SharedMemory(
        create=True, size=total, name=f"repro-arena-{os.getpid()}-{secrets.token_hex(4)}"
    )
    specs_by_key: Dict[str, List[ArenaTensorSpec]] = {key: [] for key in exports}
    for key, section, name, array, qparams, offset in layout:
        destination = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        destination[...] = array
        specs_by_key[key].append(
            ArenaTensorSpec(
                name=name,
                section=section,
                offset=offset,
                shape=tuple(array.shape),
                dtype=array.dtype.str,
                scale=float(qparams.scale) if qparams is not None else 0.0,
                zero_point=int(qparams.zero_point) if qparams is not None else 0,
                bits=int(qparams.bits) if qparams is not None else 0,
            )
        )
    manifest = ArenaManifest(
        shm_name=segment.name,
        generation=generation,
        nbytes=total,
        exports=tuple(
            ExportManifest(
                key=key,
                content_hash=exports[key].content_hash(),
                tensors=tuple(specs_by_key[key]),
            )
            for key in sorted(exports)
        ),
    )
    return segment, manifest


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its unlink lifecycle.

    CPython's POSIX :class:`~multiprocessing.shared_memory.SharedMemory`
    registers *every* attach with the resource tracker, so a worker merely
    mapping the parent's arena would get the segment unlinked (plus a leak
    warning) when the worker exits.  Worse, spawned children share the
    parent's tracker daemon, so un-registering *after* the attach would
    remove the creator's own entry (the tracker's cache is one set per
    name) and make the eventual ``unlink()`` trip a tracker error.  The
    creating process is the sole owner here; attachers suppress the
    registration itself for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - no other rtypes here
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def attach_exports(
    manifest: ArenaManifest, segment: shared_memory.SharedMemory
) -> Dict[str, QuantizedModelExport]:
    """Reconstruct zero-copy export views from an attached arena segment.

    The arrays of the returned exports are read-only views into the
    segment's mapping -- nothing is copied, and the compiler only ever
    reads them (dequantisation copies into the plan's own baked buffers).
    Each export's content hash is seeded from the manifest so plan-cache
    keys match the parent's without re-hashing megabytes of weights.
    """
    exports: Dict[str, QuantizedModelExport] = {}
    for export_manifest in manifest.exports:
        export = QuantizedModelExport()
        for spec in export_manifest.tensors:
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset
            )
            view.flags.writeable = False
            if spec.section == "codes":
                export.quantized[spec.name] = QuantizedTensor(
                    codes=view,
                    qparams=AffineQParams(
                        scale=spec.scale, zero_point=spec.zero_point, bits=spec.bits
                    ),
                )
            elif spec.section == "float":
                export.float_parameters[spec.name] = view
            else:
                export.buffers[spec.name] = view
        export._content_hash = export_manifest.content_hash
        exports[export_manifest.key] = export
    return exports


# --------------------------------------------------------------------------- #
# Slab-ring batch transport
# --------------------------------------------------------------------------- #
class SlabRing:
    """Fixed-size slabs over one shared-memory segment (batch transport).

    Each slab is ``SLAB_HEADER_BYTES`` of int64 header followed by an
    aligned payload area.  The header carries a seqlock-style sequence
    (odd while a writer is inside the payload, even and advanced when the
    write committed) plus the batch id / request count / payload size of
    the current contents.  Slot *ownership* is transferred over the
    control pipe (parent writes, sends ``batch``; worker overwrites the
    payload with the logits, sends ``done``), so the seqlock is a torn-read
    guard and a debugging aid rather than the primary synchronisation.
    """

    def __init__(self, buf, slots: int, slab_bytes: int) -> None:
        if slots < 1:
            raise ValueError(f"slots must be at least 1, got {slots}")
        if slab_bytes <= SLAB_HEADER_BYTES:
            raise ValueError(
                f"slab_bytes must exceed the {SLAB_HEADER_BYTES}-byte header, got {slab_bytes}"
            )
        self._buf = buf
        self.slots = slots
        self.slab_bytes = slab_bytes
        self.payload_bytes = slab_bytes - SLAB_HEADER_BYTES

    @staticmethod
    def required_bytes(slots: int, payload_bytes: int) -> Tuple[int, int]:
        """``(segment_bytes, slab_bytes)`` for ``slots`` slabs of payload."""
        slab = SLAB_HEADER_BYTES + _align(payload_bytes)
        return slots * slab, slab

    def _header(self, slot: int) -> np.ndarray:
        return np.ndarray((8,), dtype=np.int64, buffer=self._buf, offset=slot * self.slab_bytes)

    def payload(self, slot: int, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A zero-copy ndarray view over one slab's payload area."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes > self.payload_bytes:
            raise ValueError(
                f"payload of {nbytes} bytes exceeds the slab's "
                f"{self.payload_bytes}-byte payload area"
            )
        return np.ndarray(
            shape,
            dtype=dtype,
            buffer=self._buf,
            offset=slot * self.slab_bytes + SLAB_HEADER_BYTES,
        )

    def write(self, slot: int, array: np.ndarray, batch_id: int, count: int) -> None:
        """Copy ``array`` into a slab under the seqlock protocol."""
        header = self._header(slot)
        header[_H_SEQ] += 1  # odd: write in progress
        try:
            view = self.payload(slot, array.shape, array.dtype)
            np.copyto(view, array)
            header[_H_BATCH_ID] = batch_id
            header[_H_COUNT] = count
            header[_H_NBYTES] = array.nbytes
        finally:
            header[_H_SEQ] += 1  # even: committed

    def read(
        self, slot: int, shape: Tuple[int, ...], dtype=np.float64, *, spins: int = 1_000_000
    ) -> Tuple[np.ndarray, int, int]:
        """A stable copy of one slab's payload: ``(array, batch_id, count)``.

        Retries while the seqlock shows a write in progress or the
        sequence moved during the copy; raises ``RuntimeError`` if the
        slab never stabilises (which means the handoff protocol itself is
        broken -- ownership should have been transferred before reading).
        """
        header = self._header(slot)
        for _ in range(spins):
            before = int(header[_H_SEQ])
            if before % 2:
                time.sleep(0)
                continue
            array = np.array(self.payload(slot, shape, dtype), copy=True)
            batch_id = int(header[_H_BATCH_ID])
            count = int(header[_H_COUNT])
            if int(header[_H_SEQ]) == before:
                return array, batch_id, count
        raise RuntimeError(f"slab {slot} never stabilised; seqlock protocol violated")


# --------------------------------------------------------------------------- #
# The spawned shard worker
# --------------------------------------------------------------------------- #
@dataclass
class ShardWorkerConfig:
    """Everything one spawned shard worker needs, in picklable form.

    ``models`` carries the module objects themselves (pickled once at
    spawn); the heavyweight export tensors arrive through ``manifest``
    instead, as offsets into the named arena segment.  ``tuning`` is the
    picklable ``(path, budget_s, repeats, warmup)`` spec of the parent's
    :class:`~repro.runtime.tuning.TuningConfig` -- the config object
    itself holds a lock and an open cache, so workers rebuild it from the
    shared on-disk path and inherit the persisted winners.
    """

    shard: int
    #: Name of this shard's slab-ring transport segment, plus its geometry.
    slab_shm_name: str
    slab_slots: int
    slab_bytes: int
    #: Initial export arena (all quantised variants of every model).
    manifest: ArenaManifest
    #: Model name -> architecture module (pickled at spawn).
    models: Dict[str, object]
    #: Model name -> per-sample input shape.
    input_shapes: Dict[str, Tuple[int, ...]]
    #: Variant keys this shard serves, each ``(model, bits)``.
    keys: Dict[str, Tuple[str, int]]
    #: Largest batch any queue can dispatch (sizes execution contexts).
    max_batch_size: int
    #: ``(cache_path, budget_s, repeats, warmup)`` or ``None``.
    tuning: Optional[Tuple[str, float, int, int]] = None
    #: ``(enabled, artifact_cache_dir)`` of the parent's native codegen
    #: backend, or ``None`` (worker keeps its own environment-driven
    #: default).  The directory is the parent's *resolved* cache dir, so a
    #: spawned worker loads the same compiled ``.so`` artifacts instead of
    #: rebuilding them.
    codegen: Optional[Tuple[bool, str]] = None
    #: Eagerly compile every assigned plan before reporting ready.
    warm: bool = True


def _rebuild_tuning(spec: Optional[Tuple[str, float, int, int]]):
    if spec is None:
        return None
    from repro.runtime.tuning import TuningCache, TuningConfig

    path, budget_s, repeats, warmup = spec
    return TuningConfig(
        cache=TuningCache(path), budget_s=budget_s, repeats=repeats, warmup=warmup
    )


def _apply_codegen(spec: Optional[Tuple[str, str]]) -> None:
    """Mirror the parent's codegen enablement into this worker process.

    ``spawn`` workers inherit the environment but not any explicit
    :func:`repro.runtime.codegen.configure` call made in the parent, so
    the picklable spec re-applies it.  ``None`` leaves the worker on its
    own environment-driven default."""
    if spec is None:
        return
    from repro.runtime import codegen

    enabled, cache_dir_path = spec
    codegen.configure(enable=enabled, cache_dir_path=cache_dir_path)


class _ShardState:
    """Mutable worker-process state: arenas, exports, plans, contexts."""

    def __init__(self, config: ShardWorkerConfig) -> None:
        from repro.obs.registry import MetricRegistry
        from repro.runtime.cache import PlanCache

        self.config = config
        self.registry = MetricRegistry()
        _apply_codegen(config.codegen)
        self.tuning = _rebuild_tuning(config.tuning)
        self.plan_cache = PlanCache(metrics=self.registry)
        self.batches = self.registry.counter(
            "shard_batches_total", "Batches executed by this shard worker.",
            labels=("model",),
        )
        self.requests = self.registry.counter(
            "shard_requests_total", "Requests executed by this shard worker.",
            labels=("model",),
        )
        self.kernel_seconds = self.registry.counter(
            "shard_kernel_seconds_total",
            "Wall-clock seconds this shard spent inside plan execution.",
            labels=("model",),
        )
        self.remaps = self.registry.counter(
            "shard_arena_remaps_total",
            "Arena generations this shard remapped onto (hot swaps).",
        )
        #: segment name -> (SharedMemory, set of keys mapped from it)
        self.segments: Dict[str, Tuple[shared_memory.SharedMemory, set]] = {}
        self.exports: Dict[str, QuantizedModelExport] = {}
        self.plans: Dict[str, object] = {}
        self.contexts: Dict[str, object] = {}
        self.map_arena(config.manifest)

    def map_arena(self, manifest: ArenaManifest) -> List[str]:
        """Attach one arena segment and (re)bind its exports; returns the
        keys whose mapping changed (their plans / contexts are dropped)."""
        segment = attach_segment(manifest.shm_name)
        mapped = attach_exports(manifest, segment)
        remapped = [key for key in mapped if key in self.config.keys]
        self.segments[manifest.shm_name] = (segment, set(remapped))
        for key in remapped:
            self.exports[key] = mapped[key]
            self.plans.pop(key, None)
            self.contexts.pop(key, None)
            for name, (_, keys) in list(self.segments.items()):
                if name != manifest.shm_name:
                    keys.discard(key)
        self._release_unreferenced()
        return remapped

    def _release_unreferenced(self) -> None:
        for name, (segment, keys) in list(self.segments.items()):
            if not keys:
                del self.segments[name]
                segment.close()

    def close(self) -> None:
        # Drop every arena view before closing the mappings: a shared
        # memory segment cannot unmap while ndarray views still export
        # its buffer.
        self.exports.clear()
        self.plans.clear()
        self.contexts.clear()
        for segment, _ in self.segments.values():
            segment.close()
        self.segments.clear()

    def plan_for(self, key: str):
        """The compiled plan + context of one variant (compiled on first use)."""
        from repro.runtime.plan import compile_plan
        from repro.serve.repository import FLOAT_BITS

        plan = self.plans.get(key)
        if plan is not None:
            return plan, self.contexts[key]
        model_name, bits = self.config.keys[key]
        module = self.config.models[model_name]
        input_shape = tuple(self.config.input_shapes[model_name])
        if bits == FLOAT_BITS:
            plan = compile_plan(module, input_shape, tuning=self.tuning)
        else:
            plan = self.plan_cache.get_or_compile(
                module, self.exports[key], input_shape, tuning=self.tuning
            )
        self.plans[key] = plan
        self.contexts[key] = plan.create_context(batch_size=self.config.max_batch_size)
        return plan, self.contexts[key]

    def warm(self) -> None:
        for key in self.config.keys:
            self.plan_for(key)


def shard_worker_main(config: ShardWorkerConfig, commands, events) -> None:
    """Entry point of one spawned shard worker process.

    Protocol (over the two pipe connections):

    * parent -> worker: ``("batch", slot, key, count, batch_id)``,
      ``("swap", manifest)``, ``("stats",)``, ``("stop",)``.
    * worker -> parent: ``("ready", shard)`` once plans are warm (or
      ``("fatal", message)`` if setup failed), then
      ``("done", slot, batch_id, key, count, out_shape, kernel_seconds)``
      or ``("error", slot, batch_id, message)`` per batch,
      ``("swapped", segment_name, generation, keys)`` per remap,
      ``("stats", dump)`` on demand and ``("stopped", dump)`` at exit.
    """
    state: Optional[_ShardState] = None
    slab_segment: Optional[shared_memory.SharedMemory] = None
    try:
        try:
            state = _ShardState(config)
            slab_segment = attach_segment(config.slab_shm_name)
            ring = SlabRing(slab_segment.buf, config.slab_slots, config.slab_bytes)
            if config.warm:
                state.warm()
        except BaseException as error:  # noqa: BLE001 - surface setup failures
            try:
                events.send(("fatal", repr(error)))
            except OSError:  # pragma: no cover - parent already gone
                pass
            return
        events.send(("ready", config.shard))
        while True:
            message = commands.recv()
            kind = message[0]
            if kind == "batch":
                _, slot, key, count, batch_id = message
                try:
                    events.send(_run_batch(state, ring, slot, key, count, batch_id))
                except BaseException as error:  # noqa: BLE001 - keep serving
                    events.send(("error", slot, batch_id, repr(error)))
            elif kind == "swap":
                manifest = message[1]
                remapped = state.map_arena(manifest)
                state.remaps.inc()
                events.send(("swapped", manifest.shm_name, manifest.generation, remapped))
            elif kind == "stats":
                events.send(("stats", state.registry.as_dict()))
            elif kind == "stop":
                events.send(("stopped", state.registry.as_dict()))
                return
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        if state is not None:
            state.close()
        if slab_segment is not None:
            slab_segment.close()
        try:
            commands.close()
            events.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def _run_batch(
    state: _ShardState, ring: SlabRing, slot: int, key: str, count: int, batch_id: int
):
    """Execute one slab batch in the worker; returns the ``done`` message."""
    if key not in state.config.keys:
        raise KeyError(
            f"variant {key!r} was not assigned to shard {state.config.shard} at "
            f"start; the process backend serves the variants registered when "
            f"the service started"
        )
    model_name, _ = state.config.keys[key]
    shape = (count,) + tuple(state.config.input_shapes[model_name])
    batch = ring.payload(slot, shape)
    plan, ctx = state.plan_for(key)
    started = time.perf_counter()
    # The plan writes the result into its own arena first; the final
    # copy into `out` happens after the input view was last read, so the
    # logits may safely overwrite the input payload in place.
    logits = plan.run(np.asarray(batch), ctx=ctx)
    kernel_seconds = time.perf_counter() - started
    ring.write(slot, np.ascontiguousarray(logits, dtype=np.float64), batch_id, count)
    state.batches.labels(model=model_name).inc()
    state.requests.labels(model=model_name).inc(count)
    state.kernel_seconds.labels(model=model_name).inc(kernel_seconds)
    return ("done", slot, batch_id, key, count, tuple(logits.shape), kernel_seconds)
