"""Thread pool executing scheduler batches through shared plans.

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionContext`
per plan it has executed (its private buffer arena), so any number of
workers execute the *same* immutable plan concurrently without sharing any
mutable state.  The numpy kernels behind the hot steps (BLAS matmul, ufunc
loops) release the GIL, so worker threads overlap on real cores even in
CPython.

The pool is deliberately dumb: it pulls ``(queue_key, batch)`` pairs from a
:class:`~repro.serve.scheduler.Scheduler`, asks its :class:`BatchExecutor`
to resolve the key to a plan, executes, and fulfils each request's future.
Policy (routing, admission, accounting models) lives in the layers above.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import (
    DEFAULT_BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricRegistry,
)
from repro.obs.slo import SLOMonitor
from repro.obs.trace import TraceLog
from repro.runtime.plan import ExecutionContext, ExecutionPlan
from repro.serve.scheduler import Scheduler
from repro.serve.shards import (
    ARENA_ALIGNMENT,
    ShardRouter,
    ShardWorkerConfig,
    SlabRing,
    pack_exports,
    shard_worker_main,
    variant_key,
)
from repro.serve.types import (
    BatchAccountant,
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    ServeStats,
)


class BatchExecutor:
    """Resolves a scheduler queue key to everything a worker needs.

    One executor per serving stack; shared by all workers.  ``resolve`` must
    be thread-safe and return the (immutable) plan, the per-layer forward
    bitwidths for the cost models, the accountant to annotate records with
    (or ``None`` to skip modelled accounting), and the ``(model, bits)``
    labels for the result objects.
    """

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        """Resolve one queue key to ``(plan, forward_bits, accountant, model, bits)``."""
        raise NotImplementedError


class WorkerPool:
    """N threads draining a scheduler through per-worker execution contexts."""

    def __init__(
        self,
        scheduler: Scheduler,
        executor: BatchExecutor,
        *,
        workers: int = 1,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricRegistry] = None,
        trace_log: Optional[TraceLog] = None,
        slo_monitor: Optional[SLOMonitor] = None,
    ) -> None:
        """Args:
            scheduler, executor, workers, stats, clock: As before.
            metrics: Registry for the per-phase span histograms
                (queue-wait / batch-assembly / kernel / post) and the
                batch-size histogram; ``None`` skips them.
            trace_log: Ring the completed per-request traces land in.
            slo_monitor: Checks each served request's latency / energy
                against the budgets of the SLO it was routed under.
        """
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.scheduler = scheduler
        self.executor = executor
        self.workers = workers
        self.clock = clock
        self.stats = stats if stats is not None else ServeStats()
        self.batch_records: List[BatchRecord] = []
        self.trace_log = trace_log
        self.slo_monitor = slo_monitor
        self._stats_lock = threading.Lock()
        self._batch_counter = 0
        self._threads: List[threading.Thread] = []
        self._started = False
        if metrics is not None:
            self._queue_wait_hist = metrics.histogram(
                "serve_queue_wait_seconds",
                "Per-request wait between submit and batch dispatch.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._assembly_hist = metrics.histogram(
                "serve_batch_assembly_seconds",
                "Per-batch plan resolution + input stacking time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._kernel_hist = metrics.histogram(
                "serve_kernel_seconds",
                "Per-batch plan execution (kernel) time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._post_hist = metrics.histogram(
                "serve_post_seconds",
                "Per-batch post-processing (argmax, accounting) time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._batch_size_hist = metrics.histogram(
                "serve_batch_size",
                "Requests per dispatched batch.",
                labels=("model",),
                buckets=DEFAULT_BATCH_SIZE_BUCKETS,
            )
        else:
            self._queue_wait_hist = self._assembly_hist = None
            self._kernel_hist = self._post_hist = self._batch_size_hist = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker threads (once; also via ``with``).

        Raises:
            RuntimeError: the pool was already started.
        """
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the scheduler and join the workers (they drain first)."""
        self.scheduler.stop()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The worker loop
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        # Per-worker buffer arenas, one per distinct plan this thread runs.
        contexts: Dict[int, ExecutionContext] = {}
        while True:
            item = self.scheduler.get_batch()
            if item is None:
                return
            queue_key, requests = item
            try:
                self._execute(queue_key, requests, contexts)
            except BaseException as error:  # noqa: BLE001 - fulfil futures, keep serving
                for request in requests:
                    if request.future is not None and not request.future.done():
                        request.future.set_exception(error)

    def _context_for(
        self,
        plan: ExecutionPlan,
        contexts: Dict[int, ExecutionContext],
        queue_key: str,
    ):
        ctx = contexts.get(id(plan))
        if ctx is None:
            # Size the worker's arena from the plan's memory planner at the
            # queue's maximum batch, so the whole buffer block is committed
            # once up front instead of growing scratch lazily per step.
            try:
                batch_hint = self.scheduler.policy(queue_key).max_batch_size
            except KeyError:  # pragma: no cover - executor resolved an unknown key
                batch_hint = None
            ctx = plan.create_context(batch_size=batch_hint)
            contexts[id(plan)] = ctx
        return ctx

    def _execute(
        self,
        queue_key: str,
        requests: List[InferenceRequest],
        contexts: Dict[int, ExecutionContext],
    ) -> None:
        # One clock reading per phase transition, shared by every request
        # in the batch: queue-wait ends here, batch assembly (plan
        # resolution + input stacking) ends at `started`, the kernel at
        # `ended`, post-processing at `post_stamp`.  Traces mark at these
        # shared stamps, so their spans tile each request's lifetime
        # exactly whatever clock is injected.
        dispatched = self.clock()
        plan, forward_bits, accountant, model, bits = self.executor.resolve(queue_key)
        batch = np.stack([request.x for request in requests])
        started = self.clock()
        logits = plan.run(batch, ctx=self._context_for(plan, contexts, queue_key))
        ended = self.clock()
        compute_seconds = ended - started
        predictions = np.argmax(logits, axis=-1)

        with self._stats_lock:
            batch_id = self._batch_counter
            self._batch_counter += 1
        record = BatchRecord(
            batch_id=batch_id,
            size=len(requests),
            compute_seconds=compute_seconds,
            model=model,
            bits=bits,
        )
        if accountant is not None:
            accountant.annotate(record, forward_bits)
        post_stamp = self.clock()

        if self._kernel_hist is not None:
            self._assembly_hist.labels(model=model).observe(started - dispatched)
            self._kernel_hist.labels(model=model).observe(compute_seconds)
            self._post_hist.labels(model=model).observe(post_stamp - ended)
            self._batch_size_hist.labels(model=model).observe(len(requests))
        energy_uj = (
            record.energy_pj / record.size * 1e-6 if record.energy_pj is not None else None
        )

        latencies: List[float] = []
        for index, request in enumerate(requests):
            queue_seconds = started - request.enqueued_at
            latency = queue_seconds + compute_seconds
            latencies.append(latency)
            if self._queue_wait_hist is not None:
                self._queue_wait_hist.labels(model=model).observe(
                    dispatched - request.enqueued_at
                )
            trace = request.trace
            if trace is not None:
                trace.mark("queue_wait", at=dispatched)
                trace.mark("batch_assembly", at=started)
                trace.mark("kernel", at=ended)
                trace.mark("post", at=post_stamp)
                if self.trace_log is not None:
                    self.trace_log.append(trace)
            if self.slo_monitor is not None and request.slo is not None:
                # Latency is checked as observed (queueing + kernel);
                # energy as the modelled per-request share of the batch.
                self.slo_monitor.observe_request(
                    model, request.slo, latency_s=latency, energy_uj=energy_uj
                )
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[index],
                prediction=int(predictions[index]),
                batch_id=batch_id,
                batch_size=len(requests),
                queue_seconds=queue_seconds,
                compute_seconds=compute_seconds,
                model=model,
                bits=bits,
                trace=trace,
            )
            if request.future is not None:
                request.future.set_result(result)
        self.stats.record_batch(record, latencies)
        with self._stats_lock:
            self.batch_records.append(record)


# --------------------------------------------------------------------------- #
# Process-sharded worker pool
# --------------------------------------------------------------------------- #
@dataclass
class _InflightBatch:
    """Parent-side bookkeeping of one batch living in a worker's slab."""

    requests: List[InferenceRequest]
    key: str
    model: str
    bits: Optional[int]
    forward_bits: Dict[str, int]
    accountant: Optional[BatchAccountant]
    dispatched: float
    written: float
    batch_id: int


class _Shard:
    """Parent-side handle of one spawned shard worker."""

    def __init__(self, index: int, slots: int) -> None:
        self.index = index
        self.process = None
        self.commands = None
        self.events = None
        self.ring: Optional[SlabRing] = None
        self.slab_segment = None
        self.send_lock = threading.Lock()
        self.slot_cond = threading.Condition()
        self.free_slots = deque(range(slots))
        self.inflight: Dict[int, _InflightBatch] = {}
        self.dispatcher: Optional[threading.Thread] = None
        self.completer: Optional[threading.Thread] = None
        self.failed: Optional[BaseException] = None
        self.stats_event = threading.Event()
        self.stats_dump: Optional[dict] = None
        self.final_dump: Optional[dict] = None
        self.keys: List[str] = []


class ProcessWorkerPool:
    """Spawned worker processes draining per-shard schedulers over shared
    memory.

    The process counterpart of :class:`WorkerPool`: a consistent-hash
    :class:`~repro.serve.shards.ShardRouter` pins every ``(model, bits)``
    variant to one shard, each shard owns a scheduler (so submitters only
    contend with their own shard's consumers) and one spawned worker
    process.  Weight/code tensors cross the process boundary exactly once
    per arena generation (see :func:`~repro.serve.shards.pack_exports`);
    batches travel through a :class:`~repro.serve.shards.SlabRing` of
    preallocated shared-memory slabs with a small control pipe carrying
    the ``batch`` / ``done`` handoff.  Workers compile their shard's plans
    through a private :class:`~repro.runtime.cache.PlanCache`, seeded from
    the shared on-disk tuning cache when the repository tunes.

    Hot swaps keep working: the repository's swap listener packs the new
    export into a fresh arena segment and sends it down the owning shard's
    control pipe.  The pipe is ordered, so batches dispatched before the
    swap execute on the old mapping, the worker remaps, and batches after
    execute on the new plan -- zero requests dropped.

    Accounting, tracing, SLO checks and result fan-out stay in the parent
    (they touch parent-owned objects); each worker keeps its own metric
    registry, collected through :meth:`worker_metrics` and merged with a
    ``shard`` label.
    """

    def __init__(
        self,
        schedulers: List[Scheduler],
        repository,
        router: ShardRouter,
        *,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricRegistry] = None,
        trace_log: Optional[TraceLog] = None,
        slo_monitor: Optional[SLOMonitor] = None,
        accountant_for: Optional[Callable[[str], BatchAccountant]] = None,
        slab_slots: int = 4,
        warm: bool = True,
        start_timeout_s: float = 300.0,
    ) -> None:
        """Args:
            schedulers: One scheduler per shard (the router's shard index
                is the list index).
            repository: The :class:`~repro.serve.repository.ModelRepository`
                whose variants are served.
            router: Assigns variant keys to shards; must have been built
                with ``shards == len(schedulers)``.
            stats, clock, metrics, trace_log, slo_monitor: As in
                :class:`WorkerPool`.
            accountant_for: ``model -> BatchAccountant`` for modelled
                energy/latency accounting (``None`` skips it).
            slab_slots: Transport slabs per shard; bounds the batches a
                shard can have in flight between parent and worker.
            warm: Workers compile every assigned plan before reporting
                ready (start blocks until every shard is warm).
            start_timeout_s: Seconds to wait for every worker to come up.
        """
        if not schedulers:
            raise ValueError("at least one scheduler (shard) is required")
        if router.shards != len(schedulers):
            raise ValueError(
                f"router has {router.shards} shards but {len(schedulers)} "
                f"schedulers were provided"
            )
        if slab_slots < 1:
            raise ValueError(f"slab_slots must be at least 1, got {slab_slots}")
        self.schedulers = schedulers
        self.repository = repository
        self.router = router
        self.clock = clock
        self.stats = stats if stats is not None else ServeStats()
        self.trace_log = trace_log
        self.slo_monitor = slo_monitor
        self.accountant_for = accountant_for
        self.slab_slots = slab_slots
        self.warm = warm
        self.start_timeout_s = start_timeout_s
        self.batch_records: List = []
        self.workers = len(schedulers)
        self._shards: List[_Shard] = []
        self._started = False
        self._stopped = False
        self._stats_lock = threading.Lock()
        self._batch_counter = 0
        self._meta_lock = threading.Lock()
        self._meta: Dict[str, Tuple[int, Tuple]] = {}
        self._segments_lock = threading.Lock()
        #: segment name -> owning SharedMemory (initial arena + live swaps).
        self._segments: Dict[str, object] = {}
        #: variant key -> segment name currently mapping its export.
        self._key_segment: Dict[str, str] = {}
        #: segment name -> keys it still maps (swap segments only).
        self._segment_keys: Dict[str, set] = {}
        self._arena_name: Optional[str] = None
        if metrics is not None:
            self._queue_wait_hist = metrics.histogram(
                "serve_shard_queue_wait_seconds",
                "Per-request wait between submit and shard dispatch.",
                labels=("model", "shard"),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._roundtrip_hist = metrics.histogram(
                "serve_shard_roundtrip_seconds",
                "Per-batch slab write -> logits read round trip.",
                labels=("model", "shard"),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._kernel_hist = metrics.histogram(
                "serve_shard_kernel_seconds",
                "Per-batch plan execution time inside the shard worker.",
                labels=("model", "shard"),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._batch_size_hist = metrics.histogram(
                "serve_shard_batch_size",
                "Requests per batch dispatched to a shard worker.",
                labels=("model", "shard"),
                buckets=DEFAULT_BATCH_SIZE_BUCKETS,
            )
        else:
            self._queue_wait_hist = self._roundtrip_hist = None
            self._kernel_hist = self._batch_size_hist = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Pack the arena, spawn one worker per shard, wait until warm.

        Raises:
            RuntimeError: the pool was already started, a worker failed
                its setup, or the start timeout elapsed.
        """
        if self._started:
            raise RuntimeError("process worker pool already started")
        self._started = True
        from repro.tensor import Tensor, no_grad

        context = multiprocessing.get_context("spawn")
        keys: Dict[str, Tuple[str, int]] = {}
        for model in self.repository.models():
            for bits in self.repository.variants(model):
                keys[variant_key(model, bits)] = (model, bits)
        arena, manifest = self.repository.export_arena(generation=0)
        with self._segments_lock:
            self._segments[arena.name] = arena
            self._arena_name = arena.name
            for key in manifest.keys():
                self._key_segment[key] = arena.name

        modules: Dict[str, object] = {}
        input_shapes: Dict[str, Tuple[int, ...]] = {}
        output_nbytes: Dict[str, int] = {}
        for model in self.repository.models():
            module = self.repository.clone_model(model)
            shape = tuple(self.repository.input_shape(model))
            module.eval()
            with no_grad():
                probe_out = module(Tensor(np.zeros((1,) + shape)))
            modules[model] = module
            input_shapes[model] = shape
            output_nbytes[model] = int(np.prod(probe_out.data.shape[1:])) * 8

        max_batch = 1
        payload_bytes = ARENA_ALIGNMENT
        assignment = self.router.assignment(keys)
        for shard_index, shard_keys in assignment.items():
            for key in shard_keys:
                model, _ = keys[key]
                batch = self.schedulers[shard_index].policy(key).max_batch_size
                max_batch = max(max_batch, batch)
                sample_bytes = int(np.prod(input_shapes[model])) * 8
                payload_bytes = max(
                    payload_bytes,
                    batch * sample_bytes,
                    batch * output_nbytes[model],
                )
        segment_bytes, slab_bytes = SlabRing.required_bytes(self.slab_slots, payload_bytes)

        try:
            for index in range(self.workers):
                shard = _Shard(index, self.slab_slots)
                shard.keys = assignment[index]
                shard.slab_segment = shared_memory.SharedMemory(
                    create=True, size=segment_bytes
                )
                shard.ring = SlabRing(shard.slab_segment.buf, self.slab_slots, slab_bytes)
                cmd_read, cmd_write = context.Pipe(duplex=False)
                evt_read, evt_write = context.Pipe(duplex=False)
                # Commands flow parent -> worker, events worker -> parent.
                shard.commands = cmd_write
                shard.events = evt_read
                config = ShardWorkerConfig(
                    shard=index,
                    slab_shm_name=shard.slab_segment.name,
                    slab_slots=self.slab_slots,
                    slab_bytes=slab_bytes,
                    manifest=manifest,
                    models={
                        model: modules[model]
                        for model in {keys[key][0] for key in shard.keys}
                    },
                    input_shapes={
                        model: input_shapes[model]
                        for model in {keys[key][0] for key in shard.keys}
                    },
                    keys={key: keys[key] for key in shard.keys},
                    max_batch_size=max_batch,
                    tuning=self._tuning_spec(),
                    codegen=self._codegen_spec(),
                    warm=self.warm,
                )
                shard.process = context.Process(
                    target=shard_worker_main,
                    args=(config, cmd_read, evt_write),
                    name=f"serve-shard-{index}",
                    daemon=True,
                )
                shard.process.start()
                cmd_read.close()
                evt_write.close()
                self._shards.append(shard)
            self._await_ready()
        except BaseException:
            self._teardown(force=True)
            raise
        for shard in self._shards:
            shard.dispatcher = threading.Thread(
                target=self._dispatch_loop, args=(shard,),
                name=f"serve-shard-dispatch-{shard.index}", daemon=True,
            )
            shard.completer = threading.Thread(
                target=self._completion_loop, args=(shard,),
                name=f"serve-shard-complete-{shard.index}", daemon=True,
            )
            shard.dispatcher.start()
            shard.completer.start()
        self.repository.add_swap_listener(self._on_swap)

    def _tuning_spec(self) -> Optional[Tuple[str, float, int, int]]:
        """The picklable ``(path, budget, repeats, warmup)`` of the
        repository's tuning config, or ``None`` (heuristic selection).
        An ephemeral cache-less config also maps to ``None``: without a
        shared path there is nothing for a worker to inherit."""
        tuning = getattr(self.repository, "tuning", None)
        if tuning is None:
            return None
        config = tuning.config if hasattr(tuning, "config") else tuning
        cache = getattr(config, "cache", None)
        if cache is None:
            return None
        return (cache.path, config.budget_s, config.repeats, config.warmup)

    def _codegen_spec(self) -> Optional[Tuple[bool, str]]:
        """``(enabled, resolved artifact dir)`` when the native backend is
        on in this parent, else ``None``.  Passing the *resolved* directory
        means a spawned worker resolves the identical artifact cache and
        loads the parent's compiled ``.so`` files without rebuilding."""
        from repro.runtime import codegen

        if not codegen.enabled():
            return None
        return (True, codegen.cache_dir())

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.start_timeout_s
        for shard in self._shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not shard.events.poll(remaining):
                raise RuntimeError(
                    f"shard {shard.index} worker did not come up within "
                    f"{self.start_timeout_s:.0f}s"
                )
            try:
                message = shard.events.recv()
            except (EOFError, OSError):
                code = shard.process.exitcode
                raise RuntimeError(
                    f"shard {shard.index} worker died during startup (exit code {code})"
                )
            if message[0] == "fatal":
                raise RuntimeError(f"shard {shard.index} worker failed to start: {message[1]}")
            if message[0] != "ready":  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected startup message from shard {shard.index}: {message[0]}")

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain the schedulers and in-flight slabs, then stop the workers.

        Every admitted request is served before the workers exit (same
        drain contract as the thread pool); each worker's final metric
        dump is collected for :meth:`worker_metrics`.
        """
        for scheduler in self.schedulers:
            scheduler.stop()
        if not self._started or self._stopped:
            return
        self._stopped = True
        for shard in self._shards:
            if shard.dispatcher is not None:
                shard.dispatcher.join(timeout)
        drain_deadline = time.monotonic() + (timeout if timeout is not None else 60.0)
        for shard in self._shards:
            with shard.slot_cond:
                while (
                    len(shard.free_slots) < self.slab_slots
                    and shard.failed is None
                    and time.monotonic() < drain_deadline
                ):
                    shard.slot_cond.wait(0.05)
        for shard in self._shards:
            if shard.failed is None:
                try:
                    with shard.send_lock:
                        shard.commands.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for shard in self._shards:
            if shard.completer is not None:
                shard.completer.join(timeout if timeout is not None else 30.0)
        self._teardown(force=False)

    def _teardown(self, *, force: bool) -> None:
        for shard in self._shards:
            process = shard.process
            if process is not None:
                process.join(5.0 if force else 30.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(5.0)
            for connection in (shard.commands, shard.events):
                if connection is not None:
                    try:
                        connection.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
            shard.ring = None
            if shard.slab_segment is not None:
                shard.slab_segment.close()
                try:
                    shard.slab_segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                shard.slab_segment = None
        with self._segments_lock:
            for segment in self._segments.values():
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._segments.clear()
            self._key_segment.clear()
            self._segment_keys.clear()

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch (parent -> worker)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self, shard: _Shard) -> None:
        while True:
            item = self.schedulers[shard.index].get_batch()
            if item is None:
                return
            key, requests = item
            try:
                self._dispatch(shard, key, requests)
            except BaseException as error:  # noqa: BLE001 - fail these futures only
                for request in requests:
                    if request.future is not None and not request.future.done():
                        request.future.set_exception(error)

    def _dispatch(self, shard: _Shard, key: str, requests: List[InferenceRequest]) -> None:
        dispatched = self.clock()
        model, bits, forward_bits, accountant = self._resolve(key)
        batch = np.stack([request.x for request in requests])
        with shard.slot_cond:
            while not shard.free_slots:
                if shard.failed is not None:
                    raise shard.failed
                shard.slot_cond.wait(0.1)
            slot = shard.free_slots.popleft()
        with self._stats_lock:
            batch_id = self._batch_counter
            self._batch_counter += 1
        shard.ring.write(slot, batch, batch_id, len(requests))
        written = self.clock()
        with shard.slot_cond:
            shard.inflight[slot] = _InflightBatch(
                requests=requests,
                key=key,
                model=model,
                bits=bits,
                forward_bits=forward_bits,
                accountant=accountant,
                dispatched=dispatched,
                written=written,
                batch_id=batch_id,
            )
        try:
            with shard.send_lock:
                shard.commands.send(("batch", slot, key, len(requests), batch_id))
        except (BrokenPipeError, OSError) as error:
            with shard.slot_cond:
                shard.inflight.pop(slot, None)
                shard.free_slots.append(slot)
                shard.slot_cond.notify()
            raise RuntimeError(f"shard {shard.index} worker is gone") from error

    def _resolve(self, key: str) -> Tuple[str, Optional[int], Dict[str, int], Optional[BatchAccountant]]:
        """Generation-memoised ``key -> (model, bits, forward_bits,
        accountant)``; the worker owns the plan, the parent only needs the
        cost-model inputs (none of which require compilation)."""
        model, _, bits_text = key.rpartition("@")
        generation = self.repository.generation(model)
        with self._meta_lock:
            cached = self._meta.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        bits = int(bits_text)
        forward_bits = self.repository.forward_bits(model, bits)
        accountant = self.accountant_for(model) if self.accountant_for is not None else None
        resolved = (model, bits, forward_bits, accountant)
        with self._meta_lock:
            self._meta[key] = (generation, resolved)
        return resolved

    # ------------------------------------------------------------------ #
    # Completion (worker -> parent)
    # ------------------------------------------------------------------ #
    def _completion_loop(self, shard: _Shard) -> None:
        while True:
            try:
                message = shard.events.recv()
            except (EOFError, OSError):
                if not self._stopped:
                    self._mark_failed(
                        shard,
                        RuntimeError(
                            f"shard {shard.index} worker died unexpectedly "
                            f"(exit code {shard.process.exitcode})"
                        ),
                    )
                return
            kind = message[0]
            if kind == "done":
                self._complete(shard, *message[1:])
            elif kind == "error":
                _, slot, batch_id, text = message
                self._fail_batch(
                    shard, slot,
                    RuntimeError(f"shard {shard.index} batch {batch_id} failed: {text}"),
                )
            elif kind == "swapped":
                self._finish_swap(shard, message[1], message[3])
            elif kind == "stats":
                shard.stats_dump = message[1]
                shard.stats_event.set()
            elif kind == "stopped":
                shard.final_dump = message[1]
                return
            elif kind == "fatal":  # pragma: no cover - post-start fatal
                self._mark_failed(shard, RuntimeError(str(message[1])))
                return

    def _complete(
        self,
        shard: _Shard,
        slot: int,
        batch_id: int,
        key: str,
        count: int,
        out_shape: Tuple[int, ...],
        kernel_seconds: float,
    ) -> None:
        ended = self.clock()
        logits, _, _ = shard.ring.read(slot, tuple(out_shape))
        with shard.slot_cond:
            info = shard.inflight.pop(slot)
            shard.free_slots.append(slot)
            shard.slot_cond.notify()
        requests = info.requests
        predictions = np.argmax(logits, axis=-1)
        record = BatchRecord(
            batch_id=batch_id,
            size=len(requests),
            compute_seconds=kernel_seconds,
            model=info.model,
            bits=info.bits,
        )
        if info.accountant is not None:
            info.accountant.annotate(record, info.forward_bits)
        post_stamp = self.clock()
        if self._kernel_hist is not None:
            labels = dict(model=info.model, shard=str(shard.index))
            self._roundtrip_hist.labels(**labels).observe(ended - info.written)
            self._kernel_hist.labels(**labels).observe(kernel_seconds)
            self._batch_size_hist.labels(**labels).observe(len(requests))
        energy_uj = (
            record.energy_pj / record.size * 1e-6 if record.energy_pj is not None else None
        )
        transport_seconds = ended - info.written
        latencies: List[float] = []
        for index, request in enumerate(requests):
            queue_seconds = info.written - request.enqueued_at
            latency = queue_seconds + transport_seconds
            latencies.append(latency)
            if self._queue_wait_hist is not None:
                self._queue_wait_hist.labels(
                    model=info.model, shard=str(shard.index)
                ).observe(info.dispatched - request.enqueued_at)
            trace = request.trace
            if trace is not None:
                trace.mark("queue_wait", at=info.dispatched)
                trace.mark("batch_assembly", at=info.written)
                trace.mark("kernel", at=ended)
                trace.mark("post", at=post_stamp)
                if self.trace_log is not None:
                    self.trace_log.append(trace)
            if self.slo_monitor is not None and request.slo is not None:
                self.slo_monitor.observe_request(
                    info.model, request.slo, latency_s=latency, energy_uj=energy_uj
                )
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[index],
                prediction=int(predictions[index]),
                batch_id=batch_id,
                batch_size=len(requests),
                queue_seconds=queue_seconds,
                compute_seconds=transport_seconds,
                model=info.model,
                bits=info.bits,
                trace=trace,
            )
            if request.future is not None:
                request.future.set_result(result)
        self.stats.record_batch(record, latencies)
        with self._stats_lock:
            self.batch_records.append(record)

    def _fail_batch(self, shard: _Shard, slot: int, error: BaseException) -> None:
        with shard.slot_cond:
            info = shard.inflight.pop(slot, None)
            shard.free_slots.append(slot)
            shard.slot_cond.notify()
        if info is None:  # pragma: no cover - error for an unknown slot
            return
        for request in info.requests:
            if request.future is not None and not request.future.done():
                request.future.set_exception(error)

    def _mark_failed(self, shard: _Shard, error: BaseException) -> None:
        with shard.slot_cond:
            shard.failed = error
            inflight = list(shard.inflight.values())
            shard.inflight.clear()
            shard.free_slots = deque(range(self.slab_slots))
            shard.slot_cond.notify_all()
        for info in inflight:
            for request in info.requests:
                if request.future is not None and not request.future.done():
                    request.future.set_exception(error)

    # ------------------------------------------------------------------ #
    # Hot swap
    # ------------------------------------------------------------------ #
    def _on_swap(self, model: str, bits: int, generation: int) -> None:
        """Repository swap listener: ship the new export to its shard.

        Packs the swapped export into a fresh arena segment and sends the
        manifest down the owning shard's (ordered) control pipe: batches
        already sent drain on the old mapping, then the worker remaps.
        """
        if not self._started or self._stopped:
            return
        from repro.serve.repository import FLOAT_BITS

        if bits == FLOAT_BITS:  # pragma: no cover - repository forbids this
            return
        key = variant_key(model, bits)
        shard = self._shards[self.router.shard_for_key(key)]
        if shard.failed is not None:
            return
        export = self.repository.export(model, bits)
        segment, manifest = pack_exports({key: export}, generation=generation)
        with self._segments_lock:
            self._segments[segment.name] = segment
            self._segment_keys[segment.name] = {key}
        try:
            with shard.send_lock:
                shard.commands.send(("swap", manifest))
        except (BrokenPipeError, OSError):  # pragma: no cover - worker gone
            with self._segments_lock:
                self._segments.pop(segment.name, None)
                self._segment_keys.pop(segment.name, None)
            segment.close()
            segment.unlink()

    def _finish_swap(self, shard: _Shard, segment_name: str, swapped_keys: List[str]) -> None:
        """Swap ack: retire segments no longer mapping any live key.

        The worker closes its old mapping *before* acking (pipe order), so
        a superseded swap segment can be unlinked here.  The initial arena
        is shared by every shard and is only unlinked at :meth:`stop`.
        """
        with self._segments_lock:
            for key in swapped_keys:
                previous = self._key_segment.get(key)
                self._key_segment[key] = segment_name
                self._segment_keys.setdefault(segment_name, set()).add(key)
                if previous is None or previous == segment_name or previous == self._arena_name:
                    continue
                owners = self._segment_keys.get(previous)
                if owners is not None:
                    owners.discard(key)
                    if not owners:
                        self._segment_keys.pop(previous, None)
                        segment = self._segments.pop(previous, None)
                        if segment is not None:
                            segment.close()
                            segment.unlink()

    # ------------------------------------------------------------------ #
    # Worker metrics (stats mailbox)
    # ------------------------------------------------------------------ #
    def worker_metrics(self, timeout: float = 10.0) -> Dict[str, dict]:
        """Per-shard metric registry dumps, collected over the stats
        mailbox: live workers are polled; stopped workers contribute the
        final dump captured at shutdown.  Keys are shard indices as
        strings (the ``shard`` label value used when merging)."""
        pending: List[_Shard] = []
        for shard in self._shards:
            if shard.final_dump is not None or shard.failed is not None:
                continue
            shard.stats_event.clear()
            try:
                with shard.send_lock:
                    shard.commands.send(("stats",))
            except (BrokenPipeError, OSError):  # pragma: no cover - worker gone
                continue
            pending.append(shard)
        deadline = time.monotonic() + timeout
        for shard in pending:
            shard.stats_event.wait(max(0.0, deadline - time.monotonic()))
        dumps: Dict[str, dict] = {}
        for shard in self._shards:
            dump = shard.final_dump if shard.final_dump is not None else shard.stats_dump
            if dump is not None:
                dumps[str(shard.index)] = dump
        return dumps
