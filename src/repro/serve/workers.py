"""Thread pool executing scheduler batches through shared plans.

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionContext`
per plan it has executed (its private buffer arena), so any number of
workers execute the *same* immutable plan concurrently without sharing any
mutable state.  The numpy kernels behind the hot steps (BLAS matmul, ufunc
loops) release the GIL, so worker threads overlap on real cores even in
CPython.

The pool is deliberately dumb: it pulls ``(queue_key, batch)`` pairs from a
:class:`~repro.serve.scheduler.Scheduler`, asks its :class:`BatchExecutor`
to resolve the key to a plan, executes, and fulfils each request's future.
Policy (routing, admission, accounting models) lives in the layers above.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import (
    DEFAULT_BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricRegistry,
)
from repro.obs.slo import SLOMonitor
from repro.obs.trace import TraceLog
from repro.runtime.plan import ExecutionContext, ExecutionPlan
from repro.serve.scheduler import Scheduler
from repro.serve.types import (
    BatchAccountant,
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    ServeStats,
)


class BatchExecutor:
    """Resolves a scheduler queue key to everything a worker needs.

    One executor per serving stack; shared by all workers.  ``resolve`` must
    be thread-safe and return the (immutable) plan, the per-layer forward
    bitwidths for the cost models, the accountant to annotate records with
    (or ``None`` to skip modelled accounting), and the ``(model, bits)``
    labels for the result objects.
    """

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        """Resolve one queue key to ``(plan, forward_bits, accountant, model, bits)``."""
        raise NotImplementedError


class WorkerPool:
    """N threads draining a scheduler through per-worker execution contexts."""

    def __init__(
        self,
        scheduler: Scheduler,
        executor: BatchExecutor,
        *,
        workers: int = 1,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[MetricRegistry] = None,
        trace_log: Optional[TraceLog] = None,
        slo_monitor: Optional[SLOMonitor] = None,
    ) -> None:
        """Args:
            scheduler, executor, workers, stats, clock: As before.
            metrics: Registry for the per-phase span histograms
                (queue-wait / batch-assembly / kernel / post) and the
                batch-size histogram; ``None`` skips them.
            trace_log: Ring the completed per-request traces land in.
            slo_monitor: Checks each served request's latency / energy
                against the budgets of the SLO it was routed under.
        """
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.scheduler = scheduler
        self.executor = executor
        self.workers = workers
        self.clock = clock
        self.stats = stats if stats is not None else ServeStats()
        self.batch_records: List[BatchRecord] = []
        self.trace_log = trace_log
        self.slo_monitor = slo_monitor
        self._stats_lock = threading.Lock()
        self._batch_counter = 0
        self._threads: List[threading.Thread] = []
        self._started = False
        if metrics is not None:
            self._queue_wait_hist = metrics.histogram(
                "serve_queue_wait_seconds",
                "Per-request wait between submit and batch dispatch.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._assembly_hist = metrics.histogram(
                "serve_batch_assembly_seconds",
                "Per-batch plan resolution + input stacking time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._kernel_hist = metrics.histogram(
                "serve_kernel_seconds",
                "Per-batch plan execution (kernel) time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._post_hist = metrics.histogram(
                "serve_post_seconds",
                "Per-batch post-processing (argmax, accounting) time.",
                labels=("model",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            self._batch_size_hist = metrics.histogram(
                "serve_batch_size",
                "Requests per dispatched batch.",
                labels=("model",),
                buckets=DEFAULT_BATCH_SIZE_BUCKETS,
            )
        else:
            self._queue_wait_hist = self._assembly_hist = None
            self._kernel_hist = self._post_hist = self._batch_size_hist = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker threads (once; also via ``with``).

        Raises:
            RuntimeError: the pool was already started.
        """
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the scheduler and join the workers (they drain first)."""
        self.scheduler.stop()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The worker loop
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        # Per-worker buffer arenas, one per distinct plan this thread runs.
        contexts: Dict[int, ExecutionContext] = {}
        while True:
            item = self.scheduler.get_batch()
            if item is None:
                return
            queue_key, requests = item
            try:
                self._execute(queue_key, requests, contexts)
            except BaseException as error:  # noqa: BLE001 - fulfil futures, keep serving
                for request in requests:
                    if request.future is not None and not request.future.done():
                        request.future.set_exception(error)

    def _context_for(
        self,
        plan: ExecutionPlan,
        contexts: Dict[int, ExecutionContext],
        queue_key: str,
    ):
        ctx = contexts.get(id(plan))
        if ctx is None:
            # Size the worker's arena from the plan's memory planner at the
            # queue's maximum batch, so the whole buffer block is committed
            # once up front instead of growing scratch lazily per step.
            try:
                batch_hint = self.scheduler.policy(queue_key).max_batch_size
            except KeyError:  # pragma: no cover - executor resolved an unknown key
                batch_hint = None
            ctx = plan.create_context(batch_size=batch_hint)
            contexts[id(plan)] = ctx
        return ctx

    def _execute(
        self,
        queue_key: str,
        requests: List[InferenceRequest],
        contexts: Dict[int, ExecutionContext],
    ) -> None:
        # One clock reading per phase transition, shared by every request
        # in the batch: queue-wait ends here, batch assembly (plan
        # resolution + input stacking) ends at `started`, the kernel at
        # `ended`, post-processing at `post_stamp`.  Traces mark at these
        # shared stamps, so their spans tile each request's lifetime
        # exactly whatever clock is injected.
        dispatched = self.clock()
        plan, forward_bits, accountant, model, bits = self.executor.resolve(queue_key)
        batch = np.stack([request.x for request in requests])
        started = self.clock()
        logits = plan.run(batch, ctx=self._context_for(plan, contexts, queue_key))
        ended = self.clock()
        compute_seconds = ended - started
        predictions = np.argmax(logits, axis=-1)

        with self._stats_lock:
            batch_id = self._batch_counter
            self._batch_counter += 1
        record = BatchRecord(
            batch_id=batch_id,
            size=len(requests),
            compute_seconds=compute_seconds,
            model=model,
            bits=bits,
        )
        if accountant is not None:
            accountant.annotate(record, forward_bits)
        post_stamp = self.clock()

        if self._kernel_hist is not None:
            self._assembly_hist.labels(model=model).observe(started - dispatched)
            self._kernel_hist.labels(model=model).observe(compute_seconds)
            self._post_hist.labels(model=model).observe(post_stamp - ended)
            self._batch_size_hist.labels(model=model).observe(len(requests))
        energy_uj = (
            record.energy_pj / record.size * 1e-6 if record.energy_pj is not None else None
        )

        latencies: List[float] = []
        for index, request in enumerate(requests):
            queue_seconds = started - request.enqueued_at
            latency = queue_seconds + compute_seconds
            latencies.append(latency)
            if self._queue_wait_hist is not None:
                self._queue_wait_hist.labels(model=model).observe(
                    dispatched - request.enqueued_at
                )
            trace = request.trace
            if trace is not None:
                trace.mark("queue_wait", at=dispatched)
                trace.mark("batch_assembly", at=started)
                trace.mark("kernel", at=ended)
                trace.mark("post", at=post_stamp)
                if self.trace_log is not None:
                    self.trace_log.append(trace)
            if self.slo_monitor is not None and request.slo is not None:
                # Latency is checked as observed (queueing + kernel);
                # energy as the modelled per-request share of the batch.
                self.slo_monitor.observe_request(
                    model, request.slo, latency_s=latency, energy_uj=energy_uj
                )
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[index],
                prediction=int(predictions[index]),
                batch_id=batch_id,
                batch_size=len(requests),
                queue_seconds=queue_seconds,
                compute_seconds=compute_seconds,
                model=model,
                bits=bits,
                trace=trace,
            )
            if request.future is not None:
                request.future.set_result(result)
        self.stats.record_batch(record, latencies)
        with self._stats_lock:
            self.batch_records.append(record)
