"""Thread pool executing scheduler batches through shared plans.

Each worker thread owns one :class:`~repro.runtime.plan.ExecutionContext`
per plan it has executed (its private buffer arena), so any number of
workers execute the *same* immutable plan concurrently without sharing any
mutable state.  The numpy kernels behind the hot steps (BLAS matmul, ufunc
loops) release the GIL, so worker threads overlap on real cores even in
CPython.

The pool is deliberately dumb: it pulls ``(queue_key, batch)`` pairs from a
:class:`~repro.serve.scheduler.Scheduler`, asks its :class:`BatchExecutor`
to resolve the key to a plan, executes, and fulfils each request's future.
Policy (routing, admission, accounting models) lives in the layers above.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.plan import ExecutionContext, ExecutionPlan
from repro.serve.scheduler import Scheduler
from repro.serve.types import (
    BatchAccountant,
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    ServeStats,
)


class BatchExecutor:
    """Resolves a scheduler queue key to everything a worker needs.

    One executor per serving stack; shared by all workers.  ``resolve`` must
    be thread-safe and return the (immutable) plan, the per-layer forward
    bitwidths for the cost models, the accountant to annotate records with
    (or ``None`` to skip modelled accounting), and the ``(model, bits)``
    labels for the result objects.
    """

    def resolve(
        self, queue_key: str
    ) -> Tuple[ExecutionPlan, Dict[str, int], Optional[BatchAccountant], str, Optional[int]]:
        """Resolve one queue key to ``(plan, forward_bits, accountant, model, bits)``."""
        raise NotImplementedError


class WorkerPool:
    """N threads draining a scheduler through per-worker execution contexts."""

    def __init__(
        self,
        scheduler: Scheduler,
        executor: BatchExecutor,
        *,
        workers: int = 1,
        stats: Optional[ServeStats] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.scheduler = scheduler
        self.executor = executor
        self.workers = workers
        self.clock = clock
        self.stats = stats if stats is not None else ServeStats()
        self.batch_records: List[BatchRecord] = []
        self._stats_lock = threading.Lock()
        self._batch_counter = 0
        self._threads: List[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker threads (once; also via ``with``).

        Raises:
            RuntimeError: the pool was already started.
        """
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the scheduler and join the workers (they drain first)."""
        self.scheduler.stop()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The worker loop
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        # Per-worker buffer arenas, one per distinct plan this thread runs.
        contexts: Dict[int, ExecutionContext] = {}
        while True:
            item = self.scheduler.get_batch()
            if item is None:
                return
            queue_key, requests = item
            try:
                self._execute(queue_key, requests, contexts)
            except BaseException as error:  # noqa: BLE001 - fulfil futures, keep serving
                for request in requests:
                    if request.future is not None and not request.future.done():
                        request.future.set_exception(error)

    def _context_for(
        self,
        plan: ExecutionPlan,
        contexts: Dict[int, ExecutionContext],
        queue_key: str,
    ):
        ctx = contexts.get(id(plan))
        if ctx is None:
            # Size the worker's arena from the plan's memory planner at the
            # queue's maximum batch, so the whole buffer block is committed
            # once up front instead of growing scratch lazily per step.
            try:
                batch_hint = self.scheduler.policy(queue_key).max_batch_size
            except KeyError:  # pragma: no cover - executor resolved an unknown key
                batch_hint = None
            ctx = plan.create_context(batch_size=batch_hint)
            contexts[id(plan)] = ctx
        return ctx

    def _execute(
        self,
        queue_key: str,
        requests: List[InferenceRequest],
        contexts: Dict[int, ExecutionContext],
    ) -> None:
        plan, forward_bits, accountant, model, bits = self.executor.resolve(queue_key)
        batch = np.stack([request.x for request in requests])
        started = self.clock()
        logits = plan.run(batch, ctx=self._context_for(plan, contexts, queue_key))
        compute_seconds = self.clock() - started
        predictions = np.argmax(logits, axis=-1)

        with self._stats_lock:
            batch_id = self._batch_counter
            self._batch_counter += 1
        record = BatchRecord(
            batch_id=batch_id,
            size=len(requests),
            compute_seconds=compute_seconds,
            model=model,
            bits=bits,
        )
        if accountant is not None:
            accountant.annotate(record, forward_bits)

        latencies: List[float] = []
        for index, request in enumerate(requests):
            queue_seconds = started - request.enqueued_at
            latencies.append(queue_seconds + compute_seconds)
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[index],
                prediction=int(predictions[index]),
                batch_id=batch_id,
                batch_size=len(requests),
                queue_seconds=queue_seconds,
                compute_seconds=compute_seconds,
                model=model,
                bits=bits,
            )
            if request.future is not None:
                request.future.set_result(result)
        with self._stats_lock:
            self.batch_records.append(record)
            self.stats.record_batch(record, latencies)
