"""Serving benchmark: compiled plans vs the training-stack forward.

:func:`run_serve_bench` feeds a stream of synthetic requests through the
micro-batching engine for each requested variant and reports throughput,
latency and analytic per-request energy:

* ``module-forward`` -- the status-quo deployment path this PR replaces:
  dequantised weights in the training ``Module``, whose ``__call__`` builds
  an autograd graph on every inference;
* ``module-no-grad`` -- the same forward under ``no_grad`` (graph recording
  off, but still one ``Tensor`` per op);
* ``plan-fp32`` -- the compiled float plan;
* ``plan-<k>bit`` -- compiled quantised plans executing integer codes at
  each requested bitwidth.

:func:`run_scaling_bench` is the concurrent companion: it serves the same
request stream through the multi-model :class:`~repro.serve.service.
InferenceService` at several worker-pool sizes and reports how throughput
scales over the single-worker baseline (possible because one compiled plan
is shared across worker threads, each with its own buffer arena, and the
numpy kernels release the GIL).

:func:`run_backend_bench` compares the thread and process serving
backends on one identical request stream: same models, same samples, same
batching policy, so the logits must come back bitwise identical (the
report records whether they did) while the process backend escapes the
GIL entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import COMPUTE_PROFILES, ComputeProfile
from repro.hardware.profile import ModelProfile, profile_model
from repro.nn.module import Module
from repro.quant.affine import FLOAT_BITS_THRESHOLD
from repro.quant.deploy import QuantizedModelExport, export_quantized_model
from repro.runtime.plan import ExecutionPlan, compile_plan, compile_quantized_plan
from repro.serve.engine import MicroBatchServer
from repro.serve.repository import ModelRepository
from repro.serve.scheduler import QueuePolicy
from repro.serve.service import InferenceService
from repro.tensor import Tensor, no_grad


@dataclass
class ServeBenchRow:
    """One variant's aggregate numbers."""

    variant: str
    bits: Optional[int]
    weight_kib: float
    throughput_rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    energy_uj_per_request: Optional[float]
    speedup_vs_module: float


@dataclass
class ServeBenchReport:
    """Result of one serve benchmark run."""

    model: str
    input_shape: Tuple[int, ...]
    batch_size: int
    requests: int
    device: Optional[str]
    rows: List[ServeBenchRow] = field(default_factory=list)

    def row(self, variant: str) -> ServeBenchRow:
        """The row named ``variant`` (raises ``KeyError`` when absent)."""
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(f"no benchmark row named {variant!r}")

    def format_rows(self) -> List[str]:
        """The report as aligned text lines (header + one line per variant)."""
        header = (
            f"{'variant':<16s} {'bits':>4s} {'weights':>10s} {'req/s':>10s} "
            f"{'mean ms':>9s} {'p95 ms':>9s} {'uJ/req':>9s} {'vs module':>10s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            energy = f"{row.energy_uj_per_request:9.2f}" if row.energy_uj_per_request else "        -"
            lines.append(
                f"{row.variant:<16s} {row.bits if row.bits else '-':>4} "
                f"{row.weight_kib:9.1f}K {row.throughput_rps:10.0f} "
                f"{row.mean_latency_ms:9.3f} {row.p95_latency_ms:9.3f} "
                f"{energy} {row.speedup_vs_module:9.2f}x"
            )
        return lines


def _request_stream(
    input_shape: Tuple[int, ...], count: int, rng: np.random.Generator
) -> np.ndarray:
    return rng.normal(size=(count,) + tuple(input_shape))


def _time_module(model: Module, batches: Sequence[np.ndarray], grad: bool, repeats: int) -> float:
    """Best-of-``repeats`` seconds to push all batches through the module."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        if grad:
            for batch in batches:
                model(Tensor(batch))
        else:
            with no_grad():
                for batch in batches:
                    model(Tensor(batch))
        best = min(best, time.perf_counter() - started)
    return best


def _serve_through_engine(
    plan: ExecutionPlan,
    samples: np.ndarray,
    batch_size: int,
    profile: Optional[ModelProfile],
    energy_model: Optional[EnergyModel],
    compute_profile: Optional[ComputeProfile],
    repeats: int,
) -> Tuple[float, MicroBatchServer]:
    """Best-of-``repeats`` seconds to serve all samples; returns last server."""
    best = float("inf")
    server: Optional[MicroBatchServer] = None
    for _ in range(repeats):
        # Infinite delay: a batch dispatches exactly when it is full, so the
        # benchmark measures full micro-batches (drain flushes the tail).
        server = MicroBatchServer(
            plan,
            max_batch_size=batch_size,
            max_queue_delay_s=float("inf"),
            profile=profile,
            energy_model=energy_model,
            compute_profile=compute_profile,
        )
        started = time.perf_counter()
        for sample in samples:
            server.submit(sample)
            server.step()
        server.drain()
        best = min(best, time.perf_counter() - started)
    assert server is not None
    return best, server


def run_serve_bench(
    model: Module,
    input_shape: Tuple[int, ...],
    *,
    bits_list: Sequence[int] = (8, 4),
    export: Optional[QuantizedModelExport] = None,
    batch_size: int = 16,
    requests: int = 256,
    repeats: int = 3,
    device: Optional[str] = "smartphone_npu",
    seed: int = 0,
) -> ServeBenchReport:
    """Benchmark serving ``model`` through compiled plans at several bitwidths.

    Parameters
    ----------
    model:
        Architecture (and weights) to serve.  The model is snapshotted into
        plans; its weights are not modified except when ``export`` /
        ``bits_list`` loads quantised values (the standard deployment flow).
    input_shape:
        Per-sample input shape.
    bits_list:
        Uniform weight bitwidths to export and serve.  Every export is
        built from the model's own weights; the model comes back unchanged
        (``compile_quantized_plan`` restores its state after tracing).
        Ignored when ``export`` is given (its own bitwidths are used).
    export:
        A pre-built export to serve instead of synthesising uniform-bitwidth
        exports from the model.
    batch_size, requests:
        Micro-batch size and number of synthetic requests per variant.
    repeats:
        Timing repetitions; the best run is reported.
    device:
        Key into :data:`~repro.hardware.latency.COMPUTE_PROFILES` for the
        analytic energy / device-latency models, or ``None`` to skip them.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    if requests < 1:
        raise ValueError(f"requests must be at least 1, got {requests}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be at least 1, got {batch_size}")
    rng = np.random.default_rng(seed)
    samples = _request_stream(input_shape, requests, rng)
    batches = [
        samples[start : start + batch_size] for start in range(0, requests, batch_size)
    ]
    profile = profile_model(model, input_shape) if device else None
    energy_model = EnergyModel() if device else None
    compute_profile = COMPUTE_PROFILES[device] if device else None

    report = ServeBenchReport(
        model=type(model).__name__,
        input_shape=tuple(input_shape),
        batch_size=batch_size,
        requests=requests,
        device=device,
    )
    was_training = model.training
    model.eval()

    def module_weight_kib() -> float:
        return sum(p.data.nbytes for p in model.parameters()) / 1024

    # Baseline: the training-stack forward (builds an autograd graph).
    module_seconds = _time_module(model, batches, grad=True, repeats=repeats)
    report.rows.append(
        ServeBenchRow(
            variant="module-forward",
            bits=None,
            weight_kib=module_weight_kib(),
            throughput_rps=requests / module_seconds,
            mean_latency_ms=module_seconds / len(batches) * 1e3,
            p95_latency_ms=module_seconds / len(batches) * 1e3,
            energy_uj_per_request=None,
            speedup_vs_module=1.0,
        )
    )
    no_grad_seconds = _time_module(model, batches, grad=False, repeats=repeats)
    report.rows.append(
        ServeBenchRow(
            variant="module-no-grad",
            bits=None,
            weight_kib=module_weight_kib(),
            throughput_rps=requests / no_grad_seconds,
            mean_latency_ms=no_grad_seconds / len(batches) * 1e3,
            p95_latency_ms=no_grad_seconds / len(batches) * 1e3,
            energy_uj_per_request=None,
            speedup_vs_module=module_seconds / no_grad_seconds,
        )
    )

    def add_plan_row(variant: str, plan: ExecutionPlan, bits: Optional[int]) -> None:
        seconds, server = _serve_through_engine(
            plan, samples, batch_size, profile, energy_model, compute_profile, repeats
        )
        stats = server.stats
        energy = (
            stats.energy_pj / stats.requests * 1e-6 if stats.energy_pj else None
        )  # pJ -> uJ
        report.rows.append(
            ServeBenchRow(
                variant=variant,
                bits=bits,
                weight_kib=plan.weight_bytes() / 1024,
                throughput_rps=requests / seconds,
                mean_latency_ms=float(np.mean(stats.latencies)) * 1e3,
                p95_latency_ms=stats.latency_percentile(95) * 1e3,
                energy_uj_per_request=energy,
                speedup_vs_module=module_seconds / seconds,
            )
        )

    try:
        add_plan_row("plan-fp32", compile_plan(model, input_shape), 32)
        if export is not None:
            bits_present = sorted({t.bits for t in export.quantized.values()})
            label = f"plan-{bits_present[0]}bit" if len(bits_present) == 1 else "plan-mixed"
            bits = bits_present[0] if len(bits_present) == 1 else None
            add_plan_row(label, compile_quantized_plan(model, export, input_shape), bits)
        else:
            for bits in bits_list:
                uniform = {name: bits for name, _ in model.named_parameters()}
                synthetic = export_quantized_model(model, uniform)
                add_plan_row(
                    f"plan-{bits}bit",
                    compile_quantized_plan(model, synthetic, input_shape),
                    bits,
                )
    finally:
        model.train(was_training)
    return report


# --------------------------------------------------------------------------- #
# Multi-worker scaling benchmark
# --------------------------------------------------------------------------- #
@dataclass
class ScalingBenchRow:
    """Throughput of one worker-pool size."""

    workers: int
    seconds: float
    throughput_rps: float
    #: Relative to the report's first workers_list entry (its baseline).
    speedup_vs_baseline: float
    mean_batch_size: float


@dataclass
class ScalingBenchReport:
    """Result of one multi-worker scaling run."""

    models: List[str]
    bits: Optional[int]
    batch_size: int
    requests: int
    rows: List[ScalingBenchRow] = field(default_factory=list)

    def row(self, workers: int) -> ScalingBenchRow:
        """The row for one pool size (raises ``KeyError`` when absent)."""
        for row in self.rows:
            if row.workers == workers:
                return row
        raise KeyError(f"no scaling row for {workers} workers")

    def format_rows(self) -> List[str]:
        """The report as aligned text lines (one per pool size)."""
        baseline = self.rows[0].workers if self.rows else 1
        header = (
            f"{'workers':>7s} {'seconds':>9s} {'req/s':>10s} "
            f"{f'vs {baseline} wkr':>9s} {'mean batch':>11s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workers:7d} {row.seconds:9.3f} {row.throughput_rps:10.0f} "
                f"{row.speedup_vs_baseline:8.2f}x {row.mean_batch_size:11.1f}"
            )
        return lines


def run_scaling_bench(
    models: Mapping[str, Tuple[Module, Tuple[int, ...]]],
    *,
    bits: Optional[int] = None,
    workers_list: Sequence[int] = (1, 2, 4),
    batch_size: int = 16,
    requests: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> ScalingBenchReport:
    """Serve one request stream at several worker-pool sizes.

    Parameters
    ----------
    models:
        ``name -> (module, per_sample_input_shape)``.  Requests are spread
        round-robin over the named models, exercising the multi-model
        scheduler; a single-entry mapping benchmarks single-model scaling.
    bits:
        Serve every model's uniform ``bits``-bit quantised export, or (the
        default, ``None``) the compiled fp32 plan.
    workers_list:
        Worker-pool sizes to time.  Throughput is reported relative to the
        first entry (conventionally 1).
    batch_size, requests, repeats, seed:
        As in :func:`run_serve_bench`; ``requests`` is the total across all
        models, and the best of ``repeats`` timings is reported per size.
    """
    if not models:
        raise ValueError("models mapping must not be empty")
    if bits is not None and not 2 <= bits < FLOAT_BITS_THRESHOLD:
        raise ValueError(
            f"bits must be in [2, {FLOAT_BITS_THRESHOLD - 1}] or None for fp32, got {bits}"
        )
    if not workers_list:
        raise ValueError("workers_list must not be empty")
    if requests < 1:
        raise ValueError(f"requests must be at least 1, got {requests}")
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")

    repository = ModelRepository()
    for name, (model, input_shape) in models.items():
        repository.add_model(name, model, input_shape)
        if bits is not None:
            uniform = {pname: bits for pname, _ in model.named_parameters()}
            repository.add_export(name, export_quantized_model(model, uniform), bits=bits)
    repository.warm()

    rng = np.random.default_rng(seed)
    names = list(models)
    streams = {
        name: _request_stream(models[name][1], requests // len(names) + 1, rng)
        for name in names
    }
    policy = QueuePolicy(max_batch_size=batch_size, max_queue_delay_s=float("inf"))

    report = ScalingBenchReport(
        models=names, bits=bits, batch_size=batch_size, requests=requests
    )
    for workers in workers_list:
        best = float("inf")
        best_stats = None
        for _ in range(repeats):
            service = InferenceService(
                repository, workers=workers, queue_policy=policy, warm=False
            )
            futures = []
            started = time.perf_counter()
            with service:
                for index in range(requests):
                    name = names[index % len(names)]
                    sample = streams[name][index // len(names)]
                    futures.append(service.submit(name, sample))
                service.stop()
                for future in futures:
                    future.result(timeout=60.0)
            seconds = time.perf_counter() - started
            if seconds < best:
                best = seconds
                best_stats = service.stats
        assert best_stats is not None
        report.rows.append(
            ScalingBenchRow(
                workers=workers,
                seconds=best,
                throughput_rps=requests / best,
                speedup_vs_baseline=0.0,  # filled below once the baseline is known
                mean_batch_size=best_stats.mean_batch_size,
            )
        )
    baseline = report.rows[0].throughput_rps
    for row in report.rows:
        row.speedup_vs_baseline = row.throughput_rps / baseline if baseline > 0 else 0.0
    return report


# --------------------------------------------------------------------------- #
# Thread vs process backend benchmark
# --------------------------------------------------------------------------- #
@dataclass
class BackendBenchRow:
    """Throughput of one serving backend on the shared request stream."""

    backend: str
    #: Worker threads (thread backend) or shard processes (process backend).
    workers: int
    seconds: float
    throughput_rps: float
    #: Relative to the thread row (the report's baseline backend).
    speedup_vs_thread: float
    mean_batch_size: float


@dataclass
class BackendBenchReport:
    """Result of one thread-vs-process backend comparison."""

    models: List[str]
    bits: Optional[int]
    batch_size: int
    requests: int
    shards: int
    #: Whether both backends returned bitwise-identical logits for every
    #: request (same plans, same batch composition -- they must).
    identical: bool = True
    rows: List[BackendBenchRow] = field(default_factory=list)

    def row(self, backend: str) -> BackendBenchRow:
        """The row for one backend (raises ``KeyError`` when absent)."""
        for row in self.rows:
            if row.backend == backend:
                return row
        raise KeyError(f"no backend row named {backend!r}")

    def format_rows(self) -> List[str]:
        """The report as aligned text lines (one per backend)."""
        header = (
            f"{'backend':<8s} {'workers':>7s} {'seconds':>9s} {'req/s':>10s} "
            f"{'vs thread':>9s} {'mean batch':>11s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.backend:<8s} {row.workers:7d} {row.seconds:9.3f} "
                f"{row.throughput_rps:10.0f} {row.speedup_vs_thread:8.2f}x "
                f"{row.mean_batch_size:11.1f}"
            )
        lines.append(
            "responses bitwise-identical across backends: "
            + ("yes" if self.identical else "NO")
        )
        return lines


def _serve_stream(
    repository: ModelRepository,
    names: Sequence[str],
    streams: Mapping[str, np.ndarray],
    requests: int,
    policy: QueuePolicy,
    *,
    backend: str,
    workers: int,
    shards: Optional[int],
) -> Tuple[float, List[np.ndarray], float]:
    """Serve the stream once; returns (seconds, per-request logits, mean batch).

    Requests are submitted from this single thread in a fixed order; with
    an infinite queue delay a batch dispatches exactly when it is full, so
    batch composition -- and therefore the BLAS reduction order inside each
    batch -- is identical for every backend, making the returned logits
    comparable bit-for-bit.
    """
    service = InferenceService(
        repository,
        workers=workers,
        queue_policy=policy,
        warm=True,
        backend=backend,
        shards=shards,
    )
    futures = []
    with service:
        # Timing starts after start-up (worker spawn, arena packing, plan
        # compilation): both backends are measured warm, on serving alone.
        started = time.perf_counter()
        for index in range(requests):
            name = names[index % len(names)]
            sample = streams[name][index // len(names)]
            futures.append(service.submit(name, sample))
        service.stop()
        results = [future.result(timeout=120.0) for future in futures]
        seconds = time.perf_counter() - started
    logits = [np.array(result.logits, copy=True) for result in results]
    return seconds, logits, service.stats.mean_batch_size


def run_backend_bench(
    models: Mapping[str, Tuple[Module, Tuple[int, ...]]],
    *,
    bits: Optional[int] = None,
    workers: int = 2,
    shards: Optional[int] = None,
    batch_size: int = 16,
    requests: int = 128,
    repeats: int = 1,
    seed: int = 0,
) -> BackendBenchReport:
    """Serve one request stream through both backends and compare.

    Parameters
    ----------
    models:
        ``name -> (module, per_sample_input_shape)``.  Requests alternate
        round-robin over the named models (the multi-model case is where
        process sharding pays: each shard compiles and serves only its
        own models).
    bits:
        Serve every model's uniform ``bits``-bit quantised export, or
        (default) the compiled fp32 plan.
    workers:
        Thread count for the thread backend.
    shards:
        Shard (process) count for the process backend; defaults to
        ``workers`` so both backends get the same parallelism budget.
    batch_size, requests, repeats, seed:
        As in :func:`run_scaling_bench`.  The identity check always uses
        the first repeat of each backend (identical streams).
    """
    if not models:
        raise ValueError("models mapping must not be empty")
    if bits is not None and not 2 <= bits < FLOAT_BITS_THRESHOLD:
        raise ValueError(
            f"bits must be in [2, {FLOAT_BITS_THRESHOLD - 1}] or None for fp32, got {bits}"
        )
    if requests < 1:
        raise ValueError(f"requests must be at least 1, got {requests}")
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    shard_count = shards if shards is not None else workers

    rng = np.random.default_rng(seed)
    names = list(models)
    streams = {
        name: _request_stream(models[name][1], requests // len(names) + 1, rng)
        for name in names
    }
    policy = QueuePolicy(max_batch_size=batch_size, max_queue_delay_s=float("inf"))

    report = BackendBenchReport(
        models=names,
        bits=bits,
        batch_size=batch_size,
        requests=requests,
        shards=shard_count,
    )
    reference: Optional[List[np.ndarray]] = None
    for backend, parallelism in (("thread", workers), ("process", shard_count)):
        best = float("inf")
        best_mean_batch = 0.0
        for repeat in range(repeats):
            # A fresh repository per run: plan caches and schedulers start
            # cold for both backends alike.
            repository = ModelRepository()
            for name, (model, input_shape) in models.items():
                repository.add_model(name, model, input_shape)
                if bits is not None:
                    uniform = {p: bits for p, _ in model.named_parameters()}
                    repository.add_export(
                        name, export_quantized_model(model, uniform), bits=bits
                    )
            seconds, logits, mean_batch = _serve_stream(
                repository, names, streams, requests, policy,
                backend=backend, workers=parallelism, shards=shard_count,
            )
            if repeat == 0:
                if reference is None:
                    reference = logits
                else:
                    report.identical = report.identical and len(logits) == len(
                        reference
                    ) and all(
                        np.array_equal(a, b) for a, b in zip(reference, logits)
                    )
            if seconds < best:
                best = seconds
                best_mean_batch = mean_batch
        report.rows.append(
            BackendBenchRow(
                backend=backend,
                workers=parallelism,
                seconds=best,
                throughput_rps=requests / best,
                speedup_vs_thread=0.0,  # filled below
                mean_batch_size=best_mean_batch,
            )
        )
    baseline = report.row("thread").throughput_rps
    for row in report.rows:
        row.speedup_vs_thread = row.throughput_rps / baseline if baseline > 0 else 0.0
    return report
