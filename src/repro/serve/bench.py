"""Serving benchmark: compiled plans vs the training-stack forward.

:func:`run_serve_bench` feeds a stream of synthetic requests through the
micro-batching engine for each requested variant and reports throughput,
latency and analytic per-request energy:

* ``module-forward`` -- the status-quo deployment path this PR replaces:
  dequantised weights in the training ``Module``, whose ``__call__`` builds
  an autograd graph on every inference;
* ``module-no-grad`` -- the same forward under ``no_grad`` (graph recording
  off, but still one ``Tensor`` per op);
* ``plan-fp32`` -- the compiled float plan;
* ``plan-<k>bit`` -- compiled quantised plans executing integer codes at
  each requested bitwidth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.hardware.latency import COMPUTE_PROFILES, ComputeProfile
from repro.hardware.profile import ModelProfile, profile_model
from repro.nn.module import Module
from repro.quant.deploy import QuantizedModelExport, export_quantized_model
from repro.runtime.plan import ExecutionPlan, compile_plan, compile_quantized_plan
from repro.serve.engine import MicroBatchServer
from repro.tensor import Tensor, no_grad


@dataclass
class ServeBenchRow:
    """One variant's aggregate numbers."""

    variant: str
    bits: Optional[int]
    weight_kib: float
    throughput_rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    energy_uj_per_request: Optional[float]
    speedup_vs_module: float


@dataclass
class ServeBenchReport:
    """Result of one serve benchmark run."""

    model: str
    input_shape: Tuple[int, ...]
    batch_size: int
    requests: int
    device: Optional[str]
    rows: List[ServeBenchRow] = field(default_factory=list)

    def row(self, variant: str) -> ServeBenchRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(f"no benchmark row named {variant!r}")

    def format_rows(self) -> List[str]:
        header = (
            f"{'variant':<16s} {'bits':>4s} {'weights':>10s} {'req/s':>10s} "
            f"{'mean ms':>9s} {'p95 ms':>9s} {'uJ/req':>9s} {'vs module':>10s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            energy = f"{row.energy_uj_per_request:9.2f}" if row.energy_uj_per_request else "        -"
            lines.append(
                f"{row.variant:<16s} {row.bits if row.bits else '-':>4} "
                f"{row.weight_kib:9.1f}K {row.throughput_rps:10.0f} "
                f"{row.mean_latency_ms:9.3f} {row.p95_latency_ms:9.3f} "
                f"{energy} {row.speedup_vs_module:9.2f}x"
            )
        return lines


def _request_stream(
    input_shape: Tuple[int, ...], count: int, rng: np.random.Generator
) -> np.ndarray:
    return rng.normal(size=(count,) + tuple(input_shape))


def _time_module(model: Module, batches: Sequence[np.ndarray], grad: bool, repeats: int) -> float:
    """Best-of-``repeats`` seconds to push all batches through the module."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        if grad:
            for batch in batches:
                model(Tensor(batch))
        else:
            with no_grad():
                for batch in batches:
                    model(Tensor(batch))
        best = min(best, time.perf_counter() - started)
    return best


def _serve_through_engine(
    plan: ExecutionPlan,
    samples: np.ndarray,
    batch_size: int,
    profile: Optional[ModelProfile],
    energy_model: Optional[EnergyModel],
    compute_profile: Optional[ComputeProfile],
    repeats: int,
) -> Tuple[float, MicroBatchServer]:
    """Best-of-``repeats`` seconds to serve all samples; returns last server."""
    best = float("inf")
    server: Optional[MicroBatchServer] = None
    for _ in range(repeats):
        # Infinite delay: a batch dispatches exactly when it is full, so the
        # benchmark measures full micro-batches (drain flushes the tail).
        server = MicroBatchServer(
            plan,
            max_batch_size=batch_size,
            max_queue_delay_s=float("inf"),
            profile=profile,
            energy_model=energy_model,
            compute_profile=compute_profile,
        )
        started = time.perf_counter()
        for sample in samples:
            server.submit(sample)
            server.step()
        server.drain()
        best = min(best, time.perf_counter() - started)
    assert server is not None
    return best, server


def run_serve_bench(
    model: Module,
    input_shape: Tuple[int, ...],
    *,
    bits_list: Sequence[int] = (8, 4),
    export: Optional[QuantizedModelExport] = None,
    batch_size: int = 16,
    requests: int = 256,
    repeats: int = 3,
    device: Optional[str] = "smartphone_npu",
    seed: int = 0,
) -> ServeBenchReport:
    """Benchmark serving ``model`` through compiled plans at several bitwidths.

    Parameters
    ----------
    model:
        Architecture (and weights) to serve.  The model is snapshotted into
        plans; its weights are not modified except when ``export`` /
        ``bits_list`` loads quantised values (the standard deployment flow).
    input_shape:
        Per-sample input shape.
    bits_list:
        Uniform weight bitwidths to export and serve.  Every export is
        built from the model's own weights; the model comes back unchanged
        (``compile_quantized_plan`` restores its state after tracing).
        Ignored when ``export`` is given (its own bitwidths are used).
    export:
        A pre-built export to serve instead of synthesising uniform-bitwidth
        exports from the model.
    batch_size, requests:
        Micro-batch size and number of synthetic requests per variant.
    repeats:
        Timing repetitions; the best run is reported.
    device:
        Key into :data:`~repro.hardware.latency.COMPUTE_PROFILES` for the
        analytic energy / device-latency models, or ``None`` to skip them.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    if requests < 1:
        raise ValueError(f"requests must be at least 1, got {requests}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be at least 1, got {batch_size}")
    rng = np.random.default_rng(seed)
    samples = _request_stream(input_shape, requests, rng)
    batches = [
        samples[start : start + batch_size] for start in range(0, requests, batch_size)
    ]
    profile = profile_model(model, input_shape) if device else None
    energy_model = EnergyModel() if device else None
    compute_profile = COMPUTE_PROFILES[device] if device else None

    report = ServeBenchReport(
        model=type(model).__name__,
        input_shape=tuple(input_shape),
        batch_size=batch_size,
        requests=requests,
        device=device,
    )
    was_training = model.training
    model.eval()

    def module_weight_kib() -> float:
        return sum(p.data.nbytes for p in model.parameters()) / 1024

    # Baseline: the training-stack forward (builds an autograd graph).
    module_seconds = _time_module(model, batches, grad=True, repeats=repeats)
    report.rows.append(
        ServeBenchRow(
            variant="module-forward",
            bits=None,
            weight_kib=module_weight_kib(),
            throughput_rps=requests / module_seconds,
            mean_latency_ms=module_seconds / len(batches) * 1e3,
            p95_latency_ms=module_seconds / len(batches) * 1e3,
            energy_uj_per_request=None,
            speedup_vs_module=1.0,
        )
    )
    no_grad_seconds = _time_module(model, batches, grad=False, repeats=repeats)
    report.rows.append(
        ServeBenchRow(
            variant="module-no-grad",
            bits=None,
            weight_kib=module_weight_kib(),
            throughput_rps=requests / no_grad_seconds,
            mean_latency_ms=no_grad_seconds / len(batches) * 1e3,
            p95_latency_ms=no_grad_seconds / len(batches) * 1e3,
            energy_uj_per_request=None,
            speedup_vs_module=module_seconds / no_grad_seconds,
        )
    )

    def add_plan_row(variant: str, plan: ExecutionPlan, bits: Optional[int]) -> None:
        seconds, server = _serve_through_engine(
            plan, samples, batch_size, profile, energy_model, compute_profile, repeats
        )
        stats = server.stats
        energy = (
            stats.energy_pj / stats.requests * 1e-6 if stats.energy_pj else None
        )  # pJ -> uJ
        report.rows.append(
            ServeBenchRow(
                variant=variant,
                bits=bits,
                weight_kib=plan.weight_bytes() / 1024,
                throughput_rps=requests / seconds,
                mean_latency_ms=float(np.mean(stats.latencies)) * 1e3,
                p95_latency_ms=stats.latency_percentile(95) * 1e3,
                energy_uj_per_request=energy,
                speedup_vs_module=module_seconds / seconds,
            )
        )

    try:
        add_plan_row("plan-fp32", compile_plan(model, input_shape), 32)
        if export is not None:
            bits_present = sorted({t.bits for t in export.quantized.values()})
            label = f"plan-{bits_present[0]}bit" if len(bits_present) == 1 else "plan-mixed"
            bits = bits_present[0] if len(bits_present) == 1 else None
            add_plan_row(label, compile_quantized_plan(model, export, input_shape), bits)
        else:
            for bits in bits_list:
                uniform = {name: bits for name, _ in model.named_parameters()}
                synthetic = export_quantized_model(model, uniform)
                add_plan_row(
                    f"plan-{bits}bit",
                    compile_quantized_plan(model, synthetic, input_shape),
                    bits,
                )
    finally:
        model.train(was_training)
    return report
