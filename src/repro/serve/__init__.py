"""Serving front-end for compiled execution plans.

Layered concurrent serving stack:

* :class:`~repro.serve.repository.ModelRepository` -- named models ×
  bitwidth variants, compiled once through a content-hash plan cache.
* :class:`~repro.serve.scheduler.Scheduler` -- per-variant micro-batch
  queues with bounded depth (:class:`~repro.serve.scheduler.QueueFullError`
  backpressure) and max-delay dispatch.
* :class:`~repro.serve.routing.PrecisionRouter` -- per-request SLO routing
  to the cheapest bitwidth variant (the paper's adaptive-precision loop at
  serving time).
* :class:`~repro.serve.workers.WorkerPool` -- threads executing shared
  plans concurrently, one buffer arena per worker.
* :class:`~repro.serve.workers.ProcessWorkerPool` -- spawned worker
  processes (one per :class:`~repro.serve.shards.ShardRouter` shard)
  executing plans against exports in ``multiprocessing.shared_memory``
  arenas, batches crossing over a
  :class:`~repro.serve.shards.SlabRing` of preallocated slabs.
* :class:`~repro.serve.service.InferenceService` -- the composition:
  ``submit(model, x, slo) -> ResultFuture``.
* :class:`~repro.serve.engine.MicroBatchServer` -- the cooperative
  single-model façade over the same layers (deterministic, testable).
* :func:`~repro.serve.bench.run_serve_bench` /
  :func:`~repro.serve.bench.run_scaling_bench` -- throughput / latency /
  energy benchmarks behind ``repro.cli serve-bench``.
"""

from repro.serve.engine import MicroBatchServer
from repro.serve.repository import FLOAT_BITS, ModelRepository, ModelVersion, SwapListener
from repro.serve.routing import (
    DEFAULT_SLO,
    NoVariantError,
    PrecisionRouter,
    RequestSLO,
    RoutingDecision,
)
from repro.serve.scheduler import QueueFullError, QueuePolicy, Scheduler
from repro.serve.service import InferenceService
from repro.serve.types import (
    BatchAccountant,
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    ResultFuture,
    ServeStats,
    VariantCost,
)
from repro.serve.shards import (
    ArenaManifest,
    ArenaTensorSpec,
    ExportManifest,
    ShardRouter,
    ShardWorkerConfig,
    SlabRing,
    attach_exports,
    attach_segment,
    pack_exports,
    variant_key,
)
from repro.serve.workers import BatchExecutor, ProcessWorkerPool, WorkerPool
from repro.serve.bench import (
    BackendBenchReport,
    BackendBenchRow,
    ScalingBenchReport,
    ScalingBenchRow,
    ServeBenchReport,
    ServeBenchRow,
    run_backend_bench,
    run_scaling_bench,
    run_serve_bench,
)

__all__ = [
    "MicroBatchServer",
    "ModelRepository",
    "ModelVersion",
    "SwapListener",
    "FLOAT_BITS",
    "InferenceService",
    "PrecisionRouter",
    "RequestSLO",
    "RoutingDecision",
    "DEFAULT_SLO",
    "NoVariantError",
    "Scheduler",
    "QueuePolicy",
    "QueueFullError",
    "WorkerPool",
    "ProcessWorkerPool",
    "BatchExecutor",
    "ShardRouter",
    "SlabRing",
    "ShardWorkerConfig",
    "ArenaManifest",
    "ArenaTensorSpec",
    "ExportManifest",
    "pack_exports",
    "attach_exports",
    "attach_segment",
    "variant_key",
    "InferenceRequest",
    "InferenceResult",
    "ResultFuture",
    "BatchRecord",
    "ServeStats",
    "BatchAccountant",
    "VariantCost",
    "ServeBenchReport",
    "ServeBenchRow",
    "ScalingBenchReport",
    "ScalingBenchRow",
    "BackendBenchReport",
    "BackendBenchRow",
    "run_serve_bench",
    "run_scaling_bench",
    "run_backend_bench",
]
