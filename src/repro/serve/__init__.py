"""Serving front-end for compiled execution plans.

* :class:`~repro.serve.engine.MicroBatchServer` -- request queue, dynamic
  micro-batches, plan execution, measured + modelled accounting.
* :func:`~repro.serve.bench.run_serve_bench` -- throughput / latency /
  energy comparison of compiled plans (float and quantised) against the
  training-stack ``Module`` forward, behind the ``repro serve-bench`` CLI.
"""

from repro.serve.engine import (
    BatchRecord,
    InferenceRequest,
    InferenceResult,
    MicroBatchServer,
    ServeStats,
)
from repro.serve.bench import ServeBenchReport, ServeBenchRow, run_serve_bench

__all__ = [
    "MicroBatchServer",
    "InferenceRequest",
    "InferenceResult",
    "BatchRecord",
    "ServeStats",
    "ServeBenchReport",
    "ServeBenchRow",
    "run_serve_bench",
]
