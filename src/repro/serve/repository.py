"""Named models × bitwidth variants, compiled once and shared.

The :class:`ModelRepository` is the serving stack's model store.  Each
registered model owns:

* the architecture (a :class:`~repro.nn.module.Module`, used only for
  compilation) and its per-sample input shape;
* any number of **bitwidth variants** -- quantised
  :class:`~repro.quant.deploy.QuantizedModelExport` objects (added in
  process or loaded from ``.npz`` archives) plus an optional fp32 variant
  compiled from the module's own weights;
* a :class:`~repro.hardware.profile.ModelProfile` for the analytic cost
  models, so the router can price every variant without compiling it.

Plans are compiled lazily on first request and exactly once per variant:
quantised variants go through a shared, content-hash-keyed
:class:`~repro.runtime.cache.PlanCache` (so identical exports -- reloaded
archives, duplicate registrations -- share one plan), and the fp32 variant
is memoised per model under the repository lock.  The compiled
:class:`~repro.runtime.plan.ExecutionPlan` objects are immutable and safe
to execute from any number of worker threads.

Variants are **versioned and hot-swappable**: :meth:`ModelRepository.swap`
atomically replaces a served variant's export with a newer one (e.g. the
output of an online APT fine-tuning job), compiling the incoming plan
*before* any lock is taken and bumping the model's **generation counter**
so executors re-resolve their memoised plans.  Batches already dispatched
keep draining on the old (immutable) plan; the old export's entry is
invalidated from the plan cache exactly once, and the previous export is
retained for :meth:`ModelRepository.rollback`.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.hardware.profile import ModelProfile, profile_model
from repro.nn.module import Module
from repro.quant.deploy import QuantizedModelExport, load_export
from repro.runtime.cache import PlanCache
from repro.runtime.plan import ExecutionPlan, compile_lock, compile_plan

#: Variant key of the uncompressed float plan compiled from the module's
#: own weights.
FLOAT_BITS = 32


#: Signature of a swap listener: ``(model_name, bits, generation)`` after a
#: variant was hot-swapped (or rolled back).  Called outside repository locks.
SwapListener = Callable[[str, int, int], None]


@dataclass(frozen=True)
class ModelVersion:
    """One entry in a model's variant history (audit trail of the lifecycle).

    Attributes
    ----------
    version:
        Monotonically increasing per-model counter; every ``add_export``,
        ``swap`` and ``rollback`` mints the next one.
    bits:
        Variant key the event applied to.
    content_hash:
        :meth:`~repro.quant.deploy.QuantizedModelExport.content_hash` of the
        export installed by this event.
    source:
        ``"add"``, ``"swap"`` or ``"rollback"``.
    generation:
        The model's generation counter after the event (``add`` does not
        bump it: adding a variant never invalidates a resolved plan).
    """

    version: int
    bits: int
    content_hash: str
    source: str = "add"
    generation: int = 0


@dataclass
class _ModelEntry:
    model: Module
    input_shape: Tuple[int, ...]
    profile: ModelProfile
    exports: Dict[int, QuantizedModelExport] = field(default_factory=dict)
    float_variant: bool = True
    float_plan: Optional[ExecutionPlan] = None
    #: Serialises the one-off fp32 compile without holding the repository
    #: lock (which every per-batch lookup needs) across it.
    float_compile_lock: threading.Lock = field(default_factory=threading.Lock)
    quantized_plans: Dict[int, ExecutionPlan] = field(default_factory=dict)
    #: Bumped on every swap / rollback; executors compare it to re-resolve
    #: memoised plans without holding repository locks across batches.
    generation: int = 0
    #: Next ModelVersion.version to mint for this model.
    version_counter: int = 0
    #: Full audit trail: one ModelVersion per add/swap/rollback.
    versions: List[ModelVersion] = field(default_factory=list)
    #: Superseded exports per variant key, newest last (rollback stack).
    previous: Dict[int, List[QuantizedModelExport]] = field(default_factory=dict)


def _infer_variant_bits(export: QuantizedModelExport) -> int:
    """Default variant key: the widest stored bitwidth in the export.

    Uniform exports (the common case) key as their single bitwidth; a
    mixed-precision export keys conservatively as its widest layer.  Pass
    ``bits=`` explicitly to override.
    """
    widths = {tensor.bits for tensor in export.quantized.values()}
    if not widths:
        raise ValueError("export holds no quantised tensors; serve the float variant instead")
    return max(widths)


class ModelRepository:
    """Thread-safe store of named models and their compiled plan variants."""

    def __init__(
        self,
        plan_cache: Optional[PlanCache] = None,
        *,
        history_depth: int = 4,
        tuning=None,
    ) -> None:
        """Args:
            plan_cache: Shared compile cache (default: a private one).
            history_depth: Superseded exports retained per variant for
                :meth:`rollback`.  Each retained export holds a full copy
                of the model's weights, so the long-running adaptation
                loop needs a bound; the oldest is dropped beyond it.
            tuning: Optional :class:`~repro.runtime.tuning.TuningConfig`
                applied to every compilation the repository triggers (the
                ``select_kernels`` pass then micro-benchmarks kernel
                variants instead of using the free heuristic).  Part of
                every plan-cache key the repository produces, so tuned and
                heuristic deployments never share plans.
        """
        if history_depth < 1:
            raise ValueError(f"history_depth must be at least 1, got {history_depth}")
        self._lock = threading.RLock()
        self._entries: Dict[str, _ModelEntry] = {}
        self._swap_listeners: List[SwapListener] = []
        self.history_depth = history_depth
        self.plan_cache = plan_cache or PlanCache()
        self.tuning = tuning

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model: Module,
        input_shape: Tuple[int, ...],
        *,
        float_variant: bool = True,
    ) -> None:
        """Register a model architecture under ``name``.

        Args:
            name: Unique model name (the key clients submit against).
            model: The architecture; used for compilation and profiling.
                It becomes shared serving infrastructure -- do not train it
                in place afterwards (see :meth:`clone_model`).
            input_shape: Per-sample input shape (no batch dimension).
            float_variant: ``False`` drops the fp32 plan from the variant
                list -- for deployments that only serve quantised exports.

        Raises:
            ValueError: a model of this name is already registered.
        """
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            self._entries[name] = _ModelEntry(
                model=model,
                input_shape=tuple(input_shape),
                profile=profile_model(model, input_shape),
                float_variant=float_variant,
            )

    def add_export(
        self,
        name: str,
        export: QuantizedModelExport,
        *,
        bits: Optional[int] = None,
    ) -> int:
        """Attach a quantised variant to model ``name``.

        Args:
            name: Registered model to attach the variant to.
            export: The quantised export to serve.
            bits: Variant key; defaults to the export's widest stored
                bitwidth (see :func:`_infer_variant_bits`).

        Returns:
            The variant key the export was stored under.

        Raises:
            KeyError: ``name`` is not registered.
            ValueError: the model already has a variant under this key (use
                :meth:`swap` to replace a served variant).
        """
        key = int(bits) if bits is not None else _infer_variant_bits(export)
        with self._lock:
            entry = self._entry(name)
            if key == FLOAT_BITS or key in entry.exports:
                raise ValueError(f"model {name!r} already has a {key}-bit variant")
            entry.exports[key] = export
            self._record_version(entry, key, export, source="add")
        return key

    def _record_version(
        self, entry: _ModelEntry, bits: int, export: QuantizedModelExport, source: str
    ) -> ModelVersion:
        """Mint the next ModelVersion for ``entry`` (caller holds the lock)."""
        entry.version_counter += 1
        version = ModelVersion(
            version=entry.version_counter,
            bits=bits,
            content_hash=export.content_hash(),
            source=source,
            generation=entry.generation,
        )
        entry.versions.append(version)
        return version

    def load_export_file(
        self,
        name: str,
        path: Union[str, Path],
        *,
        bits: Optional[int] = None,
    ) -> int:
        """Attach a variant from a ``.npz`` archive written by ``save_export``.

        Args:
            name: Registered model to attach the variant to.
            path: Archive path (``.npz`` suffix optional).
            bits: Variant key override, as in :meth:`add_export`.

        Returns:
            The variant key the export was stored under.

        Raises:
            repro.quant.deploy.ExportFormatError: unknown archive format
                version, or the archive fails its content-hash check.
        """
        return self.add_export(name, load_export(path), bits=bits)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def _entry(self, name: str) -> _ModelEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"model {name!r} is not registered; known models: {sorted(self._entries)}"
            )
        return entry

    def models(self) -> List[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def variants(self, name: str) -> List[int]:
        """Bitwidth keys of ``name``'s variants, cheapest (narrowest) first.

        Raises:
            KeyError: the model is not registered.
        """
        with self._lock:
            entry = self._entry(name)
            keys = sorted(entry.exports)
            if entry.float_variant:
                keys.append(FLOAT_BITS)
            return keys

    def input_shape(self, name: str) -> Tuple[int, ...]:
        """The model's per-sample input shape (no batch dimension).

        Raises:
            KeyError: the model is not registered.
        """
        with self._lock:
            return self._entry(name).input_shape

    def profile(self, name: str) -> ModelProfile:
        """The model's layer profile for the analytic cost models.

        Raises:
            KeyError: the model is not registered.
        """
        with self._lock:
            return self._entry(name).profile

    def export(self, name: str, bits: int) -> QuantizedModelExport:
        """The export currently served under one variant key.

        Raises:
            KeyError: the model is not registered or has no such variant.
        """
        with self._lock:
            entry = self._entry(name)
            if bits not in entry.exports:
                raise KeyError(f"model {name!r} has no {bits}-bit export")
            return entry.exports[bits]

    def forward_bits(self, name: str, bits: int) -> Dict[str, int]:
        """Per-layer stored bitwidths of one variant (for the cost models).

        Derived from the export's metadata, not the compiled plan, so the
        router can price variants without triggering compilation.
        """
        with self._lock:
            entry = self._entry(name)
            layer_names = [layer.name for layer in entry.profile.layers]
            if bits == FLOAT_BITS:
                return {layer: FLOAT_BITS for layer in layer_names}
            export = entry.exports.get(bits)
            if export is None:
                raise KeyError(f"model {name!r} has no {bits}-bit export")
            return {
                layer: export.quantized[layer].bits if layer in export.quantized else FLOAT_BITS
                for layer in layer_names
            }

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def plan(self, name: str, bits: int = FLOAT_BITS) -> ExecutionPlan:
        """The compiled plan of one variant, compiling on first request.

        Quantised variants compile through the shared content-hash plan
        cache (at most one compilation per distinct export, even under
        concurrent lookups); the fp32 variant is memoised per model.

        Args:
            name: Registered model.
            bits: Variant key; :data:`FLOAT_BITS` selects the fp32 plan.

        Returns:
            The immutable :class:`~repro.runtime.plan.ExecutionPlan`,
            shareable across any number of worker threads.

        Raises:
            KeyError: the model is not registered, has no such variant, or
                was registered without a float variant.
        """
        with self._lock:
            entry = self._entry(name)
            if bits == FLOAT_BITS:
                if not entry.float_variant:
                    raise KeyError(f"model {name!r} was registered without a float variant")
                if entry.float_plan is not None:
                    return entry.float_plan
        if bits == FLOAT_BITS:
            # Compile outside the repository lock (workers take it per batch);
            # the entry's own lock makes the fp32 compile exactly-once.
            with entry.float_compile_lock:
                if entry.float_plan is None:
                    plan = compile_plan(entry.model, entry.input_shape,
                                        tuning=self.tuning)
                    with self._lock:
                        entry.float_plan = plan
                return entry.float_plan
        while True:
            with self._lock:
                entry = self._entry(name)
                cached = entry.quantized_plans.get(bits)
                if cached is not None:
                    return cached
                export = entry.exports.get(bits)
                if export is None:
                    raise KeyError(
                        f"model {name!r} has no {bits}-bit variant; "
                        f"available: {self.variants(name)}"
                    )
                model, input_shape = entry.model, entry.input_shape
            # Compile outside the repository lock: the plan cache provides
            # its own exactly-once guarantee, and holding our lock across a
            # compile would serialise unrelated repository lookups behind it.
            plan = self.plan_cache.get_or_compile(
            model, export, input_shape, tuning=self.tuning
        )
            with self._lock:
                entry = self._entry(name)
                if entry.exports.get(bits) is export:
                    return entry.quantized_plans.setdefault(bits, plan)
                current = entry.exports.get(bits)
            # A swap replaced the export while we compiled.  Drop our
            # now-stale cache entry (unless the contents coincide, in which
            # case the keys do too) and resolve the freshly installed
            # version on the next pass -- swap() pre-populated its plan.
            if current is None or current.content_hash() != export.content_hash():
                self.plan_cache.invalidate(
                    self.plan_cache.key_for(model, export, input_shape, tuning=self.tuning)
                )

    def memory_stats(self, name: str, bits: int = FLOAT_BITS):
        """The memory planner's accounting for one variant's compiled plan.

        Compiles the variant if needed (through the plan cache) and returns
        its :class:`~repro.runtime.memory.PlanMemoryStats`: worker pools
        size their per-context arenas from this plan, and capacity planning
        reads ``arena_bytes(batch)`` to budget per-worker memory.

        Raises:
            KeyError: the model is not registered or has no such variant.
        """
        return self.plan(name, bits).memory_stats

    def warm(self, name: Optional[str] = None) -> int:
        """Eagerly compile every variant (of one model or all); returns count."""
        names = [name] if name is not None else self.models()
        compiled = 0
        for model_name in names:
            for bits in self.variants(model_name):
                self.plan(model_name, bits)
                compiled += 1
        return compiled

    # ------------------------------------------------------------------ #
    # Versioning / hot-swap
    # ------------------------------------------------------------------ #
    def generation(self, name: str) -> int:
        """The model's swap generation counter.

        Starts at 0 and is bumped by every :meth:`swap` / :meth:`rollback`.
        Executors memoise resolved plans alongside the generation they read
        it at and re-resolve when the counter moved -- the handoff that
        lets in-flight batches drain on the old plan while new batches
        pick up the new one.

        The read is deliberately lock-free: workers call this once per
        dispatched batch, entries are never removed, and both the dict
        lookup and the int read are atomic under the GIL.  A read racing a
        concurrent swap at worst returns the pre-swap value, which only
        delays plan re-resolution by one batch -- exactly the drain
        semantics the handoff promises anyway.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise KeyError(
                f"model {name!r} is not registered; known models: {sorted(self._entries)}"
            )
        return entry.generation

    def version_history(self, name: str, bits: Optional[int] = None) -> List[ModelVersion]:
        """The model's variant audit trail, oldest first.

        Args:
            name: Registered model.
            bits: Restrict to one variant key (default: all variants).

        Returns:
            :class:`ModelVersion` records of every add / swap / rollback.
        """
        with self._lock:
            versions = list(self._entry(name).versions)
        if bits is not None:
            versions = [record for record in versions if record.bits == int(bits)]
        return versions

    def current_version(self, name: str, bits: int) -> ModelVersion:
        """The latest :class:`ModelVersion` of one variant.

        Raises:
            KeyError: the model has no such variant.
        """
        history = self.version_history(name, bits)
        if not history:
            raise KeyError(f"model {name!r} has no {bits}-bit variant history")
        return history[-1]

    def add_swap_listener(self, listener: SwapListener) -> None:
        """Register a callback fired after every swap / rollback.

        The listener receives ``(model_name, bits, generation)`` and is
        invoked outside repository locks, from the swapping thread.  Serving
        front-ends use it to invalidate routing-cost memos.
        """
        with self._lock:
            self._swap_listeners.append(listener)

    def swap(
        self,
        name: str,
        export: QuantizedModelExport,
        *,
        bits: Optional[int] = None,
    ) -> ModelVersion:
        """Atomically replace a served variant with a newer export.

        The incoming export is compiled through the plan cache *before* the
        repository lock is taken, so serving never stalls behind the
        compile; the installation itself is a few dictionary writes under
        the lock plus a generation bump.  Batches already resolved against
        the old plan drain on it unaffected (plans are immutable); the old
        export's plan-cache entry is invalidated exactly once, and the old
        export is pushed onto the variant's rollback stack (bounded by
        ``history_depth``; the oldest retained export is dropped beyond
        it).

        Args:
            name: Registered model whose variant is being replaced.
            export: The replacement export (e.g. a fine-tune job's output).
            bits: Variant key to replace; defaults to the export's widest
                stored bitwidth.  Passing it explicitly keeps the key stable
                when adaptation changed the per-layer widths.

        Returns:
            The freshly minted :class:`ModelVersion` (``source="swap"``).

        Raises:
            KeyError: the model is not registered or has no such variant
                (use :meth:`add_export` for a brand-new variant key).
            ValueError: attempting to swap the fp32 variant, which is
                compiled from the module's own weights.
        """
        key = int(bits) if bits is not None else _infer_variant_bits(export)
        if key == FLOAT_BITS:
            raise ValueError(
                "the fp32 variant is compiled from the module's weights and "
                "cannot be swapped; export the fine-tuned model and swap a "
                "quantised variant instead"
            )
        with self._lock:
            entry = self._entry(name)
            if key not in entry.exports:
                raise KeyError(
                    f"model {name!r} has no {key}-bit variant to swap; "
                    f"use add_export for a new variant key"
                )
            model, input_shape = entry.model, entry.input_shape
        # Compile outside every lock: the plan cache serialises duplicate
        # compiles itself, and serving keeps resolving the old plan.
        plan = self.plan_cache.get_or_compile(
            model, export, input_shape, tuning=self.tuning
        )
        with self._lock:
            entry = self._entry(name)
            old = entry.exports.get(key)
            if old is None:  # pragma: no cover - variant removal is not an API
                raise KeyError(f"model {name!r} lost its {key}-bit variant mid-swap")
            stack = entry.previous.setdefault(key, [])
            stack.append(old)
            del stack[: max(0, len(stack) - self.history_depth)]
            entry.exports[key] = export
            entry.quantized_plans[key] = plan
            entry.generation += 1
            version = self._record_version(entry, key, export, source="swap")
            listeners = list(self._swap_listeners)
            generation = entry.generation
        self._invalidate_replaced(model, input_shape, old, export)
        for listener in listeners:
            listener(name, key, generation)
        return version

    def swap_from_file(
        self,
        name: str,
        path: Union[str, Path],
        *,
        bits: Optional[int] = None,
    ) -> ModelVersion:
        """:meth:`swap` with the export loaded from a ``.npz`` archive.

        Raises:
            repro.quant.deploy.ExportFormatError: the archive has an unknown
                format version or fails its content-hash check; the
                repository is left untouched.
        """
        return self.swap(name, load_export(path), bits=bits)

    def rollback(self, name: str, bits: int) -> ModelVersion:
        """Revert one variant to the export served before its last swap.

        The rolled-back-to export is recompiled through the plan cache if
        needed (its entry was invalidated when it was swapped out) and the
        discarded export's cache entry is invalidated, so the cache never
        accumulates dead versions.

        Args:
            name: Registered model.
            bits: Variant key to roll back.

        Returns:
            The minted :class:`ModelVersion` (``source="rollback"``).

        Raises:
            KeyError: no earlier version of this variant exists.
            RuntimeError: a concurrent swap changed the variant between the
                rollback's read and its install; retry against the new
                state if rolling back is still wanted.
        """
        key = int(bits)
        with self._lock:
            entry = self._entry(name)
            stack = entry.previous.get(key)
            if not stack:
                raise KeyError(
                    f"model {name!r} has no earlier {key}-bit version to roll back to"
                )
            # Peek only: the stack entry is popped at install time, under
            # the same lock that validates nothing swapped in between.
            target = stack[-1]
            discarded = entry.exports[key]
            model, input_shape = entry.model, entry.input_shape
        plan = self.plan_cache.get_or_compile(
            model, target, input_shape, tuning=self.tuning
        )
        with self._lock:
            entry = self._entry(name)
            stack = entry.previous.get(key)
            if entry.exports.get(key) is not discarded or not stack or stack[-1] is not target:
                raise RuntimeError(
                    f"variant {name}@{key} changed during the rollback "
                    f"(concurrent swap); re-issue the rollback against the "
                    f"new state if it is still wanted"
                )
            stack.pop()
            entry.exports[key] = target
            entry.quantized_plans[key] = plan
            entry.generation += 1
            version = self._record_version(entry, key, target, source="rollback")
            listeners = list(self._swap_listeners)
            generation = entry.generation
        self._invalidate_replaced(model, input_shape, discarded, target)
        for listener in listeners:
            listener(name, key, generation)
        return version

    def _invalidate_replaced(
        self,
        model: Module,
        input_shape: Tuple[int, ...],
        replaced: QuantizedModelExport,
        installed: QuantizedModelExport,
    ) -> None:
        """Drop the replaced export's cached plan (once, outside locks).

        Skipped when both exports hash identically -- their cache keys
        coincide, and invalidating would evict the plan just installed.
        """
        if replaced.content_hash() == installed.content_hash():
            return
        self.plan_cache.invalidate(
            self.plan_cache.key_for(model, replaced, input_shape, tuning=self.tuning)
        )

    # ------------------------------------------------------------------ #
    # Model access for adaptation
    # ------------------------------------------------------------------ #
    def clone_model(self, name: str) -> Module:
        """A deep copy of the registered module, safe to train.

        The registered module itself is shared serving infrastructure (the
        compiler temporarily loads export values into it), so fine-tuning
        jobs must never train it in place.  The copy is taken under the
        process-wide compile lock so it cannot observe a half-loaded state
        from a concurrent compilation.
        """
        with self._lock:
            model = self._entry(name).model
        with compile_lock():
            return copy.deepcopy(model)

    # ------------------------------------------------------------------ #
    # Shared-memory arena export (process-sharded serving)
    # ------------------------------------------------------------------ #
    def export_arena(self, *, generation: int = 0):
        """Pack every quantized variant into one shared-memory arena.

        The segment holds the code / scale / float tensors of each
        ``model@bits`` export, 64-byte aligned, with an
        :class:`~repro.serve.shards.ArenaManifest` describing the layout;
        worker processes map the segment and rebuild zero-copy
        :class:`~repro.quant.deploy.QuantizedModelExport` views via
        :func:`~repro.serve.shards.attach_exports`.  fp32 variants carry
        no export and are omitted (workers compile them from the pickled
        module directly).

        The caller owns the returned segment: ``close()`` + ``unlink()``
        it when the last worker has detached.

        Returns:
            ``(segment, manifest)`` from
            :func:`~repro.serve.shards.pack_exports`.
        """
        from repro.serve.shards import pack_exports, variant_key

        exports = {}
        with self._lock:
            for name, entry in self._entries.items():
                for bits, export in entry.exports.items():
                    exports[variant_key(name, bits)] = export
        return pack_exports(exports, generation=generation)
